//! Integration tests spanning the whole workspace: datasets → search →
//! smoothing → evaluation, mirroring the paper's batch pipeline.

use asap::core::{preaggregate, AsapConfig, SearchStrategy};
use asap::prelude::*;

/// Table 2's central claim: ASAP finds the same smoothing parameter as
/// exhaustive search while checking far fewer candidates, on every
/// evaluation dataset (large gas_sensor excluded from CI-scale runs).
#[test]
fn asap_matches_exhaustive_on_catalog_datasets() {
    let mut total_ex = 0usize;
    let mut total_asap = 0usize;
    let mut agree = 0usize;
    let mut total = 0usize;
    for info in asap::data::all_datasets() {
        if info.n_points > 100_000 {
            continue; // gas_sensor: exercised in the release-mode benches
        }
        let series = info.generate();
        let (agg, _) = preaggregate(series.values(), 1200);
        let config = AsapConfig {
            resolution: 1200,
            ..AsapConfig::default()
        };
        let ex = SearchStrategy::Exhaustive.search(&agg, &config).unwrap();
        let a = SearchStrategy::Asap.search(&agg, &config).unwrap();
        total += 1;
        total_ex += ex.candidates_checked;
        total_asap += a.candidates_checked;
        if ex.window == a.window {
            agree += 1;
        } else {
            // When windows differ, quality must still be essentially tied
            // (ASAP's guarantee is on roughness, not window identity).
            assert!(
                a.roughness <= ex.roughness * 1.10 + 1e-9,
                "{}: asap w={} r={} vs exhaustive w={} r={}",
                info.name,
                a.window,
                a.roughness,
                ex.window,
                ex.roughness
            );
        }
    }
    assert!(total >= 10, "expected at least 10 datasets, got {total}");
    assert!(
        agree * 10 >= total * 8,
        "windows agreed on only {agree}/{total} datasets"
    );
    assert!(
        total_asap * 3 < total_ex,
        "ASAP should check ~13x fewer candidates: {total_asap} vs {total_ex}"
    );
}

/// The end-user contract: smoothing reduces roughness and never violates
/// the kurtosis constraint, across every smoothable dataset.
#[test]
fn smoothing_contract_holds_across_datasets() {
    for info in asap::data::all_datasets() {
        if info.n_points > 100_000 {
            continue;
        }
        let series = info.generate();
        let result = Asap::builder()
            .resolution(1200)
            .build()
            .smooth(series.values())
            .unwrap();
        let agg_rough = roughness(&result.aggregated).unwrap();
        assert!(
            result.roughness <= agg_rough + 1e-9,
            "{}: smoothing increased roughness",
            info.name
        );
        if result.window > 1 {
            let agg_kurt = kurtosis(&result.aggregated).unwrap();
            assert!(
                result.kurtosis >= agg_kurt - 1e-9,
                "{}: kurtosis constraint violated ({} < {agg_kurt})",
                info.name,
                result.kurtosis
            );
        }
    }
}

/// Streaming and batch execution agree when the stream covers exactly the
/// batch window (the §4.5 equivalence).
#[test]
fn streaming_agrees_with_batch_at_end_of_stream() {
    use asap::core::{StreamingAsap, StreamingConfig};
    let series = asap::data::ramp_traffic();
    let data = series.values();
    let resolution = 288; // ratio 30 -> pane period divides the daily cycle
    let config = StreamingConfig::new(data.len(), resolution, data.len());
    let mut op = StreamingAsap::new(config.clone());
    let mut last = None;
    for &v in data {
        if let Some(f) = op.push(v).unwrap() {
            last = Some(f);
        }
    }
    let frame = match last {
        Some(f) => f,
        None => op.refresh().unwrap(),
    };
    let (agg, _) = preaggregate(data, resolution);
    let batch = SearchStrategy::Asap.search(&agg, &config.asap).unwrap();
    assert_eq!(frame.outcome.window, batch.window);
}

/// Z-scoring the input (the paper's presentation normalization) never
/// changes the chosen window: both metrics are affine-invariant.
#[test]
fn window_choice_is_zscore_invariant() {
    let series = asap::data::power();
    let z = series.zscored().unwrap();
    let smooth = |v: &[f64]| {
        Asap::builder()
            .resolution(1200)
            .build()
            .smooth(v)
            .unwrap()
            .window
    };
    assert_eq!(smooth(series.values()), smooth(z.values()));
}

/// The user-study pipeline runs end to end and reproduces the headline
/// ordering: ASAP is at least as accurate as the raw rendering on average
/// across the five study datasets, with no longer response times.
#[test]
fn observer_study_reproduces_headline_ordering() {
    use asap::eval::{ObserverModel, Technique};
    let model = ObserverModel::default();
    let mut asap_acc = 0.0;
    let mut orig_acc = 0.0;
    let mut asap_time = 0.0;
    let mut orig_time = 0.0;
    let mut cells = 0usize;
    for info in asap::data::user_study_datasets() {
        let a = model.run_cell(&info, Technique::Asap).unwrap();
        let o = model.run_cell(&info, Technique::Original).unwrap();
        asap_acc += a.accuracy;
        orig_acc += o.accuracy;
        asap_time += a.response_time;
        orig_time += o.response_time;
        cells += 1;
    }
    assert_eq!(cells, 5);
    assert!(
        asap_acc > orig_acc,
        "mean accuracy: asap {} vs original {}",
        asap_acc / 5.0,
        orig_acc / 5.0
    );
    assert!(
        asap_time < orig_time,
        "mean time: asap {} vs original {}",
        asap_time / 5.0,
        orig_time / 5.0
    );
}

/// Figure C.1's negative result: the spiky Twitter series must be left
/// unsmoothed end to end.
#[test]
fn twitter_stays_unsmoothed_through_the_facade() {
    let series = asap::data::twitter_aapl();
    let result = Asap::builder()
        .resolution(1200)
        .build()
        .smooth(series.values())
        .unwrap();
    assert!(result.is_unsmoothed(), "window {}", result.window);
    assert_eq!(result.smoothed.len(), result.aggregated.len());
}
