//! Integration test: writers and smoothing readers racing on one
//! [`ShardedDb`].
//!
//! The contract under contention:
//!
//! * **no lost points** — after the writers join, every series holds
//!   exactly the points its writer appended, values intact;
//! * **monotone timestamps per series** — every snapshot a racing reader
//!   observes is strictly time-ordered, and so is the final state;
//! * **readers never block ingest out of existence** — smoothing queries
//!   run to completion (or report clean errors) while writes proceed.
//!
//! Run under `--release` (see CI's release-test job): the races these
//! assertions guard only show up at optimized speed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use asap::core::Asap;
use asap::tsdb::{
    smooth_query, DataPoint, RangeQuery, Selector, SeriesKey, ShardedConfig, ShardedDb,
};

const WRITERS: usize = 8;
const READERS: usize = 4;
const POINTS_PER_SERIES: i64 = 20_000;

fn series_key(w: usize) -> SeriesKey {
    SeriesKey::metric("req_rate").with_tag("host", format!("h{w:02}"))
}

/// The value written at timestamp `t` for writer `w` — derived, so a
/// reader can verify any observed point without shared state.
fn value_at(w: usize, t: i64) -> f64 {
    (std::f64::consts::TAU * t as f64 / 600.0).sin() + (w as f64) * 10.0
}

#[test]
fn racing_writers_and_smoothing_readers_lose_nothing() {
    let db = ShardedDb::with_config(ShardedConfig::new(8, 512));
    let writers_done = AtomicBool::new(false);
    let reads_completed = AtomicU64::new(0);
    let frames_rendered = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let mut writer_handles = Vec::new();
        for w in 0..WRITERS {
            let db = db.clone();
            let key = series_key(w);
            writer_handles.push(scope.spawn(move || {
                for t in 0..POINTS_PER_SERIES {
                    db.write(&key, DataPoint::new(t, value_at(w, t))).unwrap();
                }
            }));
        }
        for r in 0..READERS {
            let db = db.clone();
            let writers_done = &writers_done;
            let reads_completed = &reads_completed;
            let frames_rendered = &frames_rendered;
            scope.spawn(move || {
                let asap = Asap::builder().resolution(100).build();
                let mut rounds = 0usize;
                while !writers_done.load(Ordering::Acquire) || rounds == 0 {
                    rounds += 1;
                    let key = series_key((r + rounds) % WRITERS);
                    // Raw snapshot: whatever prefix exists must be strictly
                    // ordered with the derived values.
                    let snap = db.query(&key, RangeQuery::raw(0, POINTS_PER_SERIES)).ok();
                    if let Some(points) = snap {
                        let w = (r + rounds) % WRITERS;
                        for pair in points.windows(2) {
                            assert!(
                                pair[0].timestamp < pair[1].timestamp,
                                "non-monotone snapshot under race"
                            );
                        }
                        for p in &points {
                            assert_eq!(p.value, value_at(w, p.timestamp), "torn point");
                        }
                        // Smooth the observed prefix while writers append.
                        if points.len() > 400 {
                            let end = points.last().unwrap().timestamp + 1;
                            let frame = smooth_query(&db, &key, &asap, 0, end, 20)
                                .expect("smoothing a non-empty prefix");
                            assert!(!frame.smoothed_points.is_empty());
                            frames_rendered.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    reads_completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Join the writers, then release the readers (the scope joins the
        // reader threads at the end).
        for h in writer_handles {
            h.join().unwrap();
        }
        writers_done.store(true, Ordering::Release);
    });

    // No lost points: every series holds exactly its writer's appends.
    assert_eq!(db.series_count(), WRITERS);
    for w in 0..WRITERS {
        let key = series_key(w);
        let points = db.query(&key, RangeQuery::raw(0, POINTS_PER_SERIES)).unwrap();
        assert_eq!(points.len(), POINTS_PER_SERIES as usize, "lost points in series {w}");
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.timestamp, i as i64, "timestamp gap/dup in series {w}");
            assert_eq!(p.value, value_at(w, p.timestamp));
        }
    }
    assert!(reads_completed.load(Ordering::Relaxed) >= READERS as u64);
    assert!(
        frames_rendered.load(Ordering::Relaxed) > 0,
        "readers never smoothed a prefix while writers ran"
    );

    // And the racy store still answers exactly like a fresh serial one.
    let serial = ShardedDb::with_config(ShardedConfig::new(8, 512));
    for w in 0..WRITERS {
        for t in 0..POINTS_PER_SERIES {
            serial.write(&series_key(w), DataPoint::new(t, value_at(w, t))).unwrap();
        }
    }
    let q = RangeQuery::raw(0, POINTS_PER_SERIES);
    let sel = Selector::metric("req_rate");
    assert_eq!(
        db.query_selector(&sel, q).unwrap(),
        serial.query_selector(&sel, q).unwrap()
    );
}

#[test]
fn concurrent_multi_series_smoothing_is_stable_under_writes() {
    // Parallel smooth_query_selector while new points stream in: each call
    // sees *some* consistent prefix per series and returns key-ordered
    // frames; two calls after quiescence are identical.
    let db = ShardedDb::with_config(ShardedConfig::new(4, 256));
    for w in 0..4 {
        for t in 0..4_000i64 {
            db.write(&series_key(w), DataPoint::new(t, value_at(w, t))).unwrap();
        }
    }
    let asap = Asap::builder().resolution(100).build();
    let sel = Selector::metric("req_rate");
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let db2 = db.clone();
        let stop = &stop;
        scope.spawn(move || {
            for t in 4_000..8_000i64 {
                for w in 0..4 {
                    db2.write(&series_key(w), DataPoint::new(t, value_at(w, t))).unwrap();
                }
            }
            stop.store(true, Ordering::Release);
        });
        while !stop.load(Ordering::Acquire) {
            let frames = db
                .smooth_query_selector(&sel, &asap, 0, 4_000, 10)
                .expect("the written prefix is always smoothable");
            assert_eq!(frames.len(), 4);
            let hosts: Vec<_> = frames.iter().map(|(k, _)| k.tag("host").unwrap()).collect();
            assert_eq!(hosts, ["h00", "h01", "h02", "h03"], "key order under race");
        }
    });

    let a = db.smooth_query_selector(&sel, &asap, 0, 8_000, 10).unwrap();
    let b = db.smooth_query_selector(&sel, &asap, 0, 8_000, 10).unwrap();
    assert_eq!(a, b, "quiescent smoothing is deterministic");
}
