//! Property-based tests on the core invariants, spanning crates.
//!
//! These pin the mathematical contracts the paper's derivations rely on
//! (Equations 1–6 and the §4.4 preaggregation analysis) over randomized
//! inputs rather than hand-picked examples.

use asap::core::{preaggregate, AsapConfig, SearchStrategy};
use asap::dsp::{acf_brute_force, autocorrelation};
use asap::timeseries::{kurtosis, roughness, sma, sma_naive, zscore};
use proptest::prelude::*;

/// Bounded, finite series generator: lengths 16..400, values in ±1e3.
fn series_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, 16..400)
}

/// Series with guaranteed variance (not all elements equal).
fn varied_series() -> impl Strategy<Value = Vec<f64>> {
    series_strategy().prop_filter("needs variance", |v| {
        v.iter().any(|&x| (x - v[0]).abs() > 1e-6)
    })
}

proptest! {
    /// The O(N) running-sum SMA equals the textbook definition.
    #[test]
    fn sma_fast_equals_naive(data in varied_series(), w in 1usize..50) {
        prop_assume!(w <= data.len());
        let fast = sma(&data, w).unwrap();
        let slow = sma_naive(&data, w).unwrap();
        prop_assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
        }
    }

    /// FFT-based ACF equals the O(n²) estimator at every lag.
    #[test]
    fn fft_acf_equals_brute_force(data in varied_series()) {
        let max_lag = data.len() / 4;
        prop_assume!(max_lag >= 1);
        let fast = autocorrelation(&data, max_lag).unwrap();
        let slow = acf_brute_force(&data, max_lag).unwrap();
        for k in 0..=max_lag {
            prop_assert!(
                (fast.at(k) - slow.at(k)).abs() < 1e-7,
                "lag {}: {} vs {}", k, fast.at(k), slow.at(k)
            );
        }
    }

    /// Roughness is non-negative, zero exactly on affine series, and
    /// scales linearly.
    #[test]
    fn roughness_axioms(data in varied_series(), scale in 0.1..10.0f64) {
        let r = roughness(&data).unwrap();
        prop_assert!(r >= 0.0);
        let scaled: Vec<f64> = data.iter().map(|x| x * scale).collect();
        let rs = roughness(&scaled).unwrap();
        prop_assert!((rs - scale * r).abs() < 1e-6 * (1.0 + r), "{} vs {}", rs, scale * r);
    }

    /// Kurtosis is affine-invariant (the property that makes the paper's
    /// z-scored presentation legitimate).
    #[test]
    fn kurtosis_affine_invariance(data in varied_series(), a in 0.5..4.0f64, b in -100.0..100.0f64) {
        let k0 = kurtosis(&data).unwrap();
        let mapped: Vec<f64> = data.iter().map(|x| a * x + b).collect();
        let k1 = kurtosis(&mapped).unwrap();
        prop_assert!((k0 - k1).abs() < 1e-5 * k0.abs().max(1.0), "{} vs {}", k0, k1);
    }

    /// Every search strategy returns a window within bounds whose smoothed
    /// series satisfies the kurtosis constraint (when it smooths at all).
    #[test]
    fn searches_respect_the_constraint(data in varied_series()) {
        let config = AsapConfig::default();
        let base_kurt = kurtosis(&data);
        for strat in [SearchStrategy::Exhaustive, SearchStrategy::Binary, SearchStrategy::Asap] {
            let out = strat.search(&data, &config).unwrap();
            prop_assert!(out.window >= 1);
            prop_assert!(out.window < data.len());
            if out.window > 1 {
                let smoothed = sma(&data, out.window).unwrap();
                if let (Ok(k), Ok(k0)) = (kurtosis(&smoothed), base_kurt.clone()) {
                    prop_assert!(k >= k0 - 1e-6, "{}: {} < {}", strat.name(), k, k0);
                }
                let r = roughness(&smoothed).unwrap();
                prop_assert!((r - out.roughness).abs() < 1e-6);
            }
        }
    }

    /// ASAP never returns a rougher plot than plain binary search — the
    /// quality half of Figure 8.
    #[test]
    fn asap_no_rougher_than_binary(data in varied_series()) {
        let config = AsapConfig::default();
        let a = SearchStrategy::Asap.search(&data, &config).unwrap();
        let b = SearchStrategy::Binary.search(&data, &config).unwrap();
        prop_assert!(
            a.roughness <= b.roughness + 1e-9,
            "asap {} vs binary {}", a.roughness, b.roughness
        );
    }

    /// Preaggregation output length and ratio obey the §4.4 contract.
    #[test]
    fn preaggregation_contract(data in varied_series(), resolution in 4usize..64) {
        let (agg, ratio) = preaggregate(&data, resolution);
        prop_assert!(agg.len() <= resolution);
        prop_assert_eq!(ratio, data.len().div_ceil(resolution).max(1));
        if ratio == 1 {
            prop_assert_eq!(&agg, &data);
        } else {
            // Each aggregated point is a mean of `ratio` raw points: it
            // lies within the raw min/max.
            let lo = data.iter().cloned().fold(f64::MAX, f64::min);
            let hi = data.iter().cloned().fold(f64::MIN, f64::max);
            for &v in &agg {
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
        }
    }

    /// Z-scoring really produces mean 0 / variance 1 and is idempotent.
    #[test]
    fn zscore_normalizes(data in varied_series()) {
        let z = zscore(&data).unwrap();
        let m = asap::timeseries::moments(&z).unwrap();
        prop_assert!(m.mean().abs() < 1e-7);
        prop_assert!((m.variance() - 1.0).abs() < 1e-7);
        let zz = zscore(&z).unwrap();
        for (a, b) in z.iter().zip(&zz) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    /// M4 always retains the global extremes and the endpoints — the
    /// pixel-fidelity invariant that distinguishes it from ASAP.
    #[test]
    fn m4_retains_extremes_and_endpoints(data in varied_series(), width in 1usize..64) {
        let pts = asap::baselines::m4::m4_aggregate(&data, width).unwrap();
        let values: Vec<f64> = pts.iter().map(|p| p.value).collect();
        let max = data.iter().cloned().fold(f64::MIN, f64::max);
        let min = data.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(values.contains(&max));
        prop_assert!(values.contains(&min));
        prop_assert_eq!(pts.first().unwrap().index, 0);
        prop_assert_eq!(pts.last().unwrap().index, data.len() - 1);
        prop_assert!(pts.len() <= 4 * width.min(data.len()));
    }

    /// Visvalingam–Whyatt returns exactly the requested point count, keeps
    /// the endpoints, and stays time-ordered.
    #[test]
    fn visvalingam_contract(data in varied_series(), target in 2usize..64) {
        let pts = asap::baselines::visvalingam(&data, target).unwrap();
        prop_assert_eq!(pts.len(), target.min(data.len()));
        prop_assert_eq!(pts.first().unwrap().index, 0);
        prop_assert_eq!(pts.last().unwrap().index, data.len() - 1);
        for w in pts.windows(2) {
            prop_assert!(w[0].index < w[1].index);
        }
    }

    /// PAA output stays within the input's range and preserves segment
    /// count.
    #[test]
    fn paa_contract(data in varied_series(), segments in 1usize..64) {
        let out = asap::baselines::paa(&data, segments).unwrap();
        prop_assert_eq!(out.len(), segments.min(data.len()));
        let max = data.iter().cloned().fold(f64::MIN, f64::max);
        let min = data.iter().cloned().fold(f64::MAX, f64::min);
        for &v in &out {
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }
    }

    /// Resampling an already-regular series is the identity, for every
    /// gap-fill policy.
    #[test]
    fn resample_regular_is_identity(data in varied_series(), period in 1.0..100.0f64) {
        let pts: Vec<(f64, f64)> = data
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * period, v))
            .collect();
        for fill in [
            asap::timeseries::GapFill::Previous,
            asap::timeseries::GapFill::Linear,
            asap::timeseries::GapFill::Constant(0.0),
        ] {
            let ts = asap::timeseries::resample(&pts, period, fill, "p").unwrap();
            prop_assert_eq!(ts.len(), data.len());
            for (a, b) in ts.values().iter().zip(&data) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    /// Pane-based streaming aggregation equals batch tumbling aggregation
    /// (the §4.5 sub-aggregation correctness).
    #[test]
    fn panes_equal_batch_tumbling(data in varied_series(), pane in 1usize..16) {
        prop_assume!(pane <= data.len());
        let mut agg = asap::stream::PaneAggregator::new(pane);
        let mut streamed = Vec::new();
        for &x in &data {
            if let Some(p) = agg.push(x) {
                streamed.push(p.mean());
            }
        }
        let batch = asap::timeseries::sma_strided(&data, pane, pane).unwrap();
        prop_assert_eq!(streamed.len(), batch.len());
        for (a, b) in streamed.iter().zip(&batch) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    /// SMA always reduces (or preserves) roughness relative to the window-1
    /// rendering for windows that evenly divide strong periodicity — and
    /// regardless of structure, the *minimum over all windows* is no worse
    /// than the original.
    #[test]
    fn some_window_is_never_worse_than_raw(data in varied_series()) {
        let base = roughness(&data).unwrap();
        let config = AsapConfig::default();
        let out = SearchStrategy::Exhaustive.search(&data, &config).unwrap();
        prop_assert!(out.roughness <= base + 1e-9);
    }
}

/// Eq. 5 accuracy on weakly stationary (periodic + noise) inputs — the
/// Figure A.1 bound, property-tested over random periods and phases.
#[test]
fn roughness_estimate_tracks_truth_on_stationary_inputs() {
    use asap::timeseries::stddev;
    for (period, amp, noise_amp, n) in [
        (16usize, 1.0, 0.1, 4096usize),
        (24, 2.0, 0.3, 6000),
        (48, 0.5, 0.05, 8000),
    ] {
        let data: Vec<f64> = (0..n)
            .map(|i| {
                amp * (std::f64::consts::TAU * i as f64 / period as f64).sin()
                    + noise_amp * ((((i as u64) * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
            })
            .collect();
        let sigma = stddev(&data).unwrap();
        let acf = autocorrelation(&data, 3 * period).unwrap();
        for w in 2..=(3 * period) {
            let est = asap::core::estimate::roughness_estimate(sigma, n, w, acf.at(w));
            let truth = roughness(&sma(&data, w).unwrap()).unwrap();
            if truth > 1e-6 {
                let rel = (est - truth).abs() / truth;
                assert!(
                    rel < 0.15,
                    "period {period} w {w}: est {est} truth {truth} rel {rel}"
                );
            }
        }
    }
}

proptest! {
    /// Incremental sliding moments equal the batch kernel on the window
    /// tail at every step (amortized-O(1) path vs O(n) recompute).
    #[test]
    fn sliding_moments_equal_batch(data in varied_series(), window in 2usize..64) {
        use asap::core::SlidingMoments;
        let mut sk = SlidingMoments::new(window).unwrap();
        for (i, &x) in data.iter().enumerate() {
            sk.push(x);
            let lo = (i + 1).saturating_sub(window);
            let tail = &data[lo..=i];
            if tail.len() >= 2 {
                let m = asap::timeseries::mean(tail).unwrap();
                let v = asap::timeseries::variance(tail).unwrap();
                let tol = 1e-9 * (1.0 + m.abs() + v.abs());
                prop_assert!((sk.mean().unwrap() - m).abs() < tol);
                prop_assert!((sk.variance().unwrap() - v).abs() < tol);
                // Fourth powers of ±1e3 inputs amplify rounding; only
                // check kurtosis where the variance is well-conditioned,
                // at a tolerance matched to the conditioning.
                if v > 1e-6 {
                    let k = kurtosis(tail).unwrap();
                    prop_assert!(
                        (sk.kurtosis().unwrap() - k).abs() < 5e-3 * (1.0 + k.abs()),
                        "kurtosis {} vs {}", sk.kurtosis().unwrap(), k
                    );
                }
            }
        }
    }

    /// Incremental sliding roughness equals the batch kernel on the tail.
    #[test]
    fn sliding_roughness_equals_batch(data in varied_series(), window in 3usize..64) {
        use asap::core::SlidingRoughness;
        let mut sr = SlidingRoughness::new(window).unwrap();
        for (i, &x) in data.iter().enumerate() {
            sr.push(x);
            let lo = (i + 1).saturating_sub(window);
            let tail = &data[lo..=i];
            if tail.len() >= 3 {
                let want = roughness(tail).unwrap();
                let got = sr.roughness().unwrap();
                // Absolute tolerance scaled to the ±1e3 input magnitude.
                prop_assert!((got - want).abs() < 1e-5, "{got} vs {want}");
            }
        }
    }

    /// Every pyramid level holds the exact factor-2^k bucket means of the
    /// raw series, and any render covers its requested range with the
    /// advertised aggregation factor.
    #[test]
    fn pyramid_levels_are_exact_bucket_means(
        data in prop::collection::vec(-1e3..1e3f64, 8..512),
        resolution in 1usize..64,
    ) {
        use asap::core::ZoomPyramid;
        let p = ZoomPyramid::build(&data).unwrap();
        let (vals, factor) = p.render(0..data.len(), resolution).unwrap();
        prop_assert!(factor.is_power_of_two());
        for (j, &v) in vals.iter().enumerate() {
            let lo = j * factor;
            let hi = lo + factor;
            prop_assert!(hi <= data.len());
            let want: f64 = data[lo..hi].iter().sum::<f64>() / factor as f64;
            prop_assert!((v - want).abs() < 1e-9, "bucket {j}: {v} vs {want}");
        }
        // Density contract: at least `resolution` points unless the raw
        // range itself is smaller.
        prop_assert!(vals.len() >= resolution.min(data.len()) / 2);
    }
}
