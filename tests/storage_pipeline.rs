//! Integration tests spanning storage (`asap-tsdb`), the ASAP core, and
//! rendering (`asap-viz`) — the full §2 deployment path: telemetry is
//! ingested into a TSDB, queried onto a display grid, smoothed by ASAP,
//! and drawn.

use asap::core::{Asap, ZoomPyramid};
use asap::tsdb::{
    ingest, rollup_key, smooth_query, Aggregator, Compactor, DataPoint, RangeQuery,
    RetentionPolicy, RollupLevel, Selector, SeriesKey, Tsdb, TsdbConfig,
};
use asap::viz::{SvgChart, SvgSeries, TerminalChart};

/// Days of simulated minute-cadence telemetry.
const DAYS: i64 = 8;
const STEP: i64 = 60;

/// A noisy daily-periodic metric with a sustained dip on day 6.
fn seed(db: &Tsdb, key: &SeriesKey) {
    let n = DAYS * 86_400 / STEP;
    let mut points = Vec::with_capacity(n as usize);
    for i in 0..n {
        let ts = i * STEP;
        let phase = (ts % 86_400) as f64 / 86_400.0 * std::f64::consts::TAU;
        let noise = (((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40) % 200) as f64 / 10.0;
        let dip = if (6 * 86_400..7 * 86_400).contains(&ts) {
            -80.0
        } else {
            0.0
        };
        points.push(DataPoint::new(ts, 300.0 + 100.0 * phase.sin() + noise + dip));
    }
    db.write_batch(key, &points).unwrap();
}

#[test]
fn storage_to_smoothed_chart_end_to_end() {
    let db = Tsdb::with_config(TsdbConfig {
        block_capacity: 2048,
    });
    let key = SeriesKey::metric("req_rate").with_tag("host", "a");
    seed(&db, &key);

    // Query → smooth at dashboard resolution.
    let asap = Asap::builder().resolution(400).build();
    let frame = smooth_query(&db, &key, &asap, 0, DAYS * 86_400, 300).unwrap();

    // ASAP flattened the daily cycle: window spans at least half a day of
    // buckets and roughness dropped by an order of magnitude.
    assert!(frame.result.window > 1, "smoothing engaged");
    let raw_rough = asap::timeseries::roughness(&frame.result.aggregated).unwrap();
    assert!(
        frame.result.roughness < raw_rough / 2.0,
        "roughness {} vs raw {}",
        frame.result.roughness,
        raw_rough
    );

    // The dip survives smoothing: the smoothed minimum falls on day 6.
    let (argmin, _) = frame
        .result
        .smoothed
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    let min_ts = frame.smoothed_points[argmin].timestamp;
    assert!(
        (5 * 86_400..8 * 86_400).contains(&min_ts),
        "dip located at ts {min_ts}"
    );

    // Both renderers accept the smoothed output.
    let txt = TerminalChart::new(60, 8)
        .render(&[&frame.result.smoothed])
        .unwrap();
    assert!(txt.lines().count() >= 8);
    let svg = SvgChart::new(640, 200)
        .series(SvgSeries::from_values("asap", &frame.result.smoothed))
        .render()
        .unwrap();
    assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
}

#[test]
fn line_protocol_to_selector_fanout() {
    let db = Tsdb::new();
    let mut doc = String::new();
    for i in 0..200 {
        for host in ["a", "b"] {
            doc.push_str(&format!(
                "cpu,host={host},dc=west usage={} {}\n",
                50.0 + i as f64,
                i * 10
            ));
        }
    }
    let n = ingest(&db, &doc, 0).unwrap();
    assert_eq!(n, 400);
    let results = db
        .query_selector(
            &Selector::metric("cpu.usage").tag_eq("dc", "west"),
            RangeQuery::bucketed(0, 2_000, 100).aggregate(Aggregator::Count),
        )
        .unwrap();
    assert_eq!(results.len(), 2, "both hosts matched");
    for (_, pts) in results {
        assert_eq!(pts.iter().map(|p| p.value).sum::<f64>() as usize, 200);
    }
}

#[test]
fn retention_tiering_preserves_smoothability_of_history() {
    let db = Tsdb::with_config(TsdbConfig {
        block_capacity: 1024,
    });
    let key = SeriesKey::metric("req_rate");
    seed(&db, &key);
    db.flush().unwrap();

    // Roll up to 30-minute means, keep raw for 2 days only.
    let mut compactor = Compactor::new(RetentionPolicy {
        raw_ttl: Some(2 * 86_400),
        rollups: vec![RollupLevel {
            bucket: 1_800,
            aggregator: Aggregator::Mean,
            ttl: None,
        }],
    })
    .unwrap();
    let report = compactor.run(&db, DAYS * 86_400).unwrap();
    assert!(report.raw_evicted > 0);
    assert_eq!(report.rolled_up as i64, DAYS * 86_400 / 1_800);

    // History is gone raw but present (and ASAP-smoothable) as rollups.
    let raw_day0 = db.query(&key, RangeQuery::raw(0, 86_400)).unwrap();
    assert!(raw_day0.is_empty(), "day 0 raw data aged out");
    let rk = rollup_key(&key, 1_800);
    let asap = Asap::builder().resolution(200).build();
    let frame = smooth_query(&db, &rk, &asap, 0, DAYS * 86_400, 1_800).unwrap();
    assert_eq!(frame.grid_timestamps.len() as i64, DAYS * 86_400 / 1_800);
    assert!(frame.result.window >= 1);
}

#[test]
fn pyramid_zoom_over_stored_series_matches_query_zoom() {
    // Load a stored series into a pyramid and confirm zooming agrees with
    // querying the store at the equivalent bucket width.
    let db = Tsdb::new();
    let key = SeriesKey::metric("req_rate");
    seed(&db, &key);
    let all = db.query(&key, RangeQuery::raw(0, DAYS * 86_400)).unwrap();
    let values: Vec<f64> = all.iter().map(|p| p.value).collect();
    let pyramid = ZoomPyramid::build(&values).unwrap();

    let resolution = 360;
    let (zoomed, factor) = pyramid.render(0..values.len(), resolution).unwrap();
    // Equivalent bucketed query: factor raw points per bucket.
    let bucket = STEP * factor as i64;
    let q = db
        .query(&key, RangeQuery::bucketed(0, DAYS * 86_400, bucket))
        .unwrap();
    assert_eq!(zoomed.len(), q.len());
    for (a, b) in zoomed.iter().zip(&q) {
        assert!((a - b.value).abs() < 1e-9, "pyramid vs query bucket mean");
    }
}

#[test]
fn non_finite_and_out_of_order_telemetry_rejected_at_ingest() {
    let db = Tsdb::new();
    let key = SeriesKey::metric("m");
    db.write(&key, DataPoint::new(100, 1.0)).unwrap();
    assert!(db.write(&key, DataPoint::new(100, 2.0)).is_err());
    assert!(db.write(&key, DataPoint::new(101, f64::NAN)).is_err());
    // The store is unpolluted: exactly one point survives, and ASAP never
    // sees a NaN through the bridge.
    let asap = Asap::builder().resolution(10).build();
    let err = smooth_query(&db, &key, &asap, 0, 99, 10).unwrap_err();
    assert!(matches!(err, asap::tsdb::SmoothQueryError::Smoothing(_)));
    let pts = db.query(&key, RangeQuery::raw(0, 1_000)).unwrap();
    assert_eq!(pts.len(), 1);
}
