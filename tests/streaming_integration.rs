//! Integration tests for the streaming execution mode: the operator
//! interface, the threaded runtime, and refresh semantics together.

use asap::core::{StreamingAsap, StreamingConfig};
use asap::stream::{run_pipeline, run_threaded};

fn telemetry(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            (std::f64::consts::TAU * i as f64 / 480.0).sin()
                + 0.3 * ((((i as u64) * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
                + if i > 3 * n / 4 { 2.0 } else { 0.0 }
        })
        .collect()
}

/// The streaming operator produces identical frames inline and on a worker
/// thread — ASAP is deterministic, so the execution mode must not matter.
#[test]
fn threaded_execution_matches_inline() {
    let data = telemetry(12_000);
    let make = || StreamingAsap::new(StreamingConfig::new(6_000, 120, 2_000));

    let inline_frames = run_pipeline(make(), data.iter().copied());
    let stage = run_threaded(make(), 256);
    for &v in &data {
        assert!(stage.send(v));
    }
    let threaded_frames = stage.close();

    assert_eq!(inline_frames.len(), threaded_frames.len());
    for (a, b) in inline_frames.iter().zip(&threaded_frames) {
        assert_eq!(a.outcome.window, b.outcome.window);
        assert_eq!(a.points_ingested, b.points_ingested);
        assert_eq!(a.smoothed, b.smoothed);
    }
}

/// Frames arrive exactly at the configured cadence once the pane window
/// has warmed up, and each frame's data fits the target resolution.
#[test]
fn refresh_cadence_and_resolution_bounds() {
    let data = telemetry(20_000);
    let resolution = 200;
    let refresh = 4_000;
    let mut op = StreamingAsap::new(StreamingConfig::new(10_000, resolution, refresh));
    let mut frame_points = Vec::new();
    for &v in &data {
        if let Some(f) = op.push(v).unwrap() {
            frame_points.push(f.points_ingested);
            assert!(f.smoothed.len() <= resolution);
        }
    }
    assert_eq!(frame_points, vec![4_000, 8_000, 12_000, 16_000, 20_000]);
}

/// A regime change (level shift entering the window) is eventually
/// reflected: the final frame's smoothed tail sits clearly above the
/// initial baseline.
#[test]
fn regime_change_is_visible_in_final_frame() {
    let data = telemetry(40_000);
    let mut op = StreamingAsap::new(StreamingConfig::new(40_000, 400, 8_000));
    let mut last = None;
    for &v in &data {
        if let Some(f) = op.push(v).unwrap() {
            last = Some(f);
        }
    }
    let frame = last.expect("frames fired");
    let m = frame.smoothed.len();
    let head: f64 = frame.smoothed[..m / 4].iter().sum::<f64>() / (m / 4) as f64;
    let tail: f64 = frame.smoothed[7 * m / 8..].iter().sum::<f64>() / (m - 7 * m / 8) as f64;
    assert!(
        tail > head + 1.0,
        "shift not visible: head {head}, tail {tail}"
    );
}

/// Searches are shared work: the operator runs exactly one search per
/// refresh, never per point.
#[test]
fn search_count_equals_refresh_count() {
    let data = telemetry(10_000);
    let mut op = StreamingAsap::new(StreamingConfig::new(5_000, 100, 1_000));
    let mut frames = 0u64;
    for &v in &data {
        if op.push(v).unwrap().is_some() {
            frames += 1;
        }
    }
    assert_eq!(op.searches_run(), frames);
    assert_eq!(op.points_ingested(), 10_000);
}
