//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact* API subset it uses: `Mutex` and `RwLock` whose lock
//! methods return guards directly (no `Result`). Implemented over
//! `std::sync`; a poisoned lock panics, which matches `parking_lot`'s
//! behavior of never poisoning (a panic while holding a lock is a bug in
//! this workspace either way).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Reader-writer lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("rwlock poisoned")
    }
}

/// Mutual-exclusion lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_round_trip() {
        let l = RwLock::new(1);
        *l.write() = 5;
        assert_eq!(*l.read(), 5);
        assert_eq!(l.into_inner(), 5);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
