//! Offline shim for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset it uses: [`Bytes`] (cheaply cloneable, sliceable,
//! immutable byte buffer), [`BytesMut`] (growable buffer that freezes into
//! `Bytes`), and the [`BufMut`] append trait. `Bytes` shares one
//! reference-counted allocation across clones and slices, so `slice` is
//! O(1) and allocation-free, as in the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Bound, Deref, Index, IndexMut, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a slice of `self` for the given subrange, sharing the same
    /// underlying allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        v.to_vec().into()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", &**self)
    }
}

/// Growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Index<usize> for BytesMut {
    type Output = u8;
    fn index(&self, i: usize) -> &u8 {
        &self.vec[i]
    }
}

impl IndexMut<usize> for BytesMut {
    fn index_mut(&mut self, i: usize) -> &mut u8 {
        &mut self.vec[i]
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

/// Trait for appending fixed-width values to a growable buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a byte slice verbatim.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.vec.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_and_slice_share_contents() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u8(1);
        b.put_slice(&[2, 3, 4]);
        assert_eq!(b.len(), 4);
        let frozen = b.freeze();
        assert_eq!(&*frozen, &[1, 2, 3, 4]);
        let half = frozen.slice(0..2);
        assert_eq!(&*half, &[1, 2]);
        let nested = half.slice(1..2);
        assert_eq!(&*nested, &[2]);
    }

    #[test]
    fn index_mut_edits_last_byte() {
        let mut b = BytesMut::new();
        b.put_u8(0);
        b[0] |= 0b1000_0000;
        assert_eq!(b[0], 128);
    }

    #[test]
    fn equality_ignores_slice_offsets() {
        let a = Bytes::from(vec![9, 9, 5]).slice(2..3);
        let b = Bytes::from(vec![5]);
        assert_eq!(a, b);
    }
}
