//! Offline shim for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset its benches use: `Criterion`, benchmark groups,
//! `BenchmarkId`, `Throughput`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark warms up briefly,
//! then runs batches until a fixed wall-clock budget is spent, and prints
//! the median per-iteration time (plus throughput when declared). There is
//! no statistical analysis, outlier detection, or HTML report — good
//! enough to compare hot paths run-to-run on one machine, which is all the
//! BENCH_* figures need. The budget is tunable via `CRITERION_BUDGET_MS`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched
/// work. Delegates to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration work declaration used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Self {
            samples: Vec::new(),
            budget,
        }
    }

    /// Times `f`, called repeatedly until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let budget = self.budget;
        // Warm-up and batch-size calibration: grow the batch until one
        // batch takes ≥ ~1% of the budget, so timer overhead stays small.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= budget / 100 || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let deadline = Instant::now() + budget;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
        if self.samples.is_empty() {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn budget_ms() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

fn report(group: Option<&str>, id: &str, median: Duration, throughput: Option<Throughput>) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  ({per_sec:.3e} elem/s)")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  ({per_sec:.3e} B/s)")
        }
        None => String::new(),
    };
    println!("{full:<60} median {median:>12.3?}{rate}");
}

/// Top-level benchmark registry and driver.
#[derive(Debug)]
pub struct Criterion {
    // Read once at construction: the environment is never touched again,
    // so concurrent test threads cannot race setenv against getenv.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            budget: budget_ms(),
        }
    }
}

impl Criterion {
    #[cfg(test)]
    fn with_budget(ms: u64) -> Self {
        Self {
            budget: Duration::from_millis(ms),
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(None, id, b.median(), None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let budget = self.budget;
        BenchmarkGroup {
            _parent: self,
            budget,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    budget: Duration,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(Some(&self.name), &id.into().id, b.median(), self.throughput);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b, input);
        report(Some(&self.name), &id.into().id, b.median(), self.throughput);
        self
    }

    /// Finishes the group (reporting happens eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function from a list of `fn(&mut Criterion)`
/// registrars.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(10));
        // The benched work must cost ≥ 1ns/iteration even under LTO:
        // per-iteration time is `elapsed / batch`, which truncates to zero
        // for sub-nanosecond bodies (e.g. a black_boxed constant add, or a
        // sum the optimizer closed-forms) — a real measurement, not a
        // harness bug. The inner black_box defeats both vectorization and
        // the Gauss closed form.
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1_000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(!b.samples.is_empty());
        assert!(b.median() > Duration::ZERO);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::with_budget(5);
        c.bench_function("standalone", |b| b.iter(|| black_box(1)));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("f", 100), &100u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
