//! Offline shim for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset its property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_filter`, and
//!   `prop_flat_map` combinators;
//! * range strategies over the common numeric types, [`Just`], tuple
//!   strategies, `collection::vec`, and the `num::f64` bit-class flags;
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`], and
//!   [`prop_assume!`] macros and a deterministic runner.
//!
//! Differences from the real crate, deliberate for a hermetic build:
//! **no shrinking** (a failing case reports its full input instead of a
//! minimal one) and a fixed per-test seed derived from the test name, so
//! failures reproduce exactly run-to-run. The case count honors the
//! `PROPTEST_CASES` environment variable (default 64).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic generator state handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Why a generated case did not run to completion.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by a filter or `prop_assume!`; it does not
    /// count toward the case budget.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Generates one value, or `Err` when a filter rejected the draw.
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, String>;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `pred`; the runner re-draws.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Builds a second strategy from each generated value and draws from
    /// it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Result<O, String> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, String> {
        let v = self.inner.generate(rng)?;
        if (self.pred)(&v) {
            Ok(v)
        } else {
            Err(self.reason.to_string())
        }
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<S2::Value, String> {
        let first = self.inner.generate(rng)?;
        (self.f)(first).generate(rng)
    }
}

/// Strategy producing exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Result<T, String> {
        Ok(self.0.clone())
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, String> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                Ok(((self.start as i128) + rng.below(span) as i128) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, String> {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                let v = self.start + unit * (self.end - self.start);
                Ok(if v >= self.end { self.start } else { v })
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, String> {
                let ($($name,)+) = self;
                Ok(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy for `Vec`s with a length drawn from `len`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, String> {
            let n = self.len.clone().generate(rng)?;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Numeric bit-class strategies.
pub mod num {
    /// Strategies over `f64` bit classes.
    pub mod f64 {
        use crate::{Strategy, TestRng};
        use std::ops::BitOr;

        /// A union of IEEE-754 `f64` value classes to draw from.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct FloatClasses(u8);

        /// Positive and negative zero.
        pub const ZERO: FloatClasses = FloatClasses(1);
        /// Subnormal values (zero exponent, nonzero mantissa).
        pub const SUBNORMAL: FloatClasses = FloatClasses(2);
        /// Normal values of either sign, over the full exponent range.
        pub const NORMAL: FloatClasses = FloatClasses(4);
        /// Positive and negative infinity.
        pub const INFINITE: FloatClasses = FloatClasses(8);

        impl BitOr for FloatClasses {
            type Output = FloatClasses;
            fn bitor(self, o: FloatClasses) -> FloatClasses {
                FloatClasses(self.0 | o.0)
            }
        }

        impl Strategy for FloatClasses {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> Result<f64, String> {
                let classes: Vec<u8> =
                    [1u8, 2, 4, 8].into_iter().filter(|c| self.0 & c != 0).collect();
                assert!(!classes.is_empty(), "empty float class union");
                let class = classes[rng.below(classes.len() as u64) as usize];
                let sign = rng.next_u64() & (1 << 63);
                let bits = match class {
                    1 => sign,
                    2 => sign | (1 + rng.below((1u64 << 52) - 1)),
                    4 => {
                        let exp = 1 + rng.below(2046);
                        let mantissa = rng.next_u64() & ((1u64 << 52) - 1);
                        sign | (exp << 52) | mantissa
                    }
                    _ => sign | (0x7FFu64 << 52),
                };
                Ok(f64::from_bits(bits))
            }
        }
    }
}

/// The namespace alias the real crate's prelude exposes as `prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::num;
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Runs one property: draws up to the configured number of cases from
/// `strategy` and applies `body` to each. Panics on the first failing
/// case, reporting the full input (this shim does not shrink).
pub fn run_property<S: Strategy>(
    name: &str,
    strategy: S,
    mut body: impl FnMut(S::Value) -> TestCaseResult,
) {
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    // Deterministic seed from the test name: failures reproduce exactly.
    let seed = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
    let mut rng = TestRng::new(seed);
    let mut executed = 0u64;
    let mut rejected = 0u64;
    let max_rejects = cases.saturating_mul(50).max(1000);
    while executed < cases {
        let value = match strategy.generate(&mut rng) {
            Ok(v) => v,
            Err(reason) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property '{name}': too many rejected draws ({rejected}), last reason: {reason}"
                );
                continue;
            }
        };
        let shown = format!("{value:?}");
        match body(value) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property '{name}': too many rejected cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property '{name}' failed after {executed} passing case(s): {msg}\n\
                     input: {shown}\n(no shrinking in the offline proptest shim)"
                );
            }
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { ... }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(
                    stringify!($name),
                    ($($strat,)+),
                    |($($arg,)+)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a property body, failing the case (not the
/// whole process) with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // The stringified condition may contain braces (closures, struct
        // patterns); pass it as a format argument, never as a format string.
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body via [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Skips the current case (without counting it) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        let strat = prop::collection::vec(-2.0..2.0f64, 3..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng).unwrap();
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (-2.0..2.0).contains(x)));
        }
    }

    #[test]
    fn map_filter_flat_map_compose() {
        let mut rng = crate::TestRng::new(2);
        let strat = (1usize..10)
            .prop_map(|n| n * 2)
            .prop_filter("even only", |n| n % 4 == 0)
            .prop_flat_map(|n| (Just(n), 0usize..n));
        let mut accepted = 0;
        for _ in 0..300 {
            if let Ok((n, k)) = strat.generate(&mut rng) {
                assert_eq!(n % 4, 0);
                assert!(k < n);
                accepted += 1;
            }
        }
        assert!(accepted > 0);
    }

    #[test]
    fn float_classes_generate_the_right_kind() {
        let mut rng = crate::TestRng::new(3);
        let strat = prop::num::f64::NORMAL | prop::num::f64::SUBNORMAL | prop::num::f64::ZERO;
        for _ in 0..500 {
            let v = strat.generate(&mut rng).unwrap();
            assert!(v.is_finite());
        }
        for _ in 0..100 {
            let z = prop::num::f64::ZERO.generate(&mut rng).unwrap();
            assert_eq!(z, 0.0);
            let s = prop::num::f64::SUBNORMAL.generate(&mut rng).unwrap();
            assert!(s.is_subnormal(), "{s}");
            let n = prop::num::f64::NORMAL.generate(&mut rng).unwrap();
            assert!(n.is_normal(), "{n}");
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0usize..100, v in prop::collection::vec(0i64..50, 0..8)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|e| (0..50).contains(e)));
            // Conditions containing braces must survive the single-argument
            // form (stringify output is a format *argument*, not a string).
            prop_assert!(v.iter().all(|e| { *e < 50 }));
            prop_assert!(matches!(v.len(), 0..=7));
        }
    }

    #[test]
    #[should_panic(expected = "no shrinking")]
    fn failing_property_reports_input() {
        crate::run_property("always_fails", (0usize..4,), |(_x,)| {
            prop_assert!(false, "forced");
            Ok(())
        });
    }
}
