//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset it uses: `crossbeam::channel`'s bounded MPSC
//! channel, implemented over `std::sync::mpsc::sync_channel`, and
//! `crossbeam::thread::scope`'s borrowing scoped threads, implemented over
//! `std::thread::scope`. Channel semantics match what the stream runtime
//! relies on: `send` blocks when the channel is full and errors after the
//! receiver hangs up, `Receiver::iter` blocks until the senders hang up,
//! and `try_iter` never blocks. Scope semantics match what the sharded
//! query engine relies on: spawned closures may borrow from the enclosing
//! frame, every thread is joined before `scope` returns, and a panicking
//! child propagates at scope exit (the real crate reports it through the
//! returned `Result` instead; both surface at the same `.unwrap()`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer single-consumer channels.
pub mod channel {
    /// Sending half of a bounded channel.
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;
    /// Receiving half of a bounded channel.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;
    /// Error returned by [`Sender::send`] after the receiver disconnects.
    pub type SendError<T> = std::sync::mpsc::SendError<T>;
    /// Error returned by `Sender::try_send`: `Full` when the channel has
    /// no free slot right now, `Disconnected` after the receiver hangs
    /// up. Both variants hand the message back, as in crossbeam.
    pub type TrySendError<T> = std::sync::mpsc::TrySendError<T>;

    /// Creates a bounded channel with room for `cap` in-flight messages.
    ///
    /// A capacity of zero degenerates to a rendezvous channel, as in
    /// crossbeam.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

/// Scoped threads that may borrow from the caller's stack frame.
pub mod thread {
    /// Spawning handle passed to the [`scope`] closure and to every
    /// spawned closure (the real crate's signature, enabling nested
    /// spawns).
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result (`Err`
        /// holds the panic payload if it panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope; the closure receives the
        /// scope again so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Creates a scope in which spawned threads may borrow non-`'static`
    /// data; all threads are joined before this returns.
    ///
    /// Unjoined panicking children propagate their panic here rather than
    /// through the `Err` variant (see the crate docs for why that is an
    /// acceptable deviation for this workspace).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(Vec::new());
        super::thread::scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(s.spawn(|_| chunk.iter().sum::<u64>()));
            }
            for h in handles {
                sums.lock().unwrap().push(h.join().unwrap());
            }
        })
        .unwrap();
        let mut got = sums.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![3, 7]);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let counter = std::sync::atomic::AtomicU32::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                s2.spawn(|_| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn send_receive_round_trip() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_iter_is_nonblocking() {
        let (tx, rx) = bounded::<i32>(4);
        assert_eq!(rx.try_iter().count(), 0);
        tx.send(7).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
