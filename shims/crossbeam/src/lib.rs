//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset it uses: `crossbeam::channel`'s bounded MPSC
//! channel, implemented over `std::sync::mpsc::sync_channel`. Semantics
//! match what the stream runtime relies on: `send` blocks when the channel
//! is full and errors after the receiver hangs up, `Receiver::iter` blocks
//! until the senders hang up, and `try_iter` never blocks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer single-consumer channels.
pub mod channel {
    /// Sending half of a bounded channel.
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;
    /// Receiving half of a bounded channel.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;
    /// Error returned by [`Sender::send`] after the receiver disconnects.
    pub type SendError<T> = std::sync::mpsc::SendError<T>;

    /// Creates a bounded channel with room for `cap` in-flight messages.
    ///
    /// A capacity of zero degenerates to a rendezvous channel, as in
    /// crossbeam.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn send_receive_round_trip() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_iter_is_nonblocking() {
        let (tx, rx) = bounded::<i32>(4);
        assert_eq!(rx.try_iter().count(), 0);
        tx.send(7).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
