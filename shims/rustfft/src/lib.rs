//! Offline shim for the `rustfft` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset it uses: `FftPlanner` producing `Arc<dyn Fft>`
//! plans, `num_complex::Complex<f64>`, in-place `process`, and rustfft's
//! conventions (forward = `e^{-i2πkt/n}`, inverse unnormalized).
//!
//! Power-of-two lengths use an iterative radix-2 Cooley–Tukey transform;
//! every other length goes through Bluestein's chirp-z algorithm, so
//! arbitrary sizes stay O(n log n). Correctness is cross-checked in the
//! workspace against `asap-dsp`'s independent from-scratch FFT oracle
//! (`fft_ref`) and its brute-force O(n²) ACF estimator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::f64::consts::PI;
use std::sync::Arc;

/// Minimal stand-in for the `num_complex` facade rustfft re-exports.
pub mod num_complex {
    use std::ops::{Add, Mul, Sub};

    /// A complex number with real and imaginary parts of type `T`.
    #[derive(Debug, Clone, Copy, PartialEq, Default)]
    pub struct Complex<T> {
        /// Real part.
        pub re: T,
        /// Imaginary part.
        pub im: T,
    }

    impl<T> Complex<T> {
        /// Creates a complex number from its parts.
        pub fn new(re: T, im: T) -> Self {
            Complex { re, im }
        }
    }

    impl Complex<f64> {
        /// Squared magnitude `re² + im²`.
        #[inline]
        pub fn norm_sqr(self) -> f64 {
            self.re * self.re + self.im * self.im
        }

        /// Complex conjugate.
        #[inline]
        pub fn conj(self) -> Self {
            Complex::new(self.re, -self.im)
        }
    }

    impl Add for Complex<f64> {
        type Output = Self;
        #[inline]
        fn add(self, o: Self) -> Self {
            Complex::new(self.re + o.re, self.im + o.im)
        }
    }

    impl Sub for Complex<f64> {
        type Output = Self;
        #[inline]
        fn sub(self, o: Self) -> Self {
            Complex::new(self.re - o.re, self.im - o.im)
        }
    }

    impl Mul for Complex<f64> {
        type Output = Self;
        #[inline]
        fn mul(self, o: Self) -> Self {
            Complex::new(
                self.re * o.re - self.im * o.im,
                self.re * o.im + self.im * o.re,
            )
        }
    }
}

use num_complex::Complex;

/// A planned fast Fourier transform over `Complex<f64>` buffers.
pub trait Fft {
    /// Transforms `buf` in place.
    ///
    /// # Panics
    /// Panics when `buf.len()` differs from the planned length.
    fn process(&self, buf: &mut [Complex<f64>]);
}

/// Plans forward and inverse FFTs of arbitrary length.
#[derive(Debug, Default)]
pub struct FftPlanner;

impl FftPlanner {
    /// Creates a planner.
    pub fn new() -> Self {
        FftPlanner
    }

    /// Plans a forward FFT of length `len`.
    pub fn plan_fft_forward(&mut self, len: usize) -> Arc<dyn Fft> {
        Arc::new(Plan {
            len,
            inverse: false,
        })
    }

    /// Plans an (unnormalized) inverse FFT of length `len`.
    pub fn plan_fft_inverse(&mut self, len: usize) -> Arc<dyn Fft> {
        Arc::new(Plan { len, inverse: true })
    }
}

struct Plan {
    len: usize,
    inverse: bool,
}

impl Fft for Plan {
    fn process(&self, buf: &mut [Complex<f64>]) {
        assert_eq!(
            buf.len(),
            self.len,
            "buffer length does not match planned FFT length"
        );
        if self.len <= 1 {
            return;
        }
        if self.inverse {
            // Unnormalized inverse via IDFT(x) = conj(DFT(conj(x))).
            for v in buf.iter_mut() {
                *v = v.conj();
            }
            forward(buf);
            for v in buf.iter_mut() {
                *v = v.conj();
            }
        } else {
            forward(buf);
        }
    }
}

/// Forward DFT of arbitrary length, dispatching radix-2 vs Bluestein.
fn forward(buf: &mut [Complex<f64>]) {
    if buf.len().is_power_of_two() {
        radix2(buf);
    } else {
        bluestein(buf);
    }
}

/// In-place iterative radix-2 Cooley–Tukey forward FFT.
fn radix2(buf: &mut [Complex<f64>]) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }

    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2] * w;
                buf[i + k] = u + v;
                buf[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Chirp along the quadratic phase `e^{-iπ m²/n}`, with the exponent
/// reduced mod 2n so the angle stays accurate for large `m`.
fn chirp(m: usize, n: usize) -> Complex<f64> {
    let sq = ((m as u128 * m as u128) % (2 * n as u128)) as f64;
    let ang = -PI * sq / n as f64;
    Complex::new(ang.cos(), ang.sin())
}

/// Bluestein's chirp-z transform: forward DFT of arbitrary `n` as one
/// power-of-two circular convolution.
fn bluestein(buf: &mut [Complex<f64>]) {
    let n = buf.len();
    let m = (2 * n - 1).next_power_of_two();

    // a_k = x_k · chirp(k); b is the circularized conjugate chirp.
    let mut a = vec![Complex::new(0.0, 0.0); m];
    let mut b = vec![Complex::new(0.0, 0.0); m];
    for k in 0..n {
        let c = chirp(k, n);
        a[k] = buf[k] * c;
        let bc = c.conj();
        b[k] = bc;
        if k != 0 {
            b[m - k] = bc;
        }
    }

    radix2(&mut a);
    radix2(&mut b);
    for (x, y) in a.iter_mut().zip(&b) {
        *x = *x * *y;
    }
    // Normalized inverse radix-2 FFT of the product.
    for v in a.iter_mut() {
        *v = v.conj();
    }
    radix2(&mut a);
    let inv_m = 1.0 / m as f64;
    for (k, out) in buf.iter_mut().enumerate() {
        let conv = Complex::new(a[k].re * inv_m, -a[k].im * inv_m);
        *out = conv * chirp(k, n);
    }
}

#[cfg(test)]
mod tests {
    use super::num_complex::Complex;
    use super::FftPlanner;
    use std::f64::consts::PI;

    fn dft_naive(data: &[Complex<f64>]) -> Vec<Complex<f64>> {
        let n = data.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::new(0.0, 0.0);
                for (t, &x) in data.iter().enumerate() {
                    let ang = -2.0 * PI * ((k * t) % n) as f64 / n as f64;
                    acc = acc + x * Complex::new(ang.cos(), ang.sin());
                }
                acc
            })
            .collect()
    }

    fn signal(n: usize) -> Vec<Complex<f64>> {
        (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect()
    }

    #[test]
    fn forward_matches_naive_dft_all_sizes() {
        for n in [2usize, 3, 4, 5, 12, 64, 101, 128, 1000] {
            let data = signal(n);
            let mut fast = data.clone();
            FftPlanner::new().plan_fft_forward(n).process(&mut fast);
            let naive = dft_naive(&data);
            for (a, b) in fast.iter().zip(&naive) {
                assert!(
                    (a.re - b.re).abs() < 1e-7 && (a.im - b.im).abs() < 1e-7,
                    "n={n}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn inverse_is_unnormalized_round_trip() {
        for n in [8usize, 100, 101, 256] {
            let data = signal(n);
            let mut buf = data.clone();
            let mut planner = FftPlanner::new();
            planner.plan_fft_forward(n).process(&mut buf);
            planner.plan_fft_inverse(n).process(&mut buf);
            for (a, b) in buf.iter().zip(&data) {
                assert!(
                    (a.re / n as f64 - b.re).abs() < 1e-9
                        && (a.im / n as f64 - b.im).abs() < 1e-9,
                    "n={n}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "planned FFT length")]
    fn wrong_buffer_length_panics() {
        let mut buf = vec![Complex::new(0.0, 0.0); 4];
        FftPlanner::new().plan_fft_forward(8).process(&mut buf);
    }
}
