//! Offline shim for the `rand` crate (0.8-era API surface).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset it uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over half-open numeric
//! ranges, and `Rng::gen` for `f64`/`bool`/unsigned integers.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the same
//! stream as the real `StdRng` (ChaCha12), but the workspace only relies on
//! *deterministic seeded* randomness, never on a specific stream: the data
//! simulators and the observer model fix their seeds and only need
//! run-to-run reproducibility, which any fixed PRNG provides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word generator.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a range, mirroring `rand`'s
/// `SampleUniform`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a value in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range forms accepted by [`Rng::gen_range`], mirroring `rand`'s
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Width fits in u64 for every supported integer type.
                let span = (hi as i128 - lo as i128) as u64;
                // Rejection sampling to avoid modulo bias.
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let v = rng.next_u64();
                    if v < zone || zone == 0 {
                        return ((lo as i128) + (v % span) as i128) as $t;
                    }
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range called with empty range");
                if hi < <$t>::MAX {
                    <$t>::sample_half_open(rng, lo, hi + 1)
                } else if lo > <$t>::MIN {
                    // Shift the whole range down one so the half-open draw
                    // covers it, then shift the sample back up: uniform over
                    // [lo, hi] including hi == MAX.
                    <$t>::sample_half_open(rng, lo - 1, hi) + 1
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let unit = unit_f64(rng) as $t;
                let v = lo + unit * (hi - lo);
                // Guard the open upper bound against rounding.
                if v >= hi { lo.max(hi - (hi - lo) * <$t>::EPSILON) } else { v }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A uniform draw from `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardSample {
    /// Draws one standard sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Draws a standard sample: `f64`/`f32` in `[0, 1)`, uniform `bool`,
    /// uniform unsigned integer.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding procedure.
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&v), "{v}");
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn inclusive_range_ending_at_type_max_reaches_max() {
        let mut rng = StdRng::seed_from_u64(13);
        let lo = u64::MAX - 3;
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            let v: u64 = rng.gen_range(lo..=u64::MAX);
            assert!(v >= lo);
            seen[(v - lo) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..100 {
            let _: u64 = rng.gen_range(0..=u64::MAX);
            let v: i8 = rng.gen_range(120..=i8::MAX);
            assert!(v >= 120);
        }
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }
}
