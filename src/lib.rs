//! # asap — Automatic Smoothing for Attention Prioritization
//!
//! A from-scratch Rust reproduction of *ASAP: Prioritizing Attention via
//! Time Series Smoothing* (Kexin Rong & Peter Bailis, VLDB 2017).
//!
//! ASAP automatically smooths streaming time series for visualization: it
//! finds the moving-average window that **minimizes roughness** (σ of first
//! differences) while **preserving kurtosis** (so large-scale deviations
//! stay visible), and does so orders of magnitude faster than exhaustive
//! search via autocorrelation pruning, pixel-aware preaggregation, and
//! on-demand streaming refresh.
//!
//! ## Quickstart
//!
//! ```
//! use asap::prelude::*;
//!
//! // A noisy daily-periodic signal, 2 weeks at 5-minute resolution.
//! let series = asap::data::sim_daily();
//! // Smooth for an 800-pixel-wide chart.
//! let result = Asap::builder()
//!     .resolution(800)
//!     .build()
//!     .smooth(series.values())
//!     .unwrap();
//! assert!(result.window >= 1);
//! assert!(result.smoothed.len() <= 800 + 1);
//! ```
//!
//! The umbrella crate re-exports each workspace crate under a short path:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`timeseries`] | `asap-timeseries` | moments, roughness, kurtosis, SMA |
//! | [`dsp`] | `asap-dsp` | FFT autocorrelation, peaks, smoothing filters |
//! | [`data`] | `asap-data` | simulators of the paper's 11 evaluation datasets |
//! | [`stream`] | `asap-stream` | pane-based sliding-window runtime |
//! | [`core`] | `asap-core` | the ASAP search (Algorithms 1–3) |
//! | [`baselines`] | `asap-baselines` | M4, PAA, Visvalingam–Whyatt, oversmooth |
//! | [`eval`] | `asap-eval` | experiment harness and simulated user study |
//! | [`tsdb`] | `asap-tsdb` | embedded Gorilla-compressed time-series storage |
//! | [`server`] | `asap-server` | TCP front-end: line-protocol ingest, text query protocol, compaction scheduler |
//! | [`viz`] | `asap-viz` | SVG and terminal chart rendering |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use asap_baselines as baselines;
pub use asap_core as core;
pub use asap_data as data;
pub use asap_dsp as dsp;
pub use asap_eval as eval;
pub use asap_server as server;
pub use asap_stream as stream;
pub use asap_timeseries as timeseries;
pub use asap_tsdb as tsdb;
pub use asap_viz as viz;

/// Convenience prelude pulling in the most common types.
pub mod prelude {
    pub use asap_core::{Asap, AsapBuilder, SearchOutcome, SmoothingResult};
    pub use asap_timeseries::{kurtosis, roughness, sma, TimeSeries};
}
