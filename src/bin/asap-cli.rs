//! `asap-cli` — smooth a time series from the command line.
//!
//! ```text
//! asap-cli datasets
//!     list the built-in dataset simulators
//!
//! asap-cli smooth [--dataset NAME | --csv PATH] [--resolution N]
//!                 [--svg PATH] [--term] [--no-preagg]
//!     run ASAP on a built-in dataset or a CSV file (timestamp,value per
//!     line) and report the chosen window; optionally render the result
//!     as an SVG figure or a terminal chart.
//!
//! asap-cli watch --addr HOST:PORT [--every N] [--alert K] [--frames N]
//!                SELECTOR
//!     subscribe to an asap-server query port and tail the pushed
//!     FRAME/ALERT lines for every series matching SELECTOR (for
//!     example `cpu.usage` or `cpu.*{host=web1}`); stop after N frames
//!     with --frames, otherwise stream until interrupted.
//!
//! asap-cli query --addr HOST:PORT REQUEST
//!     send one request line (`RANGE`, `SMOOTH`, `STATS`, `METRICS`,
//!     `HEALTH`, ...) to an asap-server query port and print the full
//!     response; exits non-zero on an ERR response.
//! ```
//!
//! Examples:
//!
//! ```text
//! cargo run --release --bin asap-cli -- smooth --dataset Taxi --term
//! cargo run --release --bin asap-cli -- smooth --csv data.csv --resolution 800 --svg out.svg
//! ```

use asap::core::Asap;
use asap::timeseries::{kurtosis, roughness, zscore};
use asap::viz::{Figure, SvgChart, SvgSeries, TerminalChart};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("datasets") => cmd_datasets(),
        Some("smooth") => cmd_smooth(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n");
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    eprintln!("usage:");
    eprintln!("  asap-cli datasets");
    eprintln!("  asap-cli smooth [--dataset NAME | --csv PATH] [--resolution N]");
    eprintln!("                  [--svg PATH] [--term] [--no-preagg]");
    eprintln!("  asap-cli watch  --addr HOST:PORT [--every N] [--alert K] [--frames N]");
    eprintln!("                  SELECTOR");
    eprintln!("  asap-cli query  --addr HOST:PORT REQUEST");
}

fn cmd_datasets() -> i32 {
    println!("{:<16} {:>9}  description", "name", "points");
    for info in asap::data::all_datasets() {
        println!("{:<16} {:>9}  {}", info.name, info.n_points, info.description);
    }
    0
}

/// Parsed flags of the `smooth` subcommand.
struct SmoothArgs {
    dataset: Option<String>,
    csv: Option<String>,
    resolution: usize,
    svg: Option<String>,
    term: bool,
    preagg: bool,
}

fn parse_smooth_args(args: &[String]) -> Result<SmoothArgs, String> {
    let mut out = SmoothArgs {
        dataset: None,
        csv: None,
        resolution: 800,
        svg: None,
        term: false,
        preagg: true,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--dataset" => out.dataset = Some(value("--dataset")?),
            "--csv" => out.csv = Some(value("--csv")?),
            "--resolution" => {
                out.resolution = value("--resolution")?
                    .parse()
                    .map_err(|_| "resolution must be a positive integer".to_string())?;
            }
            "--svg" => out.svg = Some(value("--svg")?),
            "--term" => out.term = true,
            "--no-preagg" => out.preagg = false,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if out.dataset.is_some() == out.csv.is_some() {
        return Err("exactly one of --dataset or --csv is required".into());
    }
    if out.resolution == 0 {
        return Err("resolution must be positive".into());
    }
    Ok(out)
}

/// Parsed flags of the `watch` subcommand.
struct WatchArgs {
    addr: String,
    selector: String,
    every: Option<usize>,
    alert: Option<f64>,
    frames: Option<usize>,
}

fn parse_watch_args(args: &[String]) -> Result<WatchArgs, String> {
    let mut addr = None;
    let mut selector = None;
    let mut every = None;
    let mut alert = None;
    let mut frames = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--every" => {
                every = Some(
                    value("--every")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| "--every must be a positive integer".to_string())?,
                );
            }
            "--alert" => {
                alert = Some(
                    value("--alert")?
                        .parse::<f64>()
                        .ok()
                        .filter(|k| k.is_finite() && *k > 0.0)
                        .ok_or_else(|| "--alert must be a positive number".to_string())?,
                );
            }
            "--frames" => {
                frames = Some(
                    value("--frames")?
                        .parse::<usize>()
                        .map_err(|_| "--frames must be a non-negative integer".to_string())?,
                );
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            positional => {
                if selector.replace(positional.to_string()).is_some() {
                    return Err("exactly one SELECTOR is expected".into());
                }
            }
        }
    }
    Ok(WatchArgs {
        addr: addr.ok_or("--addr is required")?,
        selector: selector.ok_or("a SELECTOR argument is required")?,
        every,
        alert,
        frames,
    })
}

/// Subscribes to a running `asap-server` query port and prints pushed
/// `FRAME`/`ALERT` lines as they arrive.
fn cmd_watch(args: &[String]) -> i32 {
    use std::io::{BufRead, BufReader, Write};

    let args = match parse_watch_args(args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            print_usage();
            return 2;
        }
    };
    let mut request = format!("SUBSCRIBE {}", args.selector);
    if let Some(every) = args.every {
        request.push_str(&format!(" EVERY {every}"));
    }
    if let Some(k) = args.alert {
        request.push_str(&format!(" ALERT k={k}"));
    }
    request.push('\n');

    let stream = match std::net::TcpStream::connect(&args.addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: connecting to {}: {e}", args.addr);
            return 1;
        }
    };
    if let Err(e) = (&stream).write_all(request.as_bytes()) {
        eprintln!("error: sending subscription: {e}");
        return 1;
    }
    // Half-close our write side: the server keeps the connection in
    // push-only mode while the subscription lives.
    let _ = stream.shutdown(std::net::Shutdown::Write);

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => {
            eprintln!("error: server closed the connection before acknowledging");
            return 1;
        }
        Ok(_) => {
            let ack = line.trim_end();
            if !ack.starts_with("OK subscribed") {
                eprintln!("error: server refused the subscription: {ack}");
                return 1;
            }
            eprintln!("{ack}");
        }
        Err(e) => {
            eprintln!("error: reading acknowledgment: {e}");
            return 1;
        }
    }

    let mut seen_frames = 0usize;
    loop {
        if let Some(limit) = args.frames {
            if seen_frames >= limit {
                return 0;
            }
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                eprintln!("server closed the connection");
                return 0;
            }
            Ok(_) => {
                print!("{line}");
                let _ = std::io::stdout().flush();
                if line.starts_with("FRAME ") {
                    seen_frames += 1;
                }
            }
            Err(e) => {
                eprintln!("error: reading stream: {e}");
                return 1;
            }
        }
    }
}

/// Sends one request line to a running `asap-server` query port and
/// prints the complete response (single line or `...END`-terminated
/// block), making `asap-cli` a full client: ingest via line protocol,
/// watch via SUBSCRIBE, and now one-shot queries.
fn cmd_query(args: &[String]) -> i32 {
    use std::io::{Read, Write};

    let mut addr = None;
    let mut request = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => {
                    eprintln!("error: flag --addr requires a value\n");
                    print_usage();
                    return 2;
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag `{flag}`\n");
                print_usage();
                return 2;
            }
            positional => {
                if request.replace(positional.to_string()).is_some() {
                    eprintln!("error: exactly one REQUEST is expected (quote the whole line)\n");
                    print_usage();
                    return 2;
                }
            }
        }
    }
    let (Some(addr), Some(request)) = (addr, request) else {
        eprintln!("error: query needs --addr and a REQUEST argument\n");
        print_usage();
        return 2;
    };
    if request.contains('\n') {
        eprintln!("error: REQUEST must be a single line");
        return 2;
    }

    let mut stream = match std::net::TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: connecting to {addr}: {e}");
            return 1;
        }
    };
    if let Err(e) = stream.write_all(format!("{request}\n").as_bytes()) {
        eprintln!("error: sending request: {e}");
        return 1;
    }
    // Half-close: the server answers the pending request, sees EOF, and
    // closes, so `read_to_string` terminates without a framing parser.
    let _ = stream.shutdown(std::net::Shutdown::Write);

    let mut response = String::new();
    if let Err(e) = stream.read_to_string(&mut response) {
        eprintln!("error: reading response: {e}");
        return 1;
    }
    if response.is_empty() {
        eprintln!("error: server closed the connection without responding");
        return 1;
    }
    print!("{response}");
    i32::from(response.starts_with("ERR"))
}

fn cmd_smooth(args: &[String]) -> i32 {
    let args = match parse_smooth_args(args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            print_usage();
            return 2;
        }
    };

    let (name, values) = if let Some(ds) = &args.dataset {
        match asap::data::by_name(ds) {
            Some(info) => (info.name.to_string(), info.generate().values().to_vec()),
            None => {
                eprintln!("error: unknown dataset `{ds}` (see `asap-cli datasets`)");
                return 2;
            }
        }
    } else {
        let path = args.csv.as_deref().expect("validated");
        match asap::data::read_csv(std::path::Path::new(path), path) {
            Ok(series) => (path.to_string(), series.values().to_vec()),
            Err(e) => {
                eprintln!("error: reading {path}: {e}");
                return 1;
            }
        }
    };

    let asap_op = Asap::builder()
        .resolution(args.resolution)
        .preaggregate(args.preagg)
        .build();
    let result = match asap_op.smooth(&values) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: smoothing failed: {e}");
            return 1;
        }
    };

    let raw_rough = roughness(&result.aggregated).unwrap_or(f64::NAN);
    let raw_kurt = kurtosis(&result.aggregated).unwrap_or(f64::NAN);
    println!("series:           {name} ({} points)", values.len());
    println!("resolution:       {} px (pixel ratio {})", args.resolution, result.pixel_ratio);
    println!(
        "chosen window:    {} aggregated points = {} raw points",
        result.window, result.window_raw_points
    );
    println!("candidates:       {}", result.candidates_checked);
    println!("roughness:        {raw_rough:.4} -> {:.4}", result.roughness);
    println!("kurtosis:         {raw_kurt:.3} -> {:.3}", result.kurtosis);
    if result.is_unsmoothed() {
        println!("(left unsmoothed: kurtosis constraint binds, as for spiky series)");
    }

    if args.term {
        let chart = TerminalChart::new(72, 10).title(format!("{name} — ASAP"));
        match chart.render(&[&result.smoothed]) {
            Ok(txt) => print!("{txt}"),
            Err(e) => eprintln!("terminal render failed: {e}"),
        }
    }
    if let Some(svg_path) = &args.svg {
        let raw_z = zscore(&values).unwrap_or_else(|_| values.to_vec());
        let smooth_z = zscore(&result.smoothed).unwrap_or_else(|_| result.smoothed.clone());
        let fig = Figure::new(900, 220)
            .panel(
                SvgChart::new(1, 1)
                    .title(format!("{name} — raw"))
                    .y_label("zscore")
                    .series(SvgSeries::from_values("raw", &raw_z).color("#377eb8")),
            )
            .panel(
                SvgChart::new(1, 1)
                    .title(format!(
                        "{name} — ASAP (window {} raw points)",
                        result.window_raw_points
                    ))
                    .y_label("zscore")
                    .series(SvgSeries::from_values("asap", &smooth_z).color("#e41a1c")),
            );
        match fig.write_to(std::path::Path::new(svg_path)) {
            Ok(()) => println!("wrote {svg_path}"),
            Err(e) => {
                eprintln!("error: writing {svg_path}: {e}");
                return 1;
            }
        }
    }
    0
}
