//! Alerting on smoothed streams — the paper's §7 future-work integration.
//!
//! The introduction's motivating failure: an electrical utility's operators
//! must "quickly identify any systematic shifts of generator metrics ...
//! even those that are *sub-threshold* with respect to a critical alarm",
//! but such shifts are obscured by short-term fluctuation. A fixed
//! threshold on the raw stream cannot fire on a shift smaller than the
//! noise band; the same threshold on ASAP's smoothed rendering can, because
//! smoothing collapses the noise band while the kurtosis constraint
//! preserves the shift.
//!
//! [`DeviationAlerter`] inspects each streaming [`Frame`]: it z-scores the
//! frame's smoothed series and fires when the **trailing run** of points
//! all deviate by more than `k_sigma` standard deviations in the same
//! direction for at least `min_run` points — a sustained systematic shift,
//! not a transient.

use crate::streaming::Frame;
use asap_timeseries::Moments;

/// Direction of a detected shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Sustained deviation above the baseline.
    Up,
    /// Sustained deviation below the baseline.
    Down,
}

/// A fired alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Length of the trailing deviant run, in smoothed points.
    pub run_len: usize,
    /// Mean z-score over the run (signed).
    pub mean_z: f64,
    /// Shift direction.
    pub direction: Direction,
    /// Raw points ingested when the alert fired.
    pub points_ingested: u64,
}

/// Detects sustained deviations in smoothed frames.
#[derive(Debug, Clone)]
pub struct DeviationAlerter {
    k_sigma: f64,
    min_run: usize,
}

impl DeviationAlerter {
    /// Creates an alerter firing when ≥ `min_run` trailing smoothed points
    /// deviate by more than `k_sigma` standard deviations in one direction.
    ///
    /// # Panics
    /// Panics if `k_sigma` is not positive or `min_run` is zero.
    pub fn new(k_sigma: f64, min_run: usize) -> Self {
        assert!(k_sigma > 0.0, "k_sigma must be positive");
        assert!(min_run > 0, "min_run must be positive");
        DeviationAlerter { k_sigma, min_run }
    }

    /// Checks the latest frame; returns an alert when the trailing run of
    /// deviant points is long enough.
    pub fn check(&self, frame: &Frame) -> Option<Alert> {
        let series = &frame.smoothed;
        if series.len() < self.min_run + 1 {
            return None;
        }
        let m = Moments::from_slice(series);
        let sd = m.stddev();
        if sd <= 0.0 || !sd.is_finite() {
            return None;
        }
        let mu = m.mean();

        let mut run_len = 0usize;
        let mut z_sum = 0.0f64;
        let mut sign = 0i8;
        for &v in series.iter().rev() {
            let z = (v - mu) / sd;
            let s = if z > self.k_sigma {
                1i8
            } else if z < -self.k_sigma {
                -1i8
            } else {
                break;
            };
            if sign == 0 {
                sign = s;
            } else if s != sign {
                break;
            }
            run_len += 1;
            z_sum += z;
        }
        if run_len >= self.min_run {
            Some(Alert {
                run_len,
                mean_z: z_sum / run_len as f64,
                direction: if sign > 0 { Direction::Up } else { Direction::Down },
                points_ingested: frame.points_ingested,
            })
        } else {
            None
        }
    }
}

/// Edge-triggered wrapper over [`DeviationAlerter`] for push pipelines.
///
/// A standing subscription checks every emitted frame; a sustained shift
/// therefore re-fires on each refresh for as long as the run persists,
/// flooding subscribers with identical alerts. The gate turns the level
/// signal into edges: it forwards an alert only when the stream
/// *transitions* into a deviant state (or flips direction mid-run), stays
/// silent while the same shift persists, and re-arms once a frame comes
/// back clean.
#[derive(Debug, Clone)]
pub struct AlertGate {
    alerter: DeviationAlerter,
    active: Option<Direction>,
}

impl AlertGate {
    /// Wraps `alerter` with edge-triggered delivery.
    pub fn new(alerter: DeviationAlerter) -> Self {
        AlertGate {
            alerter,
            active: None,
        }
    }

    /// Whether the stream is currently inside a deviant run (an alert was
    /// delivered and no clean frame has been seen since).
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// Checks the latest frame; returns an alert only on the transition
    /// into a deviant run or on a direction flip within one.
    pub fn check(&mut self, frame: &Frame) -> Option<Alert> {
        match self.alerter.check(frame) {
            Some(alert) => {
                if self.active == Some(alert.direction) {
                    None // still the same run: already reported
                } else {
                    self.active = Some(alert.direction);
                    Some(alert)
                }
            }
            None => {
                self.active = None; // clean frame re-arms the gate
                None
            }
        }
    }
}

/// The naive comparator: a fixed absolute threshold on raw values, the
/// "critical alarm" of the case study. Fires on any single raw crossing.
#[derive(Debug, Clone)]
pub struct RawThresholdAlerter {
    /// Lower alarm bound.
    pub lower: f64,
    /// Upper alarm bound.
    pub upper: f64,
    crossings: u64,
}

impl RawThresholdAlerter {
    /// Creates the alarm with absolute bounds.
    pub fn new(lower: f64, upper: f64) -> Self {
        RawThresholdAlerter {
            lower,
            upper,
            crossings: 0,
        }
    }

    /// Feeds one raw point; returns `true` on a crossing.
    pub fn push(&mut self, value: f64) -> bool {
        if value < self.lower || value > self.upper {
            self.crossings += 1;
            true
        } else {
            false
        }
    }

    /// Number of crossings seen.
    pub fn crossings(&self) -> u64 {
        self.crossings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::{StreamingAsap, StreamingConfig};

    /// Periodic + noise stream with a sustained sub-threshold dip at the
    /// end: the dip (−2 units) is well inside the raw noise band (±3).
    fn utility_stream(n: usize, dip_from: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let seasonal = (std::f64::consts::TAU * i as f64 / 480.0).sin();
                let noise = 2.0 * ((((i as u64) * 2654435761) % 1000) as f64 / 1000.0 - 0.5);
                let dip = if i >= dip_from { -2.0 } else { 0.0 };
                50.0 + seasonal + noise + dip
            })
            .collect()
    }

    fn last_frame(data: &[f64]) -> Frame {
        let mut op = StreamingAsap::new(StreamingConfig::new(data.len(), 200, data.len()));
        let mut last = None;
        for &v in data {
            if let Some(f) = op.push(v).unwrap() {
                last = Some(f);
            }
        }
        last.unwrap()
    }

    #[test]
    fn sustained_sub_threshold_shift_fires_on_smoothed_stream() {
        let data = utility_stream(20_000, 17_000);
        let frame = last_frame(&data);
        let alert = DeviationAlerter::new(1.0, 5).check(&frame);
        let alert = alert.expect("sustained dip should alert");
        assert_eq!(alert.direction, Direction::Down);
        assert!(alert.mean_z < -1.0);
        assert!(alert.run_len >= 5);
    }

    #[test]
    fn raw_threshold_misses_the_same_shift() {
        // The critical alarm is set outside the noise band; the -2 dip
        // never crosses it.
        let data = utility_stream(20_000, 17_000);
        let lo = 50.0 - 1.0 - 1.0 - 2.0 - 0.5; // seasonal + noise + dip margin
        let mut alarm = RawThresholdAlerter::new(lo, 55.0);
        for &v in &data {
            alarm.push(v);
        }
        assert_eq!(alarm.crossings(), 0, "sub-threshold by construction");
    }

    #[test]
    fn stable_stream_does_not_alert() {
        let data = utility_stream(20_000, usize::MAX);
        let frame = last_frame(&data);
        assert!(DeviationAlerter::new(1.0, 5).check(&frame).is_none());
    }

    #[test]
    fn upward_shift_reports_up() {
        let data: Vec<f64> = utility_stream(20_000, usize::MAX)
            .into_iter()
            .enumerate()
            .map(|(i, v)| if i >= 17_000 { v + 2.0 } else { v })
            .collect();
        let frame = last_frame(&data);
        let alert = DeviationAlerter::new(1.0, 5).check(&frame).expect("alerts");
        assert_eq!(alert.direction, Direction::Up);
    }

    #[test]
    fn run_length_requirement_filters_transients() {
        // A single smoothed outlier at the very end must not alert when
        // min_run > 1.
        let mut data = utility_stream(20_000, usize::MAX);
        let n = data.len();
        for v in &mut data[n - 100..] {
            *v += 12.0; // one pane's worth of spike
        }
        let frame = last_frame(&data);
        let strict = DeviationAlerter::new(1.0, 10).check(&frame);
        assert!(strict.is_none(), "{strict:?}");
    }

    #[test]
    #[should_panic(expected = "min_run")]
    fn zero_min_run_panics() {
        DeviationAlerter::new(1.0, 0);
    }

    #[test]
    fn gate_fires_once_per_run_and_rearms_on_clean_frame() {
        let dipped = last_frame(&utility_stream(20_000, 17_000));
        let clean = last_frame(&utility_stream(20_000, usize::MAX));
        let mut gate = AlertGate::new(DeviationAlerter::new(1.0, 5));

        assert!(!gate.is_active());
        let first = gate.check(&dipped).expect("edge into the run alerts");
        assert_eq!(first.direction, Direction::Down);
        assert!(gate.is_active());
        // The same sustained run stays silent on subsequent frames.
        assert!(gate.check(&dipped).is_none());
        assert!(gate.check(&dipped).is_none());
        assert!(gate.is_active());
        // A clean frame re-arms; the next deviant frame alerts again.
        assert!(gate.check(&clean).is_none());
        assert!(!gate.is_active());
        assert!(gate.check(&dipped).is_some());
    }

    #[test]
    fn gate_reports_direction_flips_within_a_run() {
        let down = last_frame(&utility_stream(20_000, 17_000));
        let up: Vec<f64> = utility_stream(20_000, usize::MAX)
            .into_iter()
            .enumerate()
            .map(|(i, v)| if i >= 17_000 { v + 2.0 } else { v })
            .collect();
        let up = last_frame(&up);
        let mut gate = AlertGate::new(DeviationAlerter::new(1.0, 5));
        assert_eq!(gate.check(&down).unwrap().direction, Direction::Down);
        // Flip straight to an upward run without an intervening clean
        // frame: a new shift, so it must be reported.
        assert_eq!(gate.check(&up).unwrap().direction, Direction::Up);
        assert!(gate.check(&up).is_none());
    }
}
