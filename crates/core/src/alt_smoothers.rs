//! Alternative smoothing functions under ASAP's selection criterion
//! (Appendix B.2, Figure B.2).
//!
//! The paper asks: holding the parameter-selection criterion fixed
//! (minimize roughness subject to kurtosis preservation), how do other
//! smoothing functions compare to SMA? This module sweeps each
//! alternative's parameter the same way ASAP sweeps SMA windows:
//!
//! * `SG1` / `SG4` — Savitzky–Golay of degree 1 and 4, sweeping odd window
//!   lengths;
//! * `FFT-low` / `FFT-dominant` — Fourier reconstruction keeping the k
//!   lowest / k most powerful components, sweeping k downward;
//! * `minmax` — min–max aggregation, sweeping the window;
//! * `wavelet` — Haar soft-threshold denoising (§6's wavelet alternative,
//!   beyond the paper's B.2 set), sweeping the threshold scale.
//!
//! Figure B.2 reports each alternative's *achieved roughness relative to
//! SMA*; the benches regenerate those ratios.

use crate::config::AsapConfig;
use asap_dsp::fft_filter::{fft_reconstruct, ComponentSelection};
use asap_dsp::minmax_filter::minmax_aggregate;
use asap_dsp::wavelet;
use asap_dsp::SavitzkyGolay;
use asap_timeseries::{kurtosis, roughness, TimeSeriesError};

/// The smoothing-function families compared in Figure B.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmootherKind {
    /// Simple moving average — ASAP's choice.
    Sma,
    /// Savitzky–Golay, linear fit.
    Sg1,
    /// Savitzky–Golay, quartic fit.
    Sg4,
    /// Fourier reconstruction from the lowest-frequency components.
    FftLow,
    /// Fourier reconstruction from the highest-power components.
    FftDominant,
    /// Min–max aggregation.
    MinMax,
    /// Haar wavelet soft-threshold denoising (extension beyond Fig. B.2).
    Wavelet,
}

impl SmootherKind {
    /// Display name matching Figure B.2.
    pub fn name(&self) -> &'static str {
        match self {
            SmootherKind::Sma => "SMA",
            SmootherKind::Sg1 => "SG1",
            SmootherKind::Sg4 => "SG4",
            SmootherKind::FftLow => "FFT-low",
            SmootherKind::FftDominant => "FFT-dominant",
            SmootherKind::MinMax => "minmax",
            SmootherKind::Wavelet => "wavelet",
        }
    }
}

/// Result of selecting one smoothing function's parameter under ASAP's
/// criterion.
#[derive(Debug, Clone)]
pub struct AltSmoothResult {
    /// Which smoother was swept.
    pub kind: SmootherKind,
    /// The selected parameter (window length, or component count for FFT).
    pub parameter: usize,
    /// Achieved roughness at that parameter.
    pub roughness: f64,
    /// The smoothed series.
    pub smoothed: Vec<f64>,
}

/// Applies ASAP's selection criterion (minimize roughness subject to
/// `Kurt[Y] ≥ Kurt[X]`) to the given smoothing-function family.
///
/// The parameter grid mirrors the paper's setup: window lengths up to
/// `config.effective_max_window` for window-based filters, and component
/// counts down from half the spectrum for the FFT filters.
pub fn select(
    data: &[f64],
    kind: SmootherKind,
    config: &AsapConfig,
) -> Result<AltSmoothResult, TimeSeriesError> {
    if data.len() < 4 {
        return Err(TimeSeriesError::TooShort {
            required: 4,
            actual: data.len(),
        });
    }
    let base_kurt = kurtosis(data)?;
    let base_rough = roughness(data)?;
    let max_window = config.effective_max_window(data.len());

    let mut best: Option<(usize, f64, Vec<f64>)> = None;
    let mut consider = |param: usize, smoothed: Vec<f64>| {
        if smoothed.len() < 2 {
            return;
        }
        let Ok(r) = roughness(&smoothed) else { return };
        let Ok(k) = kurtosis(&smoothed) else { return };
        if k >= config.kurtosis_factor * base_kurt
            && best.as_ref().map_or(r < base_rough, |(_, br, _)| r < *br)
        {
            best = Some((param, r, smoothed));
        }
    };

    match kind {
        SmootherKind::Sma => {
            for w in 2..=max_window {
                consider(w, asap_timeseries::sma(data, w)?);
            }
        }
        SmootherKind::Sg1 | SmootherKind::Sg4 => {
            let degree = if kind == SmootherKind::Sg1 { 1 } else { 4 };
            let mut w = degree + 3;
            if w % 2 == 0 {
                w += 1;
            }
            while w <= max_window.max(degree + 3) && w < data.len() {
                let sg = SavitzkyGolay::new(w, degree)?;
                consider(w, sg.smooth(data));
                w += 2;
            }
        }
        SmootherKind::FftLow | SmootherKind::FftDominant => {
            let selection = if kind == SmootherKind::FftLow {
                ComponentSelection::Lowest
            } else {
                ComponentSelection::Dominant
            };
            let half = data.len() / 2;
            let mut k = 1usize;
            while k <= half {
                consider(k, fft_reconstruct(data, k, selection)?);
                // Sweep k geometrically: the roughness landscape is smooth
                // in k, and a full linear sweep is O(N²  log N).
                k = (k * 2).max(k + 1);
            }
        }
        SmootherKind::MinMax => {
            for w in 2..=max_window {
                consider(w, minmax_aggregate(data, w)?);
            }
        }
        SmootherKind::Wavelet => {
            // Sweep the soft-threshold scale; the `parameter` reported is
            // the scale in tenths (so it stays a usize like the others).
            let levels = asap_dsp::wavelet::max_levels(data.len()).clamp(1, 6);
            for tenths in (5..=40).step_by(5) {
                let scale = tenths as f64 / 10.0;
                consider(tenths, wavelet::denoise(data, levels, scale)?);
            }
        }
    }

    let (parameter, rough, smoothed) = best.unwrap_or((1, base_rough, data.to_vec()));
    Ok(AltSmoothResult {
        kind,
        parameter,
        roughness: rough,
        smoothed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study_series() -> Vec<f64> {
        (0..800)
            .map(|i| {
                let base = (std::f64::consts::TAU * i as f64 / 32.0).sin();
                let noise = 0.3 * ((((i as u64) * 2654435761) % 1000) as f64 / 1000.0 - 0.5);
                let anomaly = if (400..416).contains(&i) { 1.5 } else { 0.0 };
                base + noise + anomaly
            })
            .collect()
    }

    #[test]
    fn sma_selection_matches_exhaustive_search() {
        let data = study_series();
        let config = AsapConfig::default();
        let alt = select(&data, SmootherKind::Sma, &config).unwrap();
        let ex = crate::search::exhaustive::search(&data, &config).unwrap();
        assert_eq!(alt.parameter, ex.window);
        assert!((alt.roughness - ex.roughness).abs() < 1e-9);
    }

    #[test]
    fn minmax_is_much_rougher_than_sma() {
        // Fig. B.2: minmax achieves 38–316x the roughness of SMA.
        let data = study_series();
        let config = AsapConfig::default();
        let sma = select(&data, SmootherKind::Sma, &config).unwrap();
        let mm = select(&data, SmootherKind::MinMax, &config).unwrap();
        assert!(
            mm.roughness > 3.0 * sma.roughness,
            "minmax {} vs sma {}",
            mm.roughness,
            sma.roughness
        );
    }

    #[test]
    fn fft_dominant_is_rougher_than_fft_low() {
        let data = study_series();
        let config = AsapConfig::default();
        let low = select(&data, SmootherKind::FftLow, &config).unwrap();
        let dom = select(&data, SmootherKind::FftDominant, &config).unwrap();
        assert!(
            dom.roughness >= low.roughness,
            "dominant {} vs low {}",
            dom.roughness,
            low.roughness
        );
    }

    #[test]
    fn sg4_is_rougher_than_sg1() {
        let data = study_series();
        let config = AsapConfig::default();
        let sg1 = select(&data, SmootherKind::Sg1, &config).unwrap();
        let sg4 = select(&data, SmootherKind::Sg4, &config).unwrap();
        assert!(
            sg4.roughness >= sg1.roughness * 0.99,
            "sg4 {} vs sg1 {}",
            sg4.roughness,
            sg1.roughness
        );
    }

    #[test]
    fn names_match_the_figure() {
        assert_eq!(SmootherKind::Sma.name(), "SMA");
        assert_eq!(SmootherKind::FftDominant.name(), "FFT-dominant");
    }

    #[test]
    fn too_short_input_errors() {
        assert!(select(&[1.0, 2.0], SmootherKind::Sma, &AsapConfig::default()).is_err());
    }
}
