//! Candidate evaluation: roughness and kurtosis of `SMA(X, w)` without
//! materializing the smoothed series.
//!
//! Every search strategy evaluates the same two statistics per candidate
//! window (§3.4). [`CandidateEvaluator`] precomputes prefix sums once and
//! then streams each candidate's windowed means directly into moment
//! accumulators — O(N) per candidate with zero allocation, which is what
//! makes exhaustive search on preaggregated data tractable and ASAP's
//! pruned search sub-millisecond.

use asap_timeseries::{Moments, PrefixSum, TimeSeriesError};

/// Metrics of one smoothed candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateMetrics {
    /// σ of first differences of the smoothed series.
    pub roughness: f64,
    /// Fourth standardized moment of the smoothed series.
    pub kurtosis: f64,
}

/// Evaluates SMA candidates over a fixed series.
#[derive(Debug, Clone)]
pub struct CandidateEvaluator {
    prefix: PrefixSum,
    n: usize,
    /// Metrics of the unsmoothed series (window 1).
    base: CandidateMetrics,
}

impl CandidateEvaluator {
    /// Builds the evaluator (O(N)).
    pub fn new(data: &[f64]) -> Result<Self, TimeSeriesError> {
        if data.len() < 2 {
            return Err(TimeSeriesError::TooShort {
                required: 2,
                actual: data.len(),
            });
        }
        let prefix = PrefixSum::new(data);
        let base = CandidateMetrics {
            roughness: asap_timeseries::roughness(data)?,
            kurtosis: asap_timeseries::moments(data)?.kurtosis(),
        };
        Ok(CandidateEvaluator {
            prefix,
            n: data.len(),
            base,
        })
    }

    /// Number of points in the underlying series.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the underlying series is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Metrics of the unsmoothed series (the window-1 candidate).
    pub fn base(&self) -> CandidateMetrics {
        self.base
    }

    /// Kurtosis of the original series — the right-hand side of the
    /// preservation constraint.
    pub fn original_kurtosis(&self) -> f64 {
        self.base.kurtosis
    }

    /// Evaluates `SMA(X, w)` in O(N) without allocating the smoothed
    /// series.
    ///
    /// Returns an error if `w` is 0 or exceeds the series length. `w == 1`
    /// returns the base metrics.
    pub fn evaluate(&self, window: usize) -> Result<CandidateMetrics, TimeSeriesError> {
        if window == 0 {
            return Err(TimeSeriesError::InvalidParameter {
                name: "window",
                message: "window must be at least 1",
            });
        }
        if window > self.n {
            return Err(TimeSeriesError::TooShort {
                required: window,
                actual: self.n,
            });
        }
        if window == 1 {
            return Ok(self.base);
        }
        let out_len = self.n - window + 1;
        let inv = 1.0 / window as f64;
        let mut value_moments = Moments::new();
        let mut diff_moments = Moments::new();
        let mut prev = self.prefix.range_sum(0, window) * inv;
        value_moments.push(prev);
        for i in 1..out_len {
            let cur = self.prefix.range_sum(i, i + window) * inv;
            value_moments.push(cur);
            diff_moments.push(cur - prev);
            prev = cur;
        }
        let roughness = if out_len < 2 { 0.0 } else { diff_moments.stddev() };
        Ok(CandidateMetrics {
            roughness,
            kurtosis: value_moments.kurtosis(),
        })
    }

    /// Whether the candidate at `window` satisfies the kurtosis constraint
    /// `Kurt[Y] ≥ factor · Kurt[X]`.
    ///
    /// A `NaN` smoothed kurtosis (zero-variance smoothed series — the plot
    /// collapsed to a flat line) never satisfies the constraint.
    pub fn satisfies_constraint(&self, m: CandidateMetrics, factor: f64) -> bool {
        m.kurtosis.is_finite() && m.kurtosis >= factor * self.base.kurtosis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_timeseries::{kurtosis, roughness, sma};

    fn series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (std::f64::consts::TAU * i as f64 / 37.0).sin()
                    + 0.4 * if i % 2 == 0 { 1.0 } else { -1.0 }
                    + 0.002 * i as f64
            })
            .collect()
    }

    #[test]
    fn evaluate_matches_materialized_sma() {
        let data = series(600);
        let ev = CandidateEvaluator::new(&data).unwrap();
        for w in [2usize, 5, 37, 74, 300] {
            let m = ev.evaluate(w).unwrap();
            let smoothed = sma(&data, w).unwrap();
            let r = roughness(&smoothed).unwrap();
            let k = kurtosis(&smoothed).unwrap();
            assert!((m.roughness - r).abs() < 1e-9, "w={w}: {} vs {r}", m.roughness);
            assert!((m.kurtosis - k).abs() < 1e-9, "w={w}: {} vs {k}", m.kurtosis);
        }
    }

    #[test]
    fn window_one_returns_base_metrics() {
        let data = series(100);
        let ev = CandidateEvaluator::new(&data).unwrap();
        let m = ev.evaluate(1).unwrap();
        assert_eq!(m, ev.base());
        assert!((m.roughness - roughness(&data).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_windows_error() {
        let data = series(50);
        let ev = CandidateEvaluator::new(&data).unwrap();
        assert!(ev.evaluate(0).is_err());
        assert!(ev.evaluate(51).is_err());
        assert!(ev.evaluate(50).is_ok()); // single output point, roughness 0
        assert_eq!(ev.evaluate(50).unwrap().roughness, 0.0);
    }

    #[test]
    fn constraint_rejects_nan_kurtosis() {
        // A constant series smoothed at any window keeps zero variance.
        let mut data = series(100);
        let ev = CandidateEvaluator::new(&data).unwrap();
        // The base kurtosis is finite: NaN candidates must be rejected.
        let nan_metrics = CandidateMetrics {
            roughness: 0.0,
            kurtosis: f64::NAN,
        };
        assert!(!ev.satisfies_constraint(nan_metrics, 1.0));
        // And for a real candidate the comparison is the paper's.
        let m = ev.evaluate(10).unwrap();
        let expected = m.kurtosis >= ev.original_kurtosis();
        assert_eq!(ev.satisfies_constraint(m, 1.0), expected);
        data.clear();
        assert!(CandidateEvaluator::new(&data).is_err());
    }

    #[test]
    fn kurtosis_factor_scales_the_bar() {
        let data = series(500);
        let ev = CandidateEvaluator::new(&data).unwrap();
        let m = ev.evaluate(37).unwrap();
        // factor 0 is trivially satisfied for positive kurtosis.
        assert!(ev.satisfies_constraint(m, 0.0));
        // An absurdly high factor cannot be satisfied.
        assert!(!ev.satisfies_constraint(m, 1e9));
    }

    #[test]
    fn smoothing_periodic_noise_at_period_satisfies_constraint() {
        // §4.3.2: windows aligned with the period remove periodic behavior
        // and raise kurtosis when a deviation exists.
        let n = 640;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let base = (std::f64::consts::TAU * i as f64 / 32.0).sin();
                if (320..336).contains(&i) {
                    base * 2.0
                } else {
                    base
                }
            })
            .collect();
        let ev = CandidateEvaluator::new(&data).unwrap();
        let aligned = ev.evaluate(32).unwrap();
        assert!(
            ev.satisfies_constraint(aligned, 1.0),
            "period-aligned window should preserve kurtosis: {} vs {}",
            aligned.kurtosis,
            ev.original_kurtosis()
        );
        // Off-period window leaves periodic residue: much rougher.
        let off = ev.evaluate(17).unwrap();
        assert!(aligned.roughness < off.roughness);
    }
}
