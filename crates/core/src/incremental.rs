//! Incremental sliding-window statistics for the streaming path.
//!
//! Streaming ASAP (§4.5) re-evaluates roughness and kurtosis on every
//! refresh. Recomputing them from scratch is O(window); this module
//! maintains the first four power sums under append *and* evict so the
//! streaming operator can track both metrics in O(1) per point:
//!
//! * [`SlidingMoments`] — windowed mean / variance / kurtosis;
//! * [`SlidingRoughness`] — windowed σ of first differences, maintained by
//!   feeding consecutive deltas into a nested [`SlidingMoments`].
//!
//! Floating-point caveat: subtracting power sums cancels catastrophically
//! on long streams, so the sketch recomputes its sums exactly from the
//! retained buffer every `RECOMPUTE_EVERY` evictions. This bounds drift
//! while preserving amortized O(1) updates (the recompute is O(window)
//! every `RECOMPUTE_EVERY` evictions).

use std::collections::VecDeque;

use asap_timeseries::TimeSeriesError;

/// Exact-recompute cadence, in evictions.
const RECOMPUTE_EVERY: usize = 4096;

/// Windowed first-four-moment sketch with O(1) amortized updates.
///
/// Power sums are accumulated about a running `origin` (re-centered to the
/// window mean at every exact recompute), which keeps the sums conditioned
/// even when the data rides a large constant offset — the usual failure
/// mode of raw `Σx²`-style sketches.
#[derive(Debug, Clone)]
pub struct SlidingMoments {
    window: usize,
    buf: VecDeque<f64>,
    /// Reference point the power sums are shifted by.
    origin: f64,
    /// Σ(x−origin), Σ(x−origin)², Σ(x−origin)³, Σ(x−origin)⁴.
    sum: f64,
    sum2: f64,
    sum3: f64,
    sum4: f64,
    evictions: usize,
}

impl SlidingMoments {
    /// Creates a sketch over a window of `window` points.
    pub fn new(window: usize) -> Result<Self, TimeSeriesError> {
        if window < 2 {
            return Err(TimeSeriesError::InvalidParameter {
                name: "window",
                message: "moment window must hold at least 2 points",
            });
        }
        Ok(Self {
            window,
            buf: VecDeque::with_capacity(window + 1),
            origin: 0.0,
            sum: 0.0,
            sum2: 0.0,
            sum3: 0.0,
            sum4: 0.0,
            evictions: 0,
        })
    }

    /// Number of points currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no points have been pushed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True once the window is fully populated.
    pub fn is_saturated(&self) -> bool {
        self.buf.len() == self.window
    }

    /// Appends a point, evicting the oldest when the window is full.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "caller validates finiteness");
        if self.buf.is_empty() {
            // Anchor the origin at the first sample so shifted values stay
            // near zero on offset-dominated telemetry.
            self.origin = x;
        }
        self.buf.push_back(x);
        let v = x - self.origin;
        let v2 = v * v;
        self.sum += v;
        self.sum2 += v2;
        self.sum3 += v2 * v;
        self.sum4 += v2 * v2;
        if self.buf.len() > self.window {
            let old = self.buf.pop_front().expect("non-empty") - self.origin;
            let o2 = old * old;
            self.sum -= old;
            self.sum2 -= o2;
            self.sum3 -= o2 * old;
            self.sum4 -= o2 * o2;
            self.evictions += 1;
            if self.evictions.is_multiple_of(RECOMPUTE_EVERY) {
                self.recompute();
            }
        }
    }

    /// Recomputes the power sums exactly from the retained buffer,
    /// re-centering the origin on the current window mean.
    fn recompute(&mut self) {
        let n = self.buf.len() as f64;
        self.origin = self.buf.iter().sum::<f64>() / n;
        let (mut s, mut s2, mut s3, mut s4) = (0.0, 0.0, 0.0, 0.0);
        for &x in &self.buf {
            let v = x - self.origin;
            let v2 = v * v;
            s += v;
            s2 += v2;
            s3 += v2 * v;
            s4 += v2 * v2;
        }
        self.sum = s;
        self.sum2 = s2;
        self.sum3 = s3;
        self.sum4 = s4;
    }

    /// Window mean.
    pub fn mean(&self) -> Option<f64> {
        (!self.buf.is_empty()).then(|| self.origin + self.sum / self.buf.len() as f64)
    }

    /// True when the shifted sums have lost too many significant digits:
    /// the window drifted far from the origin, so `E[V²] − E[V]²`
    /// cancels. Callers fall back to an exact two-pass over the buffer.
    /// `threshold` is the minimum acceptable `var / d²` ratio: the shifted
    /// sums carry ~1e-16·d² absolute error in `var` and ~1e-16·d⁴ in `m4`,
    /// so variance needs `var ≫ 1e-16·d²` while kurtosis (which divides
    /// `m4 ≈ var²` by `var²`) needs the much stronger `var ≫ 1e-8·d²`.
    fn ill_conditioned(&self, threshold: f64) -> bool {
        let n = self.buf.len() as f64;
        let d = self.sum / n;
        let var = self.sum2 / n - d * d;
        var < threshold * d * d
    }

    /// Exact central moments `(mean, m2, m4)` recomputed from the buffer.
    fn exact_central(&self) -> (f64, f64, f64) {
        let n = self.buf.len() as f64;
        let mean = self.buf.iter().sum::<f64>() / n;
        let (mut m2, mut m4) = (0.0, 0.0);
        for &x in &self.buf {
            let c = x - mean;
            let c2 = c * c;
            m2 += c2;
            m4 += c2 * c2;
        }
        (mean, m2 / n, m4 / n)
    }

    /// Population variance of the window.
    pub fn variance(&self) -> Option<f64> {
        if self.buf.len() < 2 {
            return None;
        }
        if self.ill_conditioned(1e-10) {
            return Some(self.exact_central().1);
        }
        let n = self.buf.len() as f64;
        // Shifted mean d = E[X−origin]; variance is shift-invariant.
        let d = self.sum / n;
        // E[V²] − E[V]²; clamp tiny negative values from cancellation.
        Some((self.sum2 / n - d * d).max(0.0))
    }

    /// Population kurtosis (fourth standardized moment) of the window.
    ///
    /// Returns `None` below 2 points or on zero variance, matching the
    /// batch kernel's domain.
    pub fn kurtosis(&self) -> Option<f64> {
        let n = self.buf.len() as f64;
        let var = self.variance()?;
        if var <= 0.0 {
            return None;
        }
        if self.ill_conditioned(1e-5) {
            let (_, m2, m4) = self.exact_central();
            if m2 <= 0.0 {
                return None;
            }
            return Some(m4 / (m2 * m2));
        }
        // Central moments are shift-invariant, so expand about the shifted
        // mean d = E[X−origin]:
        // m4 = (Σv⁴ − 4dΣv³ + 6d²Σv² − 4d³Σv + nd⁴) / n
        let d = self.sum / n;
        let m4 = (self.sum4 - 4.0 * d * self.sum3 + 6.0 * d * d * self.sum2
            - 4.0 * d * d * d * self.sum
            + n * d * d * d * d)
            / n;
        Some(m4 / (var * var))
    }

    /// Population standard deviation of the window.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

/// Windowed roughness (σ of first differences) with O(1) amortized updates.
#[derive(Debug, Clone)]
pub struct SlidingRoughness {
    diffs: SlidingMoments,
    last: Option<f64>,
}

impl SlidingRoughness {
    /// Creates a tracker whose roughness window covers `window` *points*
    /// (hence `window − 1` differences).
    pub fn new(window: usize) -> Result<Self, TimeSeriesError> {
        if window < 3 {
            return Err(TimeSeriesError::InvalidParameter {
                name: "window",
                message: "roughness window must hold at least 3 points",
            });
        }
        Ok(Self {
            diffs: SlidingMoments::new(window - 1)?,
            last: None,
        })
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64) {
        if let Some(prev) = self.last {
            self.diffs.push(x - prev);
        }
        self.last = Some(x);
    }

    /// Number of points observed within the current window (differences + 1).
    pub fn len(&self) -> usize {
        if self.last.is_none() {
            0
        } else {
            self.diffs.len() + 1
        }
    }

    /// True when no points have been pushed.
    pub fn is_empty(&self) -> bool {
        self.last.is_none()
    }

    /// Roughness of the windowed tail, once ≥ 2 differences are available.
    pub fn roughness(&self) -> Option<f64> {
        self.diffs.stddev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_timeseries::{kurtosis, mean, roughness, variance};

    /// Deterministic pseudo-random stream.
    fn stream(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (((i as u64).wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
                    >> 33) % 10_000) as f64
                    / 10_000.0;
                (u - 0.5) * 4.0 + (i as f64 / 60.0).sin()
            })
            .collect()
    }

    #[test]
    fn construction_validates_window() {
        assert!(SlidingMoments::new(1).is_err());
        assert!(SlidingMoments::new(2).is_ok());
        assert!(SlidingRoughness::new(2).is_err());
        assert!(SlidingRoughness::new(3).is_ok());
    }

    #[test]
    fn moments_match_batch_on_every_prefix_and_slide() {
        let data = stream(500);
        let window = 64;
        let mut sk = SlidingMoments::new(window).unwrap();
        for (i, &x) in data.iter().enumerate() {
            sk.push(x);
            let lo = (i + 1).saturating_sub(window);
            let tail = &data[lo..=i];
            if tail.len() >= 2 {
                let m = mean(tail).unwrap();
                let v = variance(tail).unwrap();
                assert!((sk.mean().unwrap() - m).abs() < 1e-9, "mean at {i}");
                assert!((sk.variance().unwrap() - v).abs() < 1e-9, "var at {i}");
                if v > 0.0 {
                    let k = kurtosis(tail).unwrap();
                    assert!(
                        (sk.kurtosis().unwrap() - k).abs() < 1e-6 * k.abs().max(1.0),
                        "kurtosis at {i}: {} vs {}",
                        sk.kurtosis().unwrap(),
                        k
                    );
                }
            }
        }
    }

    #[test]
    fn roughness_matches_batch_on_sliding_tail() {
        let data = stream(400);
        let window = 50;
        let mut sr = SlidingRoughness::new(window).unwrap();
        for (i, &x) in data.iter().enumerate() {
            sr.push(x);
            let lo = (i + 1).saturating_sub(window);
            let tail = &data[lo..=i];
            if tail.len() >= 3 {
                let want = roughness(tail).unwrap();
                let got = sr.roughness().unwrap();
                assert!(
                    (got - want).abs() < 1e-9,
                    "roughness at {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn saturation_and_lengths() {
        let mut sk = SlidingMoments::new(4).unwrap();
        assert!(sk.is_empty());
        for i in 0..10 {
            sk.push(i as f64);
            assert_eq!(sk.len(), (i + 1).min(4));
        }
        assert!(sk.is_saturated());

        let mut sr = SlidingRoughness::new(4).unwrap();
        assert!(sr.is_empty());
        sr.push(1.0);
        assert_eq!(sr.len(), 1);
        sr.push(2.0);
        assert_eq!(sr.len(), 2);
        for _ in 0..10 {
            sr.push(0.0);
        }
        assert_eq!(sr.len(), 4, "window caps the retained tail");
    }

    #[test]
    fn constant_window_reports_zero_variance_no_kurtosis() {
        let mut sk = SlidingMoments::new(8).unwrap();
        for _ in 0..20 {
            sk.push(3.5);
        }
        assert_eq!(sk.variance(), Some(0.0));
        assert_eq!(sk.kurtosis(), None, "kurtosis undefined at zero variance");
        // A straight line has zero roughness.
        let mut sr = SlidingRoughness::new(8).unwrap();
        for i in 0..20 {
            sr.push(i as f64 * 2.0);
        }
        assert!(sr.roughness().unwrap() < 1e-12);
    }

    #[test]
    fn drift_stays_bounded_across_many_recomputes() {
        // Run well past several recompute intervals with an offset large
        // enough to stress cancellation, then compare against batch.
        let window = 128;
        let n = RECOMPUTE_EVERY * 3 + window;
        let mut sk = SlidingMoments::new(window).unwrap();
        let data: Vec<f64> = (0..n)
            .map(|i| 1.0e6 + ((i as f64) * 0.7).sin())
            .collect();
        for &x in &data {
            sk.push(x);
        }
        let tail = &data[n - window..];
        let v = variance(tail).unwrap();
        assert!(
            (sk.variance().unwrap() - v).abs() < 1e-6 * v.max(1.0),
            "{} vs {}",
            sk.variance().unwrap(),
            v
        );
        let k = kurtosis(tail).unwrap();
        assert!((sk.kurtosis().unwrap() - k).abs() < 1e-3 * k.abs());
    }

    #[test]
    fn kurtosis_distinguishes_heavy_tails() {
        // A window with one extreme outlier has much higher kurtosis than
        // an alternating ±1 window.
        let mut spiky = SlidingMoments::new(32).unwrap();
        let mut flat = SlidingMoments::new(32).unwrap();
        for i in 0..32 {
            spiky.push(if i == 16 { 10.0 } else { 0.1 * (i % 2) as f64 });
            flat.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        assert!(spiky.kurtosis().unwrap() > 10.0);
        assert!((flat.kurtosis().unwrap() - 1.0).abs() < 1e-9);
    }
}
