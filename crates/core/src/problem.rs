//! Result types for the ASAP problem statement (§3.4).

/// Outcome of a window search over one (preaggregated) series.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The chosen SMA window in (preaggregated) points; 1 means "leave the
    /// series unsmoothed" (e.g. Twitter_AAPL in Table 2).
    pub window: usize,
    /// Roughness of the smoothed series at the chosen window.
    pub roughness: f64,
    /// Kurtosis of the smoothed series at the chosen window.
    pub kurtosis: f64,
    /// Number of candidate windows whose metrics were actually evaluated —
    /// the "# candidates" column of Table 2.
    pub candidates_checked: usize,
}

/// Full result of [`crate::Asap::smooth`].
#[derive(Debug, Clone, PartialEq)]
pub struct SmoothingResult {
    /// Chosen window in preaggregated points.
    pub window: usize,
    /// Chosen window expressed in raw input points
    /// (`window · pixel_ratio`).
    pub window_raw_points: usize,
    /// The point-to-pixel ratio used by preaggregation (1 when disabled).
    pub pixel_ratio: usize,
    /// Roughness of the smoothed series.
    pub roughness: f64,
    /// Kurtosis of the smoothed series.
    pub kurtosis: f64,
    /// Candidate windows evaluated by the search.
    pub candidates_checked: usize,
    /// The final smoothed series (SMA of the preaggregated series).
    pub smoothed: Vec<f64>,
    /// The preaggregated series the search ran over (equals the input when
    /// preaggregation is disabled).
    pub aggregated: Vec<f64>,
}

impl SmoothingResult {
    /// Whether ASAP decided to leave the series unsmoothed.
    pub fn is_unsmoothed(&self) -> bool {
        self.window <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsmoothed_predicate() {
        let r = SmoothingResult {
            window: 1,
            window_raw_points: 3,
            pixel_ratio: 3,
            roughness: 0.5,
            kurtosis: 3.0,
            candidates_checked: 7,
            smoothed: vec![],
            aggregated: vec![],
        };
        assert!(r.is_unsmoothed());
        let r2 = SmoothingResult { window: 12, ..r };
        assert!(!r2.is_unsmoothed());
    }
}
