//! ASAP configuration and builder.

/// Tunable parameters of the ASAP search.
#[derive(Debug, Clone, PartialEq)]
pub struct AsapConfig {
    /// Target display resolution in pixels — the number of points the final
    /// visualization should contain (§4.4). Default 800, the resolution the
    /// paper renders its user-study plots at.
    pub resolution: usize,
    /// Whether to preaggregate to one point per pixel before searching
    /// (§4.4). Disabling trades orders of magnitude of speed for exact
    /// result quality — Figure 9 quantifies the gap.
    pub preaggregate: bool,
    /// Hard cap on the candidate window, in (preaggregated) points. When
    /// `None` the cap is `max_window_fraction` of the series length. Maps
    /// to the user-specified "maximum window size" of §4.3.3.
    pub max_window: Option<usize>,
    /// Fraction of the series length used as the default window cap and ACF
    /// max lag. The reference implementation uses 1/10.
    pub max_window_fraction: f64,
    /// Minimum ACF value for a peak to become a search candidate (§4.3.3).
    pub correlation_threshold: f64,
    /// Multiplier on the original kurtosis in the preservation constraint:
    /// the search requires `Kurt[Y] ≥ kurtosis_factor · Kurt[X]`. 1.0 is
    /// the paper's constraint; the sensitivity study (Appendix B.2) sweeps
    /// 0.5 / 1.5 / 2.0.
    pub kurtosis_factor: f64,
    /// Disables autocorrelation pruning, making `search::asap` behave like
    /// plain binary search. Exists for the lesion study (Figure 11, "no
    /// AC").
    pub autocorrelation_pruning: bool,
}

impl Default for AsapConfig {
    fn default() -> Self {
        AsapConfig {
            resolution: 800,
            preaggregate: true,
            max_window: None,
            max_window_fraction: 0.1,
            correlation_threshold: 0.2,
            kurtosis_factor: 1.0,
            autocorrelation_pruning: true,
        }
    }
}

impl AsapConfig {
    /// The effective window cap for a series of `n` (preaggregated) points:
    /// `max_window` when set, else `max(2, n · max_window_fraction)`,
    /// always at most `n − 1`.
    pub fn effective_max_window(&self, n: usize) -> usize {
        let frac = ((n as f64) * self.max_window_fraction).round() as usize;
        let cap = self.max_window.unwrap_or(frac.max(2));
        cap.min(n.saturating_sub(1)).max(1)
    }
}

/// Builder for [`AsapConfig`] / [`crate::Asap`].
#[derive(Debug, Clone, Default)]
pub struct AsapBuilder {
    config: AsapConfig,
}

impl AsapBuilder {
    /// Sets the target display resolution in pixels.
    pub fn resolution(mut self, pixels: usize) -> Self {
        self.config.resolution = pixels.max(1);
        self
    }

    /// Enables or disables pixel-aware preaggregation.
    pub fn preaggregate(mut self, on: bool) -> Self {
        self.config.preaggregate = on;
        self
    }

    /// Caps the search window (in preaggregated points).
    pub fn max_window(mut self, window: usize) -> Self {
        self.config.max_window = Some(window);
        self
    }

    /// Sets the ACF peak correlation threshold.
    pub fn correlation_threshold(mut self, t: f64) -> Self {
        self.config.correlation_threshold = t;
        self
    }

    /// Sets the kurtosis-preservation factor (1.0 = the paper's constraint).
    pub fn kurtosis_factor(mut self, f: f64) -> Self {
        self.config.kurtosis_factor = f;
        self
    }

    /// Enables or disables autocorrelation pruning (lesion study).
    pub fn autocorrelation_pruning(mut self, on: bool) -> Self {
        self.config.autocorrelation_pruning = on;
        self
    }

    /// Finishes building.
    pub fn build(self) -> crate::Asap {
        crate::Asap::with_config(self.config)
    }

    /// Returns the raw configuration without wrapping it in [`crate::Asap`].
    pub fn build_config(self) -> AsapConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AsapConfig::default();
        assert_eq!(c.resolution, 800);
        assert!(c.preaggregate);
        assert_eq!(c.kurtosis_factor, 1.0);
        assert_eq!(c.correlation_threshold, 0.2);
        assert_eq!(c.max_window_fraction, 0.1);
    }

    #[test]
    fn effective_max_window_uses_fraction() {
        let c = AsapConfig::default();
        assert_eq!(c.effective_max_window(1200), 120);
        assert_eq!(c.effective_max_window(10), 2); // floor of 2
    }

    #[test]
    fn effective_max_window_respects_explicit_cap() {
        let c = AsapBuilder::default().max_window(50).build_config();
        assert_eq!(c.effective_max_window(1200), 50);
        // Cap can never reach the series length.
        assert_eq!(c.effective_max_window(30), 29);
    }

    #[test]
    fn builder_sets_all_fields() {
        let c = AsapBuilder::default()
            .resolution(2000)
            .preaggregate(false)
            .max_window(99)
            .correlation_threshold(0.5)
            .kurtosis_factor(1.5)
            .autocorrelation_pruning(false)
            .build_config();
        assert_eq!(c.resolution, 2000);
        assert!(!c.preaggregate);
        assert_eq!(c.max_window, Some(99));
        assert_eq!(c.correlation_threshold, 0.5);
        assert_eq!(c.kurtosis_factor, 1.5);
        assert!(!c.autocorrelation_pruning);
    }

    #[test]
    fn resolution_zero_is_clamped() {
        let c = AsapBuilder::default().resolution(0).build_config();
        assert_eq!(c.resolution, 1);
    }
}
