//! Candidate-window generation: ACF peaks for periodic data, all lags for
//! aperiodic data (§4.3.3).

use crate::config::AsapConfig;
use asap_dsp::{autocorrelation, find_peaks, Acf, PeakConfig};
use asap_timeseries::TimeSeriesError;

/// Candidate windows plus the ACF they were derived from.
#[derive(Debug, Clone)]
pub struct Candidates {
    /// Candidate window lengths in increasing order, all ≥ 2 and ≤ the
    /// effective max window.
    pub windows: Vec<usize>,
    /// Largest ACF value among detected peaks (`maxACF`); 0 for aperiodic
    /// data.
    pub max_acf: f64,
    /// Whether the candidates are genuine ACF peaks.
    pub periodic: bool,
    /// The computed ACF (lags `0..=max_window`).
    pub acf: Acf,
}

/// Computes the ACF up to the effective max window and extracts candidate
/// peaks per the configuration.
pub fn generate(data: &[f64], config: &AsapConfig) -> Result<Candidates, TimeSeriesError> {
    let n = data.len();
    let max_window = config.effective_max_window(n);
    let acf = autocorrelation(data, max_window)?;
    let peaks = find_peaks(
        &acf,
        PeakConfig {
            correlation_threshold: config.correlation_threshold,
            ..PeakConfig::default()
        },
    );
    let windows: Vec<usize> = peaks.lags.into_iter().filter(|&w| w <= max_window).collect();
    Ok(Candidates {
        windows,
        max_acf: peaks.max_acf,
        periodic: peaks.periodic,
        acf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_series_yields_period_multiples() {
        let data: Vec<f64> = (0..2000)
            .map(|i| (std::f64::consts::TAU * i as f64 / 40.0).sin())
            .collect();
        let cands = generate(&data, &AsapConfig::default()).unwrap();
        assert!(cands.periodic);
        assert!(!cands.windows.is_empty());
        for &w in &cands.windows {
            assert!(w % 40 <= 1 || 40 - (w % 40) <= 1, "candidate {w} not near a multiple of 40");
            assert!(w <= 200); // max window = n/10
        }
        assert!(cands.max_acf > 0.9);
    }

    #[test]
    fn aperiodic_series_yields_all_lags() {
        let data: Vec<f64> = (0..500).map(|i| ((i * i * 31) % 499) as f64).collect();
        let cands = generate(&data, &AsapConfig::default()).unwrap();
        assert!(!cands.periodic);
        assert_eq!(cands.windows, (2..=50).collect::<Vec<_>>());
    }

    #[test]
    fn explicit_max_window_caps_candidates() {
        let data: Vec<f64> = (0..2000)
            .map(|i| (std::f64::consts::TAU * i as f64 / 40.0).sin())
            .collect();
        let config = crate::AsapBuilder::default().max_window(50).build_config();
        let cands = generate(&data, &config).unwrap();
        assert!(cands.windows.iter().all(|&w| w <= 50));
    }

    #[test]
    fn degenerate_input_errors() {
        assert!(generate(&[1.0], &AsapConfig::default()).is_err());
        assert!(generate(&[2.0; 100], &AsapConfig::default()).is_err());
    }
}
