//! Pixel-aware preaggregation (§4.4).
//!
//! A plot rendered into `t` pixels cannot show more than `t` distinct
//! points, so ASAP first reduces the series by the **point-to-pixel ratio**
//! `⌈N / t⌉` using disjoint mean windows, then searches windows over the
//! aggregated series (i.e. windows that are integer multiples of the ratio
//! in raw units). Table 1 lists the resulting search-space reductions;
//! Appendix A.2 bounds the roughness penalty by `(w_a + 1) / w_a`.

use asap_timeseries::sma_strided;

/// The point-to-pixel ratio for `n` points at `resolution` pixels:
/// `max(1, ⌈n / resolution⌉)`.
pub fn point_to_pixel_ratio(n: usize, resolution: usize) -> usize {
    if resolution == 0 {
        return 1;
    }
    n.div_ceil(resolution).max(1)
}

/// Reduces `data` to at most `resolution` points by disjoint mean windows
/// of the point-to-pixel ratio. Returns `(aggregated, ratio)`; when the
/// series already fits (`n ≤ resolution`) it is returned unchanged with
/// ratio 1.
pub fn preaggregate(data: &[f64], resolution: usize) -> (Vec<f64>, usize) {
    let ratio = point_to_pixel_ratio(data.len(), resolution);
    if ratio <= 1 {
        return (data.to_vec(), 1);
    }
    // A trailing partial group is dropped (it would carry a different
    // variance and bias the kurtosis estimate).
    let aggregated =
        sma_strided(data, ratio, ratio).expect("ratio >= 2 and ratio <= len by construction");
    (aggregated, ratio)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_examples_from_the_paper() {
        // §4.4: one week of 1-second readings on a 2304-pixel MacBook
        // yields a 262-point-per-pixel ratio (604800 / 2304 = 262.5 -> 263
        // with ceil; the paper floors, we ceil — same order).
        let r = point_to_pixel_ratio(604_800, 2_304);
        assert!((262..=263).contains(&r));
        // Table 1: 1M points on a 272-pixel Apple Watch ≈ 3676x.
        let r = point_to_pixel_ratio(1_000_000, 272);
        assert!((3676..=3677).contains(&r));
    }

    #[test]
    fn small_series_pass_through() {
        let data = vec![1.0, 2.0, 3.0];
        let (agg, ratio) = preaggregate(&data, 800);
        assert_eq!(ratio, 1);
        assert_eq!(agg, data);
    }

    #[test]
    fn aggregated_length_is_at_most_resolution() {
        for n in [1000usize, 12_345, 100_000] {
            for res in [100usize, 800, 1200] {
                let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
                let (agg, ratio) = preaggregate(&data, res);
                assert!(agg.len() <= res, "n={n} res={res}: {} pts", agg.len());
                assert_eq!(ratio, n.div_ceil(res));
            }
        }
    }

    #[test]
    fn aggregation_preserves_group_means() {
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let (agg, ratio) = preaggregate(&data, 3);
        assert_eq!(ratio, 4);
        assert_eq!(agg, vec![1.5, 5.5, 9.5]);
    }

    #[test]
    fn zero_resolution_degrades_to_identity() {
        let data = vec![1.0, 2.0];
        let (agg, ratio) = preaggregate(&data, 0);
        assert_eq!(ratio, 1);
        assert_eq!(agg, data);
    }

    #[test]
    fn preaggregation_smooths_subpixel_noise() {
        // High-frequency noise entirely within a pixel group disappears,
        // the low-frequency signal survives — the mechanism behind §4.4.
        let n = 80_000;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                (std::f64::consts::TAU * i as f64 / 20_000.0).sin()
                    + if i % 2 == 0 { 0.5 } else { -0.5 }
            })
            .collect();
        let (agg, _) = preaggregate(&data, 800);
        let r_raw = asap_timeseries::roughness(&data).unwrap();
        let r_agg = asap_timeseries::roughness(&agg).unwrap();
        assert!(r_agg < r_raw / 10.0, "{r_raw} -> {r_agg}");
        // The seasonal amplitude survives aggregation.
        let max = agg.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 0.9);
    }
}
