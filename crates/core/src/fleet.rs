//! Server-side execution: one ASAP instance per metric, many consumers.
//!
//! §2: "for servers with a large number of visualization consumers, ASAP
//! can execute on the server, sending clients the smoothed stream; this is
//! the execution mode that MacroBase adopts." [`Fleet`] manages a set of
//! independent [`crate::streaming::StreamingAsap`] operators keyed by
//! metric name, with a
//! shared configuration template — the shape of a monitoring backend
//! smoothing every panel of a dashboard.
//!
//! Thread safety: the fleet itself is single-writer (ingestion is a
//! pipeline stage); fan-out to concurrent consumers happens via the frames
//! it returns, which are plain owned data. For multi-writer setups, shard
//! metrics across fleets — ASAP state is per-series, so sharding is
//! embarrassingly parallel (wrap shards in `parking_lot::Mutex` or route
//! by hash).

use crate::streaming::{Frame, MultiStreamingAsap, StreamingConfig};
use asap_timeseries::TimeSeriesError;

/// A named frame produced by one of the fleet's metrics.
#[derive(Debug, Clone)]
pub struct FleetFrame {
    /// The metric that refreshed.
    pub metric: String,
    /// The refreshed frame.
    pub frame: Frame,
}

/// A collection of per-metric streaming ASAP operators with a shared
/// configuration template — a thin, metric-name-keyed wrapper over
/// [`MultiStreamingAsap`].
#[derive(Debug)]
pub struct Fleet {
    inner: MultiStreamingAsap<String>,
}

impl Fleet {
    /// Creates a fleet whose members all use `template` (window span,
    /// resolution, refresh cadence).
    pub fn new(template: StreamingConfig) -> Self {
        Fleet {
            inner: MultiStreamingAsap::new(template),
        }
    }

    /// Number of metrics currently tracked.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no metric has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Names of tracked metrics, in name order.
    pub fn metrics(&self) -> impl Iterator<Item = &str> {
        self.inner.keys().map(String::as_str)
    }

    /// Ingests one point for `metric`, creating its operator on first
    /// sight. Returns a frame when that metric's refresh fired.
    pub fn push(&mut self, metric: &str, value: f64) -> Result<Option<FleetFrame>, TimeSeriesError> {
        Ok(self
            .inner
            .push_with(metric, value, str::to_string)?
            .map(|frame| FleetFrame {
                metric: metric.to_string(),
                frame,
            }))
    }

    /// Forces a refresh of every metric with enough data, returning one
    /// frame per metric in name order — the "render the whole dashboard
    /// now" operation.
    pub fn refresh_all(&mut self) -> Vec<FleetFrame> {
        self.inner
            .refresh_all()
            .into_iter()
            .map(|(metric, frame)| FleetFrame { metric, frame })
            .collect()
    }

    /// Total searches run across the fleet.
    pub fn total_searches(&self) -> u64 {
        self.inner.total_searches()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn signal(metric_idx: usize, i: usize) -> f64 {
        let period = 200.0 + 100.0 * metric_idx as f64;
        (std::f64::consts::TAU * i as f64 / period).sin()
            + 0.3 * ((((i as u64) * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
    }

    #[test]
    fn metrics_are_created_on_first_sight() {
        let mut fleet = Fleet::new(StreamingConfig::new(1_000, 50, 500));
        assert!(fleet.is_empty());
        fleet.push("cpu", 1.0).unwrap();
        fleet.push("mem", 2.0).unwrap();
        fleet.push("cpu", 3.0).unwrap();
        assert_eq!(fleet.len(), 2);
        let mut names: Vec<&str> = fleet.metrics().collect();
        names.sort_unstable();
        assert_eq!(names, vec!["cpu", "mem"]);
    }

    #[test]
    fn per_metric_state_is_independent() {
        let mut fleet = Fleet::new(StreamingConfig::new(4_000, 100, 4_000));
        let mut frames: HashMap<String, Frame> = HashMap::new();
        for i in 0..4_000 {
            for m in 0..3usize {
                let name = format!("metric{m}");
                if let Some(ff) = fleet.push(&name, signal(m, i)).unwrap() {
                    frames.insert(ff.metric, ff.frame);
                }
            }
        }
        assert_eq!(frames.len(), 3);
        // Different periodicities lead to different windows.
        let windows: Vec<usize> = (0..3)
            .map(|m| frames[&format!("metric{m}")].outcome.window)
            .collect();
        assert!(windows.iter().any(|&w| w != windows[0]) || windows[0] > 1);
    }

    #[test]
    fn refresh_all_renders_every_warm_metric() {
        let mut fleet = Fleet::new(StreamingConfig::new(2_000, 100, 100_000));
        for i in 0..2_000 {
            fleet.push("a", signal(0, i)).unwrap();
            fleet.push("b", signal(1, i)).unwrap();
        }
        let frames = fleet.refresh_all();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].metric, "a");
        assert_eq!(frames[1].metric, "b");
        assert!(fleet.total_searches() >= 2);
    }

    #[test]
    fn bad_point_poisons_only_its_metric_call() {
        let mut fleet = Fleet::new(StreamingConfig::new(100, 10, 10));
        fleet.push("ok", 1.0).unwrap();
        assert!(fleet.push("bad", f64::NAN).is_err());
        // The fleet keeps serving both metrics afterwards.
        assert!(fleet.push("ok", 2.0).unwrap().is_none());
        assert!(fleet.push("bad", 2.0).is_ok());
    }
}
