//! Multi-resolution preaggregation pyramid for interactive zoom.
//!
//! Section 2 describes users changing the visualized range ("zoom-in,
//! zoom-out, scrolling"), with ASAP re-rendering per range. Re-aggregating
//! the raw series on every interaction is O(N); a [`ZoomPyramid`]
//! precomputes factor-of-two mean aggregates (total extra memory < N
//! points) so any `(range, resolution)` request is served from the level
//! whose density already matches the target display — the pixel-aware
//! preaggregation of §4.4, amortized across interactions.

use asap_timeseries::TimeSeriesError;

use crate::problem::SmoothingResult;
use crate::Asap;

/// Precomputed factor-of-two mean-aggregation levels over one series.
#[derive(Debug, Clone)]
pub struct ZoomPyramid {
    /// `levels[k]` aggregates `2^k` raw points per entry; `levels[0]` is raw.
    levels: Vec<Vec<f64>>,
}

impl ZoomPyramid {
    /// Builds the pyramid. Level k+1 halves level k (a trailing odd point
    /// is dropped, as it represents less than a full bucket); construction
    /// stops once a level falls below 2 points.
    pub fn build(data: &[f64]) -> Result<Self, TimeSeriesError> {
        if data.is_empty() {
            return Err(TimeSeriesError::Empty);
        }
        asap_timeseries::validate_finite(data)?;
        let mut levels = vec![data.to_vec()];
        while levels.last().expect("non-empty").len() >= 4 {
            let prev = levels.last().expect("non-empty");
            let next: Vec<f64> = prev
                .chunks_exact(2)
                .map(|c| (c[0] + c[1]) / 2.0)
                .collect();
            levels.push(next);
        }
        Ok(Self { levels })
    }

    /// Number of raw points.
    pub fn raw_len(&self) -> usize {
        self.levels[0].len()
    }

    /// Number of levels (≥ 1; level 0 is the raw series).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Total stored points across all levels (< 2 × raw length).
    pub fn total_points(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Picks the coarsest level that still yields at least `resolution`
    /// points for a raw range of `range_len` points.
    pub fn level_for(&self, range_len: usize, resolution: usize) -> usize {
        if resolution == 0 {
            return 0;
        }
        let mut level = 0;
        while level + 1 < self.levels.len() && (range_len >> (level + 1)) >= resolution {
            level += 1;
        }
        level
    }

    /// Returns the aggregated values covering raw range `[start, end)` at
    /// the level chosen for `resolution`, plus the level's aggregation
    /// factor in raw points.
    pub fn render(
        &self,
        range: std::ops::Range<usize>,
        resolution: usize,
    ) -> Result<(Vec<f64>, usize), TimeSeriesError> {
        if range.start >= range.end || range.end > self.raw_len() {
            return Err(TimeSeriesError::InvalidParameter {
                name: "range",
                message: "zoom range must be non-empty and within the series",
            });
        }
        let level = self.level_for(range.end - range.start, resolution);
        let factor = 1usize << level;
        // Snap the range inward to whole aggregated buckets.
        let lo = range.start.div_ceil(factor);
        let hi = range.end / factor;
        let slice = &self.levels[level][lo..hi.max(lo)];
        if slice.is_empty() {
            // Degenerate zoom (range smaller than one coarse bucket):
            // fall back to the raw slice.
            return Ok((self.levels[0][range].to_vec(), 1));
        }
        Ok((slice.to_vec(), factor))
    }

    /// Renders `[range)` at `asap.config().resolution` and smooths it —
    /// the full §2 zoom interaction. The returned
    /// [`SmoothingResult::window_raw_points`] and `pixel_ratio` are scaled
    /// back to *raw* points, accounting for the pyramid level used.
    pub fn smooth_zoom(
        &self,
        asap: &Asap,
        range: std::ops::Range<usize>,
    ) -> Result<SmoothingResult, TimeSeriesError> {
        let (values, factor) = self.render(range, asap.config().resolution)?;
        let mut result = asap.smooth(&values)?;
        result.pixel_ratio *= factor;
        result.window_raw_points = result.window * result.pixel_ratio;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_wave(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (std::f64::consts::TAU * i as f64 / 48.0).sin()
                    + 0.4 * if i % 2 == 0 { 1.0 } else { -1.0 }
            })
            .collect()
    }

    #[test]
    fn build_rejects_bad_input() {
        assert!(ZoomPyramid::build(&[]).is_err());
        assert!(ZoomPyramid::build(&[1.0, f64::NAN]).is_err());
        assert!(ZoomPyramid::build(&[1.0]).is_ok(), "single point = 1 level");
    }

    #[test]
    fn levels_halve_and_memory_is_bounded() {
        let p = ZoomPyramid::build(&noisy_wave(4096)).unwrap();
        assert_eq!(p.raw_len(), 4096);
        assert_eq!(p.level_count(), 12, "4096, 2048, ..., 4, 2");
        for k in 1..p.level_count() {
            assert_eq!(p.levels[k].len(), 4096 >> k);
        }
        assert!(p.total_points() < 2 * 4096);
    }

    #[test]
    fn aggregates_are_exact_means() {
        let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let p = ZoomPyramid::build(&data).unwrap();
        assert_eq!(p.levels[1], vec![0.5, 2.5, 4.5, 6.5, 8.5, 10.5, 12.5, 14.5]);
        assert_eq!(p.levels[2], vec![1.5, 5.5, 9.5, 13.5]);
        // Level means equal direct mean aggregation of the raw series.
        for (k, level) in p.levels.iter().enumerate() {
            let f = 1 << k;
            for (j, &v) in level.iter().enumerate() {
                let want: f64 = data[j * f..(j + 1) * f].iter().sum::<f64>() / f as f64;
                assert!((v - want).abs() < 1e-12, "level {k} entry {j}");
            }
        }
    }

    #[test]
    fn odd_lengths_drop_trailing_partial_bucket() {
        let p = ZoomPyramid::build(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(p.levels[1], vec![1.5, 3.5], "5th point not half-bucketed");
    }

    #[test]
    fn level_selection_matches_density() {
        let p = ZoomPyramid::build(&noisy_wave(8192)).unwrap();
        // Full range at 1000 px: 8192/2^3 = 1024 ≥ 1000 > 8192/2^4.
        assert_eq!(p.level_for(8192, 1000), 3);
        // Tight zoom: raw level.
        assert_eq!(p.level_for(500, 1000), 0);
        // Resolution 0 degenerates to raw.
        assert_eq!(p.level_for(8192, 0), 0);
        // Huge range never exceeds the deepest level.
        assert!(p.level_for(usize::MAX / 2, 1) < p.level_count());
    }

    #[test]
    fn render_covers_requested_range() {
        let data = noisy_wave(4096);
        let p = ZoomPyramid::build(&data).unwrap();
        let (vals, factor) = p.render(1024..3072, 256).unwrap();
        assert_eq!(factor, 8, "2048-point range at 256 px picks level 3");
        assert_eq!(vals.len(), 2048 / 8);
        // First bucket equals the mean of the corresponding raw points.
        let want: f64 = data[1024..1032].iter().sum::<f64>() / 8.0;
        assert!((vals[0] - want).abs() < 1e-12);
    }

    #[test]
    fn render_misaligned_range_snaps_inward() {
        let p = ZoomPyramid::build(&noisy_wave(4096)).unwrap();
        let (vals, factor) = p.render(1001..3001, 250).unwrap();
        assert_eq!(factor, 8);
        // 1001 snaps up to bucket 126 (=1008), 3001 down to bucket 375.
        assert_eq!(vals.len(), 375 - 126);
    }

    #[test]
    fn degenerate_zoom_falls_back_to_raw() {
        let p = ZoomPyramid::build(&noisy_wave(4096)).unwrap();
        // A 2-point range misaligned with the level-1 buckets snaps to an
        // empty slice and falls back to raw.
        let (vals, factor) = p.render(11..13, 1).unwrap();
        assert_eq!(factor, 1);
        assert_eq!(vals.len(), 2);
    }

    #[test]
    fn render_validates_range() {
        let p = ZoomPyramid::build(&noisy_wave(64)).unwrap();
        assert!(p.render(10..10, 8).is_err());
        assert!(p.render(60..80, 8).is_err());
    }

    #[test]
    fn smooth_zoom_agrees_with_direct_smoothing_on_window_scale() {
        let data = noisy_wave(16_384);
        let p = ZoomPyramid::build(&data).unwrap();
        let asap = Asap::builder().resolution(512).build();
        let zoomed = p.smooth_zoom(&asap, 0..16_384).unwrap();
        let direct = asap.smooth(&data).unwrap();
        // Both paths preaggregate to the same target density, so the raw
        // window sizes should agree to within one aggregation bucket ratio.
        let ratio = zoomed.window_raw_points as f64 / direct.window_raw_points.max(1) as f64;
        assert!(
            (0.45..=2.2).contains(&ratio),
            "zoom window {} vs direct {}",
            zoomed.window_raw_points,
            direct.window_raw_points
        );
        // Raw-point accounting is consistent.
        assert_eq!(zoomed.window_raw_points, zoomed.window * zoomed.pixel_ratio);
    }

    #[test]
    fn smooth_zoom_subrange_reruns_search() {
        let data = noisy_wave(8192);
        let p = ZoomPyramid::build(&data).unwrap();
        let asap = Asap::builder().resolution(256).build();
        let full = p.smooth_zoom(&asap, 0..8192).unwrap();
        let sub = p.smooth_zoom(&asap, 0..1024).unwrap();
        assert!(sub.pixel_ratio <= full.pixel_ratio, "tighter zoom, finer level");
    }
}
