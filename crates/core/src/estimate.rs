//! The closed-form roughness estimate of Equation 5 (§4.3.1, Appendix A.1).
//!
//! For a weakly stationary series `X` of length `N` with standard deviation
//! `σ`, the roughness of `Y = SMA(X, w)` is
//!
//! ```text
//! roughness(Y) = (√2 σ / w) · √(1 − N/(N−w) · ACF(X, w))
//! ```
//!
//! ASAP uses this estimate for two prunings (Algorithm 1): the
//! **lower-bound** rule (Eq. 6) eliminates windows too small to beat the
//! current best even at the maximum observed autocorrelation, and the
//! **roughness comparison** rule skips candidates whose estimated roughness
//! exceeds the current best. Figure A.1 shows the estimate is within ~1.2 %
//! of the truth on real data; the property tests verify a comparable bound
//! on stationary synthetic series.

/// Equation 5: estimated roughness of `SMA(X, w)` given the series' σ,
/// length `N`, and `ACF(X, w)`.
///
/// The radicand can go (slightly) negative when the finite-sample ACF
/// exceeds `(N−w)/N`; it is clamped at zero, matching the limiting
/// "perfectly correlated ⇒ perfectly smooth" behaviour.
pub fn roughness_estimate(sigma: f64, n: usize, w: usize, acf_w: f64) -> f64 {
    debug_assert!(w >= 1 && w < n);
    let radicand = 1.0 - (n as f64 / (n - w) as f64) * acf_w;
    (2.0f64.sqrt() * sigma / w as f64) * radicand.max(0.0).sqrt()
}

/// The comparison form of Eq. 5 used by `ISROUGHER` in Algorithm 1:
/// candidate `w` is estimated rougher than `best` iff
/// `√(1 − acf[w]) / w  >  √(1 − acf[best]) / best` (the common `√2·σ`
/// factor cancels; the `N/(N−w)` correction is dropped as in the paper's
/// pseudocode since `w ≪ N`).
pub fn is_estimated_rougher(w: usize, acf_w: f64, best: usize, acf_best: f64) -> bool {
    let lhs = (1.0 - acf_w).max(0.0).sqrt() / w as f64;
    let rhs = (1.0 - acf_best).max(0.0).sqrt() / best as f64;
    lhs > rhs
}

/// The lower-bound update of Eq. 6 / `UPDATELB` in Algorithm 1: given a
/// feasible window `w` with autocorrelation `acf_w` and the maximum ACF
/// peak `max_acf`, any smaller window that could still beat `w` must exceed
/// `w · √((1 − max_acf) / (1 − acf_w))`.
pub fn lower_bound_update(current_lb: f64, w: usize, acf_w: f64, max_acf: f64) -> f64 {
    let denom = 1.0 - acf_w;
    if denom <= 0.0 {
        // Perfectly correlated at w: nothing smaller can be smoother.
        return current_lb.max(w as f64);
    }
    let bound = w as f64 * ((1.0 - max_acf).max(0.0) / denom).sqrt();
    current_lb.max(bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_dsp::autocorrelation;
    use asap_timeseries::{roughness, sma, stddev};

    #[test]
    fn estimate_is_exact_for_iid_like_data() {
        // For (nearly) uncorrelated data Eq. 5 reduces to Eq. 2: √2σ/w.
        let data: Vec<f64> = (0..20_000)
            .map(|i| ((((i as u64) * 2654435761) % 104729) as f64 / 104729.0) - 0.5)
            .collect();
        let sigma = stddev(&data).unwrap();
        let acf = autocorrelation(&data, 200).unwrap();
        for w in [5usize, 20, 100] {
            let est = roughness_estimate(sigma, data.len(), w, acf.at(w));
            let truth = roughness(&sma(&data, w).unwrap()).unwrap();
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.05, "w={w}: est {est} truth {truth} rel {rel}");
        }
    }

    #[test]
    fn estimate_tracks_truth_on_periodic_data() {
        // Figure A.1's setting: roughness drops sharply at multiples of the
        // period; the estimate must track those drops.
        let data: Vec<f64> = (0..6_000)
            .map(|i| {
                (std::f64::consts::TAU * i as f64 / 24.0).sin()
                    + 0.3 * (std::f64::consts::TAU * i as f64 / 7.3).sin()
            })
            .collect();
        let sigma = stddev(&data).unwrap();
        let acf = autocorrelation(&data, 150).unwrap();
        let mut worst_rel: f64 = 0.0;
        for w in 2..=144usize {
            let est = roughness_estimate(sigma, data.len(), w, acf.at(w));
            let truth = roughness(&sma(&data, w).unwrap()).unwrap();
            if truth > 1e-9 {
                worst_rel = worst_rel.max((est - truth).abs() / truth);
            }
        }
        assert!(worst_rel < 0.12, "worst relative error {worst_rel}");
    }

    #[test]
    fn estimate_drops_at_period_aligned_windows() {
        let data: Vec<f64> = (0..4_800)
            .map(|i| (std::f64::consts::TAU * i as f64 / 24.0).sin())
            .collect();
        let sigma = stddev(&data).unwrap();
        let acf = autocorrelation(&data, 60).unwrap();
        let aligned = roughness_estimate(sigma, data.len(), 24, acf.at(24));
        let off = roughness_estimate(sigma, data.len(), 20, acf.at(20));
        assert!(aligned < off / 5.0, "aligned {aligned} vs off {off}");
    }

    #[test]
    fn negative_radicand_clamps_to_zero() {
        assert_eq!(roughness_estimate(1.0, 100, 10, 1.0), 0.0);
    }

    #[test]
    fn comparator_prefers_larger_window_at_equal_acf() {
        // §4.3.3: "when two windows have identical autocorrelation, the
        // larger window will always have lower roughness".
        assert!(is_estimated_rougher(10, 0.5, 20, 0.5));
        assert!(!is_estimated_rougher(20, 0.5, 10, 0.5));
    }

    #[test]
    fn comparator_lets_high_acf_small_window_win() {
        // A small window at very high autocorrelation can beat a larger
        // window at low autocorrelation.
        assert!(!is_estimated_rougher(10, 0.999, 40, 0.0));
    }

    #[test]
    fn lower_bound_is_monotone_and_respects_eq6() {
        // Eq. 6 with max_acf = 0.84, acf_w = 0.36: bound = w·√(0.16/0.64) = w/2.
        let lb = lower_bound_update(0.0, 100, 0.36, 0.84);
        assert!((lb - 50.0).abs() < 1e-9);
        // Never decreases the current bound.
        let lb2 = lower_bound_update(80.0, 100, 0.36, 0.84);
        assert_eq!(lb2, 80.0);
        // Perfect correlation saturates at w.
        let lb3 = lower_bound_update(0.0, 64, 1.0, 1.0);
        assert_eq!(lb3, 64.0);
    }
}
