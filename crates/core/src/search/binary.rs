//! Binary search on the kurtosis constraint (§4.2).
//!
//! For IID data, roughness decreases monotonically with window length
//! (Eq. 2) and kurtosis moves monotonically toward 3 (Eq. 4), so the
//! largest feasible window is optimal and binary search finds it in
//! O(log N) probes. On periodic data the monotonicity assumptions break —
//! Figure 8 measures binary search up to 7.5× rougher than ASAP — but it
//! remains the right fallback for aperiodic series (§4.3.3).

use crate::config::AsapConfig;
use crate::metrics::{CandidateEvaluator, CandidateMetrics};
use crate::problem::SearchOutcome;
use asap_timeseries::TimeSeriesError;

/// Runs standalone binary search over windows `[2, max_window]`.
pub fn search(data: &[f64], config: &AsapConfig) -> Result<SearchOutcome, TimeSeriesError> {
    let ev = match CandidateEvaluator::new(data) {
        Ok(ev) => ev,
        Err(TimeSeriesError::TooShort { .. }) => {
            return Ok(super::exhaustive::unsmoothed_short(data))
        }
        Err(e) => return Err(e),
    };
    let max_window = config.effective_max_window(data.len());
    let mut best_window = 1usize;
    let mut best = ev.base();
    let mut checked = 0usize;
    refine(
        &ev,
        config,
        2,
        max_window,
        &mut best_window,
        &mut best,
        &mut checked,
    )?;
    Ok(SearchOutcome {
        window: best_window,
        roughness: best.roughness,
        kurtosis: best.kurtosis,
        candidates_checked: checked,
    })
}

/// The shared binary-search routine (also the refinement step of
/// Algorithm 2): probe the middle of `[head, tail]`; on a feasible window
/// record it if smoother and move up, otherwise move down.
pub(crate) fn refine(
    ev: &CandidateEvaluator,
    config: &AsapConfig,
    head: usize,
    tail: usize,
    best_window: &mut usize,
    best: &mut CandidateMetrics,
    checked: &mut usize,
) -> Result<(), TimeSeriesError> {
    let mut head = head.max(2);
    let mut tail = tail.min(ev.len().saturating_sub(1));
    while head <= tail {
        let w = (head + tail) / 2;
        let m = ev.evaluate(w)?;
        *checked += 1;
        if ev.satisfies_constraint(m, config.kurtosis_factor) {
            if m.roughness < best.roughness {
                *best = m;
                *best_window = w;
            }
            head = w + 1;
        } else {
            if w == 0 {
                break;
            }
            tail = w - 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_logarithmically_many_candidates() {
        let data: Vec<f64> = (0..5000)
            .map(|i| (((i as u64) * 2654435761) % 104729) as f64 / 104729.0)
            .collect();
        let out = search(&data, &AsapConfig::default()).unwrap();
        // max window 500 -> at most ~9 probes.
        assert!(out.candidates_checked <= 10, "{}", out.candidates_checked);
    }

    #[test]
    fn iid_like_data_gets_a_large_window() {
        // Uniform pseudo-noise has kurtosis 1.8 < 3: per Eq. 4 kurtosis
        // rises toward 3 under averaging, so every window is feasible and
        // binary search lands on (nearly) the cap.
        let data: Vec<f64> = (0..4000)
            .map(|i| (((i as u64) * 2654435761) % 104729) as f64 / 104729.0)
            .collect();
        let config = AsapConfig::default();
        let out = search(&data, &config).unwrap();
        let cap = config.effective_max_window(data.len());
        assert!(
            out.window >= cap - 1,
            "window {} should be near the cap {cap}",
            out.window
        );
    }

    #[test]
    fn binary_is_rougher_than_exhaustive_on_periodic_data() {
        // The Figure 8 quality gap: the roughness landscape of periodic
        // data has a sharp minimum at the period that binary search misses.
        let data: Vec<f64> = (0..1200)
            .map(|i| {
                let base = (std::f64::consts::TAU * i as f64 / 48.0).sin();
                if (600..624).contains(&i) { base * 3.0 } else { base }
            })
            .collect();
        let config = AsapConfig::default();
        let b = search(&data, &config).unwrap();
        let e = super::super::exhaustive::search(&data, &config).unwrap();
        assert!(
            b.roughness >= e.roughness,
            "binary {} vs exhaustive {}",
            b.roughness,
            e.roughness
        );
    }

    #[test]
    fn infeasible_everywhere_returns_window_one() {
        let mut data: Vec<f64> = (0..500).map(|i| (i as f64 * 0.3).sin() * 0.01).collect();
        data[250] = 100.0; // one extreme outlier -> smoothing always loses kurtosis
        let out = search(&data, &AsapConfig::default()).unwrap();
        assert_eq!(out.window, 1);
    }

    #[test]
    fn tiny_series_is_unsmoothed() {
        let out = search(&[1.0], &AsapConfig::default()).unwrap();
        assert_eq!(out.window, 1);
    }
}
