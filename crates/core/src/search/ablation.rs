//! Ablatable variant of the ASAP search, for the design-choice ablation
//! bench (`ablation_pruning`).
//!
//! Algorithm 1 combines three mechanisms on top of the ACF-peak candidate
//! set: the Eq. 6 lower bound, the Eq. 5 roughness-estimate skip, and the
//! Algorithm 2 binary refinement above the best peak. This module exposes
//! each as a toggle so their individual contributions to candidate count
//! and quality can be measured — complementing the system-level lesion
//! study of Figure 11, which toggles whole optimizations.

use crate::candidates;
use crate::config::AsapConfig;
use crate::estimate::{is_estimated_rougher, lower_bound_update};
use crate::metrics::CandidateEvaluator;
use crate::problem::SearchOutcome;
use crate::search::binary;
use asap_timeseries::TimeSeriesError;

/// Which Algorithm 1/2 mechanisms to enable.
#[derive(Debug, Clone, Copy)]
pub struct AblationFlags {
    /// Eq. 6 lower-bound pruning (`UPDATELB` + the `break`).
    pub lower_bound: bool,
    /// Eq. 5 roughness-estimate pruning (`ISROUGHER` + the `continue`).
    pub roughness_estimate: bool,
    /// Algorithm 2's binary refinement above the largest feasible peak.
    pub refinement: bool,
}

impl AblationFlags {
    /// The full ASAP search.
    pub fn all() -> Self {
        AblationFlags {
            lower_bound: true,
            roughness_estimate: true,
            refinement: true,
        }
    }

    /// Candidate scan with no pruning at all (peaks only, every peak
    /// evaluated, no refinement).
    pub fn none() -> Self {
        AblationFlags {
            lower_bound: false,
            roughness_estimate: false,
            refinement: false,
        }
    }
}

/// Runs the ASAP search with the given mechanisms enabled. With
/// [`AblationFlags::all`] this matches [`crate::search::asap::search`].
pub fn search_ablated(
    data: &[f64],
    config: &AsapConfig,
    flags: AblationFlags,
) -> Result<SearchOutcome, TimeSeriesError> {
    let ev = match CandidateEvaluator::new(data) {
        Ok(ev) => ev,
        Err(TimeSeriesError::TooShort { .. }) => {
            return Ok(crate::search::exhaustive::unsmoothed_short(data))
        }
        Err(e) => return Err(e),
    };
    let max_window = config.effective_max_window(data.len());

    let mut best_window = 1usize;
    let mut best = ev.base();
    let mut checked = 0usize;
    let mut w_lb = 1.0f64;

    let cands = match candidates::generate(data, config) {
        Ok(c) => c,
        Err(TimeSeriesError::ZeroVariance) => {
            return Ok(SearchOutcome {
                window: 1,
                roughness: 0.0,
                kurtosis: f64::NAN,
                candidates_checked: 0,
            })
        }
        Err(e) => return Err(e),
    };

    if !cands.periodic {
        binary::refine(
            &ev,
            config,
            2,
            max_window,
            &mut best_window,
            &mut best,
            &mut checked,
        )?;
        return Ok(SearchOutcome {
            window: best_window,
            roughness: best.roughness,
            kurtosis: best.kurtosis,
            candidates_checked: checked,
        });
    }

    let mut largest_feasible_idx: Option<usize> = None;
    for i in (0..cands.windows.len()).rev() {
        let w = cands.windows[i];
        if flags.lower_bound && (w as f64) < w_lb {
            break;
        }
        if flags.roughness_estimate
            && is_estimated_rougher(w, cands.acf.at(w), best_window, cands.acf.at(best_window))
        {
            continue;
        }
        let m = ev.evaluate(w)?;
        checked += 1;
        if m.roughness < best.roughness && ev.satisfies_constraint(m, config.kurtosis_factor) {
            best = m;
            best_window = w;
            if flags.lower_bound {
                w_lb = lower_bound_update(w_lb, w, cands.acf.at(w), cands.max_acf);
            }
            largest_feasible_idx = Some(largest_feasible_idx.map_or(i, |j| j.max(i)));
        }
    }

    if flags.refinement {
        let (head, tail) = match largest_feasible_idx {
            Some(i) => (
                (w_lb.ceil() as usize).max(cands.windows[i] + 1),
                cands
                    .windows
                    .get(i + 1)
                    .copied()
                    .unwrap_or(max_window)
                    .min(max_window),
            ),
            None => ((w_lb.ceil() as usize).max(2), max_window),
        };
        if head <= tail {
            binary::refine(
                &ev,
                config,
                head,
                tail,
                &mut best_window,
                &mut best,
                &mut checked,
            )?;
        }
    }

    Ok(SearchOutcome {
        window: best_window,
        roughness: best.roughness,
        kurtosis: best.kurtosis,
        candidates_checked: checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let base = (std::f64::consts::TAU * i as f64 / period as f64).sin();
                let noise = 0.25 * ((((i as u64) * 2654435761) % 1000) as f64 / 1000.0 - 0.5);
                base + noise + if i >= n / 2 && i < n / 2 + period / 2 { 2.0 } else { 0.0 }
            })
            .collect()
    }

    #[test]
    fn all_flags_match_the_production_search() {
        let data = periodic(2400, 48);
        let config = AsapConfig::default();
        let ablated = search_ablated(&data, &config, AblationFlags::all()).unwrap();
        let production = crate::search::asap::search(&data, &config).unwrap();
        assert_eq!(ablated.window, production.window);
        assert_eq!(ablated.candidates_checked, production.candidates_checked);
    }

    #[test]
    fn disabling_pruning_never_improves_quality_but_costs_candidates() {
        let data = periodic(2400, 48);
        let config = AsapConfig::default();
        let full = search_ablated(&data, &config, AblationFlags::all()).unwrap();
        // Same refinement, no estimate pruning: every peak gets evaluated,
        // so the candidate count can only grow.
        let unpruned = search_ablated(
            &data,
            &config,
            AblationFlags {
                roughness_estimate: false,
                lower_bound: false,
                refinement: true,
            },
        )
        .unwrap();
        assert!(unpruned.candidates_checked >= full.candidates_checked);
        // Pruning is quality-safe: both reach the same roughness.
        assert!((full.roughness - unpruned.roughness).abs() < 1e-12);
        // And quality without refinement can only tie or lose to full.
        let no_refine = search_ablated(
            &data,
            &config,
            AblationFlags {
                refinement: false,
                ..AblationFlags::all()
            },
        )
        .unwrap();
        assert!(full.roughness <= no_refine.roughness + 1e-12);
    }

    #[test]
    fn refinement_only_affects_quality_not_correctness() {
        let data = periodic(3000, 60);
        let config = AsapConfig::default();
        let no_refine = search_ablated(
            &data,
            &config,
            AblationFlags {
                refinement: false,
                ..AblationFlags::all()
            },
        )
        .unwrap();
        // The peak scan alone already satisfies the constraint.
        assert!(no_refine.window >= 1);
        if no_refine.window > 1 {
            let smoothed = asap_timeseries::sma(&data, no_refine.window).unwrap();
            let k = asap_timeseries::kurtosis(&smoothed).unwrap();
            let k0 = asap_timeseries::kurtosis(&data).unwrap();
            assert!(k >= k0 - 1e-9);
        }
    }
}
