//! The ASAP search — Algorithms 1 and 2 of the paper.
//!
//! On periodic data the search walks the ACF-peak candidates from large to
//! small windows, applying three rules once a feasible window is in hand:
//!
//! * **lower-bound pruning** (`UPDATELB`, Eq. 6): smaller windows that
//!   cannot beat the current best even at the maximum observed
//!   autocorrelation are cut off (`break`, since candidates are sorted);
//! * **roughness-estimate pruning** (`ISROUGHER`, Eq. 5): candidates whose
//!   estimated roughness already exceeds the current best are skipped
//!   without evaluating their metrics;
//! * **kurtosis constraint**: a candidate only becomes the new best if its
//!   smoothed kurtosis stays at or above the original's.
//!
//! Algorithm 2 then refines with binary search over the unexplored gap
//! between the largest feasible peak and the next candidate above it (or
//! the window cap). Aperiodic data — at most one ACF peak — skips straight
//! to binary search, which §4.2 shows is sound for IID-like series.

use crate::candidates;
use crate::config::AsapConfig;
use crate::estimate::{is_estimated_rougher, lower_bound_update};
use crate::metrics::{CandidateEvaluator, CandidateMetrics};
use crate::problem::SearchOutcome;
use crate::search::binary;
use asap_timeseries::TimeSeriesError;

/// Runs the full ASAP search (Algorithm 2's `FINDWINDOW`) from scratch.
pub fn search(data: &[f64], config: &AsapConfig) -> Result<SearchOutcome, TimeSeriesError> {
    search_seeded(data, config, None)
}

/// Runs the ASAP search seeded with the previous rendering request's window
/// (Algorithm 3's `CHECKLASTWINDOW` + `FINDWINDOW`).
///
/// If `previous_window` still satisfies the kurtosis constraint on the
/// current data, its metrics initialize the incumbent, which activates both
/// pruning rules from the first candidate onward.
pub fn search_seeded(
    data: &[f64],
    config: &AsapConfig,
    previous_window: Option<usize>,
) -> Result<SearchOutcome, TimeSeriesError> {
    let ev = match CandidateEvaluator::new(data) {
        Ok(ev) => ev,
        Err(TimeSeriesError::TooShort { .. }) => {
            return Ok(super::exhaustive::unsmoothed_short(data))
        }
        Err(e) => return Err(e),
    };
    let n = data.len();
    let max_window = config.effective_max_window(n);

    let mut best_window = 1usize;
    let mut best = ev.base();
    let mut checked = 0usize;
    let mut w_lb = 1.0f64; // pruning only activates once a window is feasible

    // CHECKLASTWINDOW: re-validate the previous answer on the new data.
    if let Some(prev) = previous_window {
        if prev > 1 && prev <= max_window {
            let m = ev.evaluate(prev)?;
            checked += 1;
            if ev.satisfies_constraint(m, config.kurtosis_factor) && m.roughness < best.roughness
            {
                best = m;
                best_window = prev;
            }
        }
    }

    // Lesion mode ("no AC"): skip candidate generation entirely.
    if !config.autocorrelation_pruning {
        binary::refine(
            &ev,
            config,
            2,
            max_window,
            &mut best_window,
            &mut best,
            &mut checked,
        )?;
        return Ok(outcome(best_window, best, checked));
    }

    let cands = match candidates::generate(data, config) {
        Ok(c) => c,
        // Zero-variance (flat) series: nothing to smooth.
        Err(TimeSeriesError::ZeroVariance) => {
            return Ok(SearchOutcome {
                window: 1,
                roughness: 0.0,
                kurtosis: f64::NAN,
                candidates_checked: checked,
            })
        }
        Err(e) => return Err(e),
    };

    if !cands.periodic {
        // Aperiodic fallback (§4.3.3): plain binary search, justified by
        // the IID analysis of §4.2. (Periodic series with many ACF peaks
        // take the pruned scan below — that is where Table 2's larger
        // candidate counts, e.g. EEG's 21, come from.)
        binary::refine(
            &ev,
            config,
            2,
            max_window,
            &mut best_window,
            &mut best,
            &mut checked,
        )?;
        return Ok(outcome(best_window, best, checked));
    }

    // If the seed produced an incumbent, activate the lower bound from it.
    if best_window > 1 {
        w_lb = lower_bound_update(w_lb, best_window, cands.acf.at(best_window), cands.max_acf);
    }

    // Algorithm 1: SEARCHPERIODIC, large to small.
    let mut largest_feasible_idx: Option<usize> = None;
    for i in (0..cands.windows.len()).rev() {
        let w = cands.windows[i];
        if (w as f64) < w_lb {
            break; // lower-bound pruning: all remaining candidates are smaller
        }
        // Roughness pruning (ISROUGHER): applied against the incumbent even
        // when that incumbent is the unsmoothed series (window 1), as in
        // Algorithm 1 — this is what keeps already-smooth, high-kurtosis
        // series like Twitter_AAPL to a handful of evaluations.
        if is_estimated_rougher(w, cands.acf.at(w), best_window, cands.acf.at(best_window)) {
            continue;
        }
        let m = ev.evaluate(w)?;
        checked += 1;
        if m.roughness < best.roughness && ev.satisfies_constraint(m, config.kurtosis_factor) {
            best = m;
            best_window = w;
            w_lb = lower_bound_update(w_lb, w, cands.acf.at(w), cands.max_acf);
            largest_feasible_idx = Some(largest_feasible_idx.map_or(i, |j| j.max(i)));
        }
    }

    // Algorithm 2: binary refinement over the unexplored range between the
    // largest feasible peak and the next candidate above it.
    let (head, tail) = match largest_feasible_idx {
        Some(i) => {
            let head = (w_lb.ceil() as usize).max(cands.windows[i] + 1);
            let tail = cands
                .windows
                .get(i + 1)
                .copied()
                .unwrap_or(max_window)
                .min(max_window);
            (head, tail)
        }
        // No feasible peak: search the whole range above the lower bound.
        None => ((w_lb.ceil() as usize).max(2), max_window),
    };
    if head <= tail {
        binary::refine(
            &ev,
            config,
            head,
            tail,
            &mut best_window,
            &mut best,
            &mut checked,
        )?;
    }

    Ok(outcome(best_window, best, checked))
}

fn outcome(window: usize, m: CandidateMetrics, checked: usize) -> SearchOutcome {
    SearchOutcome {
        window,
        roughness: m.roughness,
        kurtosis: m.kurtosis,
        candidates_checked: checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::exhaustive;

    fn periodic_with_anomaly(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let base = (std::f64::consts::TAU * i as f64 / period as f64).sin();
                let noise = 0.25 * (((i as u64) * 2654435761) % 1000) as f64 / 1000.0;
                let v = base + noise;
                if i >= n / 2 && i < n / 2 + period / 2 {
                    v + 2.0
                } else {
                    v
                }
            })
            .collect()
    }

    #[test]
    fn matches_exhaustive_window_on_periodic_data() {
        // The Table 2 headline: same window choice, far fewer candidates.
        let data = periodic_with_anomaly(1200, 48);
        let config = AsapConfig::default();
        let a = search(&data, &config).unwrap();
        let e = exhaustive::search(&data, &config).unwrap();
        assert!(
            a.roughness <= e.roughness * 1.01 + 1e-12,
            "asap {} vs exhaustive {}",
            a.roughness,
            e.roughness
        );
        assert!(
            a.candidates_checked < e.candidates_checked / 3,
            "asap checked {}, exhaustive {}",
            a.candidates_checked,
            e.candidates_checked
        );
    }

    #[test]
    fn aperiodic_data_falls_back_to_binary_probe_counts() {
        let data: Vec<f64> = (0..3000)
            .map(|i| (((i as u64) * 2654435761) % 104729) as f64 / 104729.0)
            .collect();
        let out = search(&data, &AsapConfig::default()).unwrap();
        assert!(out.candidates_checked <= 10, "{}", out.candidates_checked);
    }

    #[test]
    fn flat_series_returns_unsmoothed() {
        let out = search(&[3.0; 500], &AsapConfig::default()).unwrap();
        assert_eq!(out.window, 1);
    }

    #[test]
    fn seeding_with_feasible_window_never_hurts_quality() {
        let data = periodic_with_anomaly(2400, 48);
        let config = AsapConfig::default();
        let fresh = search(&data, &config).unwrap();
        let seeded = search_seeded(&data, &config, Some(fresh.window)).unwrap();
        assert!(seeded.roughness <= fresh.roughness + 1e-12);
        assert_eq!(seeded.window, fresh.window);
    }

    #[test]
    fn seeding_with_stale_infeasible_window_is_ignored() {
        // Seed with a window that violates the constraint on this data: the
        // search must still find a valid answer.
        let mut data: Vec<f64> = (0..800).map(|i| (i as f64 * 0.3).sin() * 0.01).collect();
        data[400] = 10.0;
        let out = search_seeded(&data, &AsapConfig::default(), Some(40)).unwrap();
        assert_eq!(out.window, 1, "spiky series should stay unsmoothed");
    }

    #[test]
    fn lesion_mode_reduces_to_binary_search() {
        let data = periodic_with_anomaly(1200, 48);
        let no_ac = crate::AsapBuilder::default()
            .autocorrelation_pruning(false)
            .build_config();
        let lesioned = search(&data, &no_ac).unwrap();
        let b = crate::search::binary::search(&data, &AsapConfig::default()).unwrap();
        assert_eq!(lesioned.window, b.window);
    }

    #[test]
    fn kurtosis_constraint_holds_at_the_returned_window() {
        let data = periodic_with_anomaly(1600, 40);
        let config = AsapConfig::default();
        let out = search(&data, &config).unwrap();
        if out.window > 1 {
            let smoothed = asap_timeseries::sma(&data, out.window).unwrap();
            let k = asap_timeseries::kurtosis(&smoothed).unwrap();
            let k0 = asap_timeseries::kurtosis(&data).unwrap();
            assert!(k >= k0 - 1e-9, "{k} < {k0}");
        }
    }

    #[test]
    fn respects_explicit_max_window() {
        let data = periodic_with_anomaly(2400, 48);
        let config = crate::AsapBuilder::default().max_window(30).build_config();
        let out = search(&data, &config).unwrap();
        assert!(out.window <= 30);
    }
}
