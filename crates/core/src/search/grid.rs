//! Grid search with a fixed step (§4.1, Figure 8's Grid2/Grid10).
//!
//! Faster than exhaustive by the step factor, but because roughness is not
//! monotone in the window length (§4.3.1), coarse grids skip the sharp
//! roughness minima at period-aligned windows — Figure 8 shows Grid10
//! delivering "the worst overall results" while Grid2 matches ASAP's
//! quality but "fails to scale".

use crate::config::AsapConfig;
use crate::metrics::CandidateEvaluator;
use crate::problem::SearchOutcome;
use asap_timeseries::TimeSeriesError;

/// Runs grid search probing windows `2, 2+step, 2+2·step, …` up to the cap.
pub fn search(
    data: &[f64],
    config: &AsapConfig,
    step: usize,
) -> Result<SearchOutcome, TimeSeriesError> {
    if step == 0 {
        return Err(TimeSeriesError::InvalidParameter {
            name: "step",
            message: "grid step must be at least 1",
        });
    }
    let ev = match CandidateEvaluator::new(data) {
        Ok(ev) => ev,
        Err(TimeSeriesError::TooShort { .. }) => {
            return Ok(super::exhaustive::unsmoothed_short(data))
        }
        Err(e) => return Err(e),
    };
    let max_window = config.effective_max_window(data.len());

    let mut best_window = 1usize;
    let mut best = ev.base();
    let mut checked = 0usize;
    let mut w = 2usize;
    while w <= max_window {
        let m = ev.evaluate(w)?;
        checked += 1;
        if m.roughness < best.roughness && ev.satisfies_constraint(m, config.kurtosis_factor) {
            best = m;
            best_window = w;
        }
        w += step;
    }

    Ok(SearchOutcome {
        window: best_window,
        roughness: best.roughness,
        kurtosis: best.kurtosis,
        candidates_checked: checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let base = (std::f64::consts::TAU * i as f64 / period as f64).sin();
                if i >= n / 2 && i < n / 2 + period / 2 { base * 2.5 } else { base }
            })
            .collect()
    }

    #[test]
    fn step_one_equals_exhaustive() {
        let data = periodic(1000, 25);
        let config = AsapConfig::default();
        let g = search(&data, &config, 1).unwrap();
        let e = super::super::exhaustive::search(&data, &config).unwrap();
        assert_eq!(g.window, e.window);
        assert_eq!(g.candidates_checked, e.candidates_checked);
    }

    #[test]
    fn larger_steps_check_fewer_candidates() {
        let data = periodic(1200, 48);
        let config = AsapConfig::default();
        let g2 = search(&data, &config, 2).unwrap();
        let g10 = search(&data, &config, 10).unwrap();
        assert!(g10.candidates_checked < g2.candidates_checked);
        assert!(g2.candidates_checked < 119);
    }

    #[test]
    fn coarse_grid_can_miss_period_aligned_minimum() {
        // Period 48: the sharp minimum sits at w=48 (and 96). Grid10 probes
        // 2,12,...,92,102,112 — never 48/96 — so its roughness is worse
        // than exhaustive's. This is Figure 8's quality gap.
        let data = periodic(1200, 48);
        let config = AsapConfig::default();
        let e = super::super::exhaustive::search(&data, &config).unwrap();
        let g10 = search(&data, &config, 10).unwrap();
        assert!(
            g10.roughness > e.roughness,
            "grid10 {} should be rougher than exhaustive {}",
            g10.roughness,
            e.roughness
        );
    }

    #[test]
    fn zero_step_errors() {
        assert!(search(&[1.0, 2.0, 3.0], &AsapConfig::default(), 0).is_err());
    }
}
