//! The strawman exhaustive search (§4.1).
//!
//! Evaluates every window from 2 to the cap and keeps the smoothest
//! candidate that satisfies the kurtosis constraint. O(N) per candidate ×
//! O(N) candidates = O(N²) — the paper measures over an hour for 1M raw
//! points, which is exactly why ASAP exists. On preaggregated data it is
//! tractable and serves as the quality gold standard for Table 2, Figures
//! 8–9.

use crate::config::AsapConfig;
use crate::metrics::CandidateEvaluator;
use crate::problem::SearchOutcome;
use asap_timeseries::TimeSeriesError;

/// Runs the exhaustive search over `data`.
pub fn search(data: &[f64], config: &AsapConfig) -> Result<SearchOutcome, TimeSeriesError> {
    let ev = match CandidateEvaluator::new(data) {
        Ok(ev) => ev,
        Err(TimeSeriesError::TooShort { .. }) => return Ok(unsmoothed_short(data)),
        Err(e) => return Err(e),
    };
    let max_window = config.effective_max_window(data.len());

    let base = ev.base();
    let mut best_window = 1usize;
    let mut best = base;
    let mut checked = 0usize;

    for w in 2..=max_window {
        let m = ev.evaluate(w)?;
        checked += 1;
        if m.roughness < best.roughness && ev.satisfies_constraint(m, config.kurtosis_factor) {
            best = m;
            best_window = w;
        }
    }

    Ok(SearchOutcome {
        window: best_window,
        roughness: best.roughness,
        kurtosis: best.kurtosis,
        candidates_checked: checked,
    })
}

/// Outcome for series too short to smooth at all.
pub(crate) fn unsmoothed_short(data: &[f64]) -> SearchOutcome {
    SearchOutcome {
        window: 1,
        roughness: if data.len() >= 2 {
            asap_timeseries::roughness(data).unwrap_or(0.0)
        } else {
            0.0
        },
        kurtosis: f64::NAN,
        candidates_checked: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_period_on_clean_periodic_data() {
        let data: Vec<f64> = (0..800)
            .map(|i| {
                let base = (std::f64::consts::TAU * i as f64 / 32.0).sin();
                if (320..336).contains(&i) { base * 2.0 } else { base }
            })
            .collect();
        let out = search(&data, &AsapConfig::default()).unwrap();
        // §4.3.2's example: the period-aligned window (or a multiple)
        // flattens everything but the anomaly.
        assert_eq!(out.window % 32, 0, "window {} not period-aligned", out.window);
        assert_eq!(out.candidates_checked, 79); // windows 2..=80 (n/10)
    }

    #[test]
    fn high_kurtosis_series_is_left_unsmoothed() {
        // Twitter_AAPL behavior: a few extreme spikes mean every smoothed
        // candidate loses kurtosis, so window stays 1.
        let mut data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.4).sin() * 0.05).collect();
        data[300] = 50.0;
        data[700] = -45.0;
        let out = search(&data, &AsapConfig::default()).unwrap();
        assert_eq!(out.window, 1);
    }

    #[test]
    fn candidate_count_matches_cap() {
        let data: Vec<f64> = (0..1200)
            .map(|i| (i as f64 * 0.37).sin() + 0.1 * ((i * i) % 17) as f64)
            .collect();
        let out = search(&data, &AsapConfig::default()).unwrap();
        // Table 2 exhaustively checks ~n/10 candidates at 1200 resolution.
        assert_eq!(out.candidates_checked, 119);
    }

    #[test]
    fn tiny_series_returns_window_one() {
        let out = search(&[1.0], &AsapConfig::default()).unwrap();
        assert_eq!(out.window, 1);
        assert_eq!(out.candidates_checked, 0);
    }

    #[test]
    fn roughness_never_exceeds_unsmoothed() {
        let data: Vec<f64> = (0..600)
            .map(|i| (i as f64 * 0.17).sin() + 0.5 * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let base = asap_timeseries::roughness(&data).unwrap();
        let out = search(&data, &AsapConfig::default()).unwrap();
        assert!(out.roughness <= base + 1e-12);
    }
}
