//! Window-search strategies.
//!
//! The paper's evaluation (§5.2.1, Figure 8) compares four strategies over
//! the same preaggregated series:
//!
//! * [`exhaustive`] — the strawman O(N²) scan of every window (§4.1), the
//!   quality gold standard;
//! * [`grid`] — exhaustive with a step size (Grid2 / Grid10 in Figure 8);
//! * [`binary`] — the §4.2 binary search, exact for IID data but fooled by
//!   the non-monotone roughness of periodic data;
//! * [`asap`] — Algorithms 1–2: ACF-peak candidates searched large-to-small
//!   with lower-bound and roughness-estimate pruning, plus binary-search
//!   refinement.
//!
//! All strategies share the same constraint handling ([`super::metrics`])
//! and report how many candidates they actually evaluated, so Table 2 and
//! Figure 8 come straight out of their [`SearchOutcome`]s.

pub mod ablation;
pub mod asap;
pub mod binary;
pub mod exhaustive;
pub mod grid;

use crate::config::AsapConfig;
use crate::problem::SearchOutcome;
use asap_timeseries::TimeSeriesError;

/// A uniform handle over the four search strategies, used by the
/// benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Every window from 1 to the cap (§4.1).
    Exhaustive,
    /// Every `step`-th window.
    Grid {
        /// Step size between probed windows.
        step: usize,
    },
    /// Binary search on the kurtosis constraint (§4.2).
    Binary,
    /// The full ASAP search (Algorithms 1–2).
    Asap,
}

impl SearchStrategy {
    /// Runs the strategy over `data` (already preaggregated if desired).
    pub fn search(
        &self,
        data: &[f64],
        config: &AsapConfig,
    ) -> Result<SearchOutcome, TimeSeriesError> {
        match *self {
            SearchStrategy::Exhaustive => exhaustive::search(data, config),
            SearchStrategy::Grid { step } => grid::search(data, config, step),
            SearchStrategy::Binary => binary::search(data, config),
            SearchStrategy::Asap => asap::search(data, config),
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match *self {
            SearchStrategy::Exhaustive => "Exhaustive".into(),
            SearchStrategy::Grid { step } => format!("Grid{step}"),
            SearchStrategy::Binary => "Binary".into(),
            SearchStrategy::Asap => "ASAP".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_periodic(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (std::f64::consts::TAU * i as f64 / period as f64).sin()
                    + 0.3 * if i % 2 == 0 { 1.0 } else { -1.0 }
            })
            .collect()
    }

    #[test]
    fn names_match_figures() {
        assert_eq!(SearchStrategy::Exhaustive.name(), "Exhaustive");
        assert_eq!(SearchStrategy::Grid { step: 2 }.name(), "Grid2");
        assert_eq!(SearchStrategy::Grid { step: 10 }.name(), "Grid10");
        assert_eq!(SearchStrategy::Binary.name(), "Binary");
        assert_eq!(SearchStrategy::Asap.name(), "ASAP");
    }

    #[test]
    fn all_strategies_run_and_satisfy_the_constraint() {
        let data = noisy_periodic(1200, 48);
        let config = AsapConfig::default();
        let base_kurt = asap_timeseries::kurtosis(&data).unwrap();
        for strat in [
            SearchStrategy::Exhaustive,
            SearchStrategy::Grid { step: 2 },
            SearchStrategy::Grid { step: 10 },
            SearchStrategy::Binary,
            SearchStrategy::Asap,
        ] {
            let out = strat.search(&data, &config).unwrap();
            assert!(out.window >= 1, "{}", strat.name());
            if out.window > 1 {
                assert!(
                    out.kurtosis >= base_kurt - 1e-9,
                    "{} violates constraint: {} < {base_kurt}",
                    strat.name(),
                    out.kurtosis
                );
            }
        }
    }

    #[test]
    fn asap_matches_exhaustive_quality_with_fewer_candidates() {
        // The headline Table 2 property on a strongly periodic series.
        let data = noisy_periodic(2400, 48);
        let config = AsapConfig::default();
        let ex = SearchStrategy::Exhaustive.search(&data, &config).unwrap();
        let asap = SearchStrategy::Asap.search(&data, &config).unwrap();
        assert!(
            asap.roughness <= ex.roughness * 1.05 + 1e-12,
            "ASAP roughness {} vs exhaustive {}",
            asap.roughness,
            ex.roughness
        );
        assert!(
            asap.candidates_checked * 2 < ex.candidates_checked,
            "ASAP {} vs exhaustive {} candidates",
            asap.candidates_checked,
            ex.candidates_checked
        );
    }
}
