//! Device presets and search-space reduction (Table 1).
//!
//! Pixel-aware preaggregation bounds the search by the *horizontal*
//! resolution of the target display. Table 1 lists five representative
//! devices and the reduction each achieves on a 1M-point series; this
//! module reproduces that table.

/// A display device with its native resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Device {
    /// Marketing name as listed in Table 1.
    pub name: &'static str,
    /// Horizontal resolution in pixels (the axis that matters for a time
    /// series plot).
    pub horizontal: u32,
    /// Vertical resolution in pixels.
    pub vertical: u32,
}

impl Device {
    /// The search-space reduction factor preaggregation achieves for a
    /// series of `n` points on this device: `n / horizontal` (Table 1's
    /// right column, reported rounded).
    pub fn reduction_on(&self, n: usize) -> f64 {
        n as f64 / self.horizontal as f64
    }
}

/// The five devices of Table 1.
pub const DEVICES: [Device; 5] = [
    Device {
        name: "38mm Apple Watch",
        horizontal: 272,
        vertical: 340,
    },
    Device {
        name: "Samsung Galaxy S7",
        horizontal: 1440,
        vertical: 2560,
    },
    Device {
        name: "13\" MacBook Pro",
        horizontal: 2304,
        vertical: 1440,
    },
    Device {
        name: "Dell 34 Curved Monitor",
        horizontal: 3440,
        vertical: 1440,
    },
    Device {
        name: "27\" iMac Retina",
        horizontal: 5120,
        vertical: 2880,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reduction_factors_on_one_million_points() {
        // Paper's Table 1: 3676x, 694x, 434x, 291x, 195x.
        let expected = [3676.0, 694.0, 434.0, 291.0, 195.0];
        for (device, want) in DEVICES.iter().zip(expected) {
            let got = device.reduction_on(1_000_000);
            assert!(
                (got - want).abs() / want < 0.01,
                "{}: {got} vs {want}",
                device.name
            );
        }
    }

    #[test]
    fn devices_are_sorted_by_increasing_resolution() {
        for pair in DEVICES.windows(2) {
            assert!(pair[0].horizontal < pair[1].horizontal);
        }
    }
}
