//! Streaming ASAP — Algorithm 3 (§4.5).
//!
//! The streaming operator combines all three optimizations:
//!
//! 1. incoming points are sub-aggregated into **panes** sized by the
//!    point-to-pixel ratio (one pane per output pixel);
//! 2. a sliding window of panes covers the visualized interval, evicting
//!    outdated sub-aggregates;
//! 3. a [`RefreshClock`] re-runs the window search only every
//!    `refresh_interval` raw points, seeding it with the previous answer
//!    (`CHECKLASTWINDOW`), which activates ASAP's pruning rules
//!    immediately.
//!
//! Each refresh emits a [`Frame`] — the smoothed series to render plus the
//! chosen window — which is also the unit Figure 10 measures throughput
//! over.

use crate::config::AsapConfig;
use crate::problem::SearchOutcome;
use crate::search::asap;
use asap_stream::{Operator, PaneAggregator, RefreshClock, SlidingWindow};
use asap_timeseries::TimeSeriesError;

/// Configuration of the streaming operator.
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// How many raw points the visualization covers (e.g. "the last 30
    /// minutes" at the stream's rate).
    pub window_points: usize,
    /// Search configuration; `resolution` doubles as the number of panes
    /// kept (one pane per pixel).
    pub asap: AsapConfig,
    /// Re-run the search every this many raw points. The paper's default
    /// behaviour refreshes on human timescales (e.g. 1 Hz); Figure 10
    /// sweeps this knob.
    pub refresh_interval: usize,
}

impl StreamingConfig {
    /// A streaming config covering `window_points` at `resolution` pixels,
    /// refreshing every `refresh_interval` points.
    pub fn new(window_points: usize, resolution: usize, refresh_interval: usize) -> Self {
        let asap = AsapConfig {
            resolution,
            ..AsapConfig::default()
        };
        StreamingConfig {
            window_points,
            asap,
            refresh_interval,
        }
    }

    /// Raw points per pane (the point-to-pixel ratio).
    pub fn pane_size(&self) -> usize {
        crate::preagg::point_to_pixel_ratio(self.window_points, self.asap.resolution)
    }
}

/// One rendered frame emitted at a refresh.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The smoothed series to draw (≤ resolution points).
    pub smoothed: Vec<f64>,
    /// The search outcome that produced it.
    pub outcome: SearchOutcome,
    /// How many raw points had been ingested when this frame was emitted.
    pub points_ingested: u64,
}

/// The streaming ASAP operator (Algorithm 3).
#[derive(Debug, Clone)]
pub struct StreamingAsap {
    config: StreamingConfig,
    panes: PaneAggregator,
    window: SlidingWindow,
    clock: RefreshClock,
    previous_window: Option<usize>,
    points: u64,
    searches: u64,
}

impl StreamingAsap {
    /// Creates the operator.
    ///
    /// # Panics
    /// Panics if `window_points`, `resolution`, or `refresh_interval` is 0.
    pub fn new(config: StreamingConfig) -> Self {
        assert!(config.window_points > 0, "window_points must be positive");
        assert!(config.refresh_interval > 0, "refresh_interval must be positive");
        let pane_size = config.pane_size();
        let capacity = config.window_points.div_ceil(pane_size).max(2);
        StreamingAsap {
            panes: PaneAggregator::new(pane_size),
            window: SlidingWindow::new(capacity),
            clock: RefreshClock::new(config.refresh_interval),
            config,
            previous_window: None,
            points: 0,
            searches: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &StreamingConfig {
        &self.config
    }

    /// Total raw points ingested.
    pub fn points_ingested(&self) -> u64 {
        self.points
    }

    /// Number of search invocations so far (the quantity the on-demand
    /// optimization minimizes).
    pub fn searches_run(&self) -> u64 {
        self.searches
    }

    /// Ingests one raw point; returns a frame when a refresh fired.
    ///
    /// UPDATEWINDOW of Algorithm 3: sub-aggregate, update the pane window,
    /// and on each refresh tick re-run the seeded search.
    pub fn push(&mut self, value: f64) -> Result<Option<Frame>, TimeSeriesError> {
        if !value.is_finite() {
            return Err(TimeSeriesError::NonFinite {
                index: self.points as usize,
            });
        }
        self.points += 1;
        if let Some(pane) = self.panes.push(value) {
            self.window.push(pane);
        }
        if self.clock.tick() && self.window.len() >= 4 {
            return self.refresh().map(Some);
        }
        Ok(None)
    }

    /// Forces a refresh now (used at end-of-stream).
    pub fn refresh(&mut self) -> Result<Frame, TimeSeriesError> {
        let series = self.window.pane_means();
        self.searches += 1;
        let outcome = asap::search_seeded(&series, &self.config.asap, self.previous_window)?;
        self.previous_window = Some(outcome.window);
        let smoothed = if outcome.window <= 1 {
            series
        } else {
            asap_timeseries::sma(&series, outcome.window)?
        };
        Ok(Frame {
            smoothed,
            outcome,
            points_ingested: self.points,
        })
    }
}

impl Operator<f64, Frame> for StreamingAsap {
    fn process(&mut self, input: f64, out: &mut Vec<Frame>) {
        if let Ok(Some(frame)) = self.push(input) {
            out.push(frame);
        }
    }

    fn finish(&mut self, out: &mut Vec<Frame>) {
        if self.window.len() >= 4 {
            if let Ok(frame) = self.refresh() {
                out.push(frame);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_data(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (std::f64::consts::TAU * i as f64 / period as f64).sin()
                    + 0.3 * ((((i as u64) * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
            })
            .collect()
    }

    #[test]
    fn frames_fire_at_the_refresh_interval() {
        let config = StreamingConfig::new(10_000, 100, 1_000);
        let mut op = StreamingAsap::new(config);
        let mut frames = 0;
        for &v in &stream_data(10_000, 500) {
            if op.push(v).unwrap().is_some() {
                frames += 1;
            }
        }
        assert_eq!(frames, 10); // every 1000 points once window warm
        assert_eq!(op.searches_run(), frames as u64);
    }

    #[test]
    fn larger_refresh_interval_means_fewer_searches() {
        // The linear relationship of Figure 10.
        let runs = |interval: usize| {
            let mut op = StreamingAsap::new(StreamingConfig::new(10_000, 100, interval));
            for &v in &stream_data(20_000, 500) {
                op.push(v).unwrap();
            }
            op.searches_run()
        };
        let fast = runs(500);
        let slow = runs(2_000);
        assert_eq!(fast, 4 * slow);
    }

    #[test]
    fn frame_series_length_is_bounded_by_resolution() {
        let mut op = StreamingAsap::new(StreamingConfig::new(5_000, 50, 2_500));
        let mut last = None;
        for &v in &stream_data(5_000, 250) {
            if let Some(f) = op.push(v).unwrap() {
                last = Some(f);
            }
        }
        let f = last.expect("at least one frame");
        assert!(f.smoothed.len() <= 50);
        assert!(f.outcome.window >= 1);
    }

    #[test]
    fn streamed_window_matches_batch_on_stable_data() {
        // Once the window is full of stable periodic data, the streaming
        // search must agree with a batch search over the same pane means.
        // (Period = 5 panes, so the ACF has clear in-range peaks and the
        // choice is robust to pane-sum rounding.)
        let data = stream_data(20_000, 500);
        let config = StreamingConfig::new(20_000, 200, 20_000);
        let pane = config.pane_size();
        let mut op = StreamingAsap::new(config.clone());
        let mut frame = None;
        for &v in &data {
            if let Some(f) = op.push(v).unwrap() {
                frame = Some(f);
            }
        }
        let frame = frame.expect("one frame at the end");
        let (agg, _) = crate::preagg::preaggregate(&data, 200);
        assert_eq!(pane, 100);
        let batch = crate::search::asap::search(&agg, &config.asap).unwrap();
        assert_eq!(frame.outcome.window, batch.window);
        assert!(frame.outcome.window >= 5, "period should be smoothed over");
    }

    #[test]
    fn operator_finish_flushes_a_final_frame() {
        let op = StreamingAsap::new(StreamingConfig::new(1_000, 50, 10_000));
        let data = stream_data(1_000, 100);
        let frames = asap_stream::run_pipeline(op, data);
        // Interval never fired (10k > 1k points) but finish emits one frame.
        assert_eq!(frames.len(), 1);
    }

    #[test]
    fn seeded_search_checks_no_more_candidates_than_cold_search() {
        let data = stream_data(40_000, 2_000);
        let mut op = StreamingAsap::new(StreamingConfig::new(20_000, 200, 5_000));
        let mut counts = Vec::new();
        for &v in &data {
            if let Some(f) = op.push(v).unwrap() {
                counts.push(f.outcome.candidates_checked);
            }
        }
        assert!(counts.len() >= 4);
        // After the first warm search, the seed keeps candidate counts from
        // growing (the previous window rules out most peaks immediately).
        let first = counts[1]; // first fully-warm refresh
        let later_max = *counts[2..].iter().max().unwrap();
        assert!(
            later_max <= first + 3,
            "seeded searches blew up: first {first}, later {later_max}"
        );
    }

    #[test]
    #[should_panic(expected = "refresh_interval")]
    fn zero_refresh_interval_panics() {
        StreamingAsap::new(StreamingConfig::new(100, 10, 0));
    }

    #[test]
    fn non_finite_point_is_rejected_and_stream_survives() {
        let mut op = StreamingAsap::new(StreamingConfig::new(100, 10, 10));
        for i in 0..5 {
            op.push(i as f64).unwrap();
        }
        let err = op.push(f64::NAN).unwrap_err();
        assert!(matches!(err, TimeSeriesError::NonFinite { index: 5 }));
        // The bad point was not ingested; the stream keeps working.
        assert_eq!(op.points_ingested(), 5);
        for i in 5..20 {
            op.push(i as f64).unwrap();
        }
        assert_eq!(op.points_ingested(), 20);
    }
}
