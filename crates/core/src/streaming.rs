//! Streaming ASAP — Algorithm 3 (§4.5).
//!
//! The streaming operator combines all three optimizations:
//!
//! 1. incoming points are sub-aggregated into **panes** sized by the
//!    point-to-pixel ratio (one pane per output pixel);
//! 2. a sliding window of panes covers the visualized interval, evicting
//!    outdated sub-aggregates;
//! 3. a [`RefreshClock`] re-runs the window search only every
//!    `refresh_interval` raw points, seeding it with the previous answer
//!    (`CHECKLASTWINDOW`), which activates ASAP's pruning rules
//!    immediately.
//!
//! Each refresh emits a [`Frame`] — the smoothed series to render plus the
//! chosen window — which is also the unit Figure 10 measures throughput
//! over.

use std::collections::BTreeMap;

use crate::config::AsapConfig;
use crate::problem::SearchOutcome;
use crate::search::asap;
use asap_stream::{Operator, PaneAggregator, RefreshClock, SlidingWindow};
use asap_timeseries::TimeSeriesError;

/// Minimum panes in the sliding window before a refresh is meaningful
/// (the search needs a handful of points to estimate anything).
///
/// Public so config validators outside this crate (e.g. a server rejecting
/// a subscription template at startup) can replicate the viability check
/// [`StreamingAsap::new`] enforces with a panic.
pub const MIN_WARM_PANES: usize = 4;

/// Configuration of the streaming operator.
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// How many raw points the visualization covers (e.g. "the last 30
    /// minutes" at the stream's rate).
    pub window_points: usize,
    /// Search configuration; `resolution` doubles as the number of panes
    /// kept (one pane per pixel).
    pub asap: AsapConfig,
    /// Re-run the search every this many raw points. The paper's default
    /// behaviour refreshes on human timescales (e.g. 1 Hz); Figure 10
    /// sweeps this knob.
    pub refresh_interval: usize,
}

impl StreamingConfig {
    /// A streaming config covering `window_points` at `resolution` pixels,
    /// refreshing every `refresh_interval` points.
    pub fn new(window_points: usize, resolution: usize, refresh_interval: usize) -> Self {
        let asap = AsapConfig {
            resolution,
            ..AsapConfig::default()
        };
        StreamingConfig {
            window_points,
            asap,
            refresh_interval,
        }
    }

    /// Raw points per pane (the point-to-pixel ratio).
    pub fn pane_size(&self) -> usize {
        crate::preagg::point_to_pixel_ratio(self.window_points, self.asap.resolution)
    }
}

/// One rendered frame emitted at a refresh.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The smoothed series to draw (≤ resolution points).
    pub smoothed: Vec<f64>,
    /// The search outcome that produced it.
    pub outcome: SearchOutcome,
    /// How many raw points had been ingested when this frame was emitted.
    pub points_ingested: u64,
}

/// The streaming ASAP operator (Algorithm 3).
#[derive(Debug, Clone)]
pub struct StreamingAsap {
    config: StreamingConfig,
    panes: PaneAggregator,
    window: SlidingWindow,
    clock: RefreshClock,
    previous_window: Option<usize>,
    points: u64,
    searches: u64,
}

impl StreamingAsap {
    /// Creates the operator.
    ///
    /// # Panics
    /// Panics if `window_points`, `resolution`, or `refresh_interval` is 0.
    pub fn new(config: StreamingConfig) -> Self {
        assert!(config.window_points > 0, "window_points must be positive");
        assert!(config.refresh_interval > 0, "refresh_interval must be positive");
        assert!(
            config.asap.resolution > 0,
            "resolution must be positive: zero pixels means zero-sized panes"
        );
        let pane_size = config.pane_size();
        let capacity = config.window_points.div_ceil(pane_size).max(2);
        // A window that cannot ever hold MIN_WARM_PANES panes would never
        // warm up: every push returns Ok(None) forever and finish() emits
        // nothing — silent total frame suppression. Reject the degenerate
        // config here instead (happens when resolution or window_points
        // is below MIN_WARM_PANES).
        assert!(
            capacity >= MIN_WARM_PANES,
            "window covers only {capacity} panes but refresh needs {MIN_WARM_PANES}: \
             raise window_points or resolution"
        );
        StreamingAsap {
            panes: PaneAggregator::new(pane_size),
            window: SlidingWindow::new(capacity),
            clock: RefreshClock::new(config.refresh_interval),
            config,
            previous_window: None,
            points: 0,
            searches: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &StreamingConfig {
        &self.config
    }

    /// Total raw points ingested.
    pub fn points_ingested(&self) -> u64 {
        self.points
    }

    /// Number of search invocations so far (the quantity the on-demand
    /// optimization minimizes).
    pub fn searches_run(&self) -> u64 {
        self.searches
    }

    /// Whether the window holds enough panes for a refresh to produce a
    /// frame (a cold operator's [`StreamingAsap::refresh`] errors).
    pub fn is_warm(&self) -> bool {
        self.window.len() >= MIN_WARM_PANES
    }

    /// Ingests one raw point; returns a frame when a refresh fired.
    ///
    /// UPDATEWINDOW of Algorithm 3: sub-aggregate, update the pane window,
    /// and on each refresh tick re-run the seeded search.
    pub fn push(&mut self, value: f64) -> Result<Option<Frame>, TimeSeriesError> {
        if !value.is_finite() {
            return Err(TimeSeriesError::NonFinite {
                index: self.points as usize,
            });
        }
        self.points += 1;
        if let Some(pane) = self.panes.push(value) {
            self.window.push(pane);
        }
        if self.clock.tick() && self.is_warm() {
            return self.refresh().map(Some);
        }
        Ok(None)
    }

    /// Forces a refresh now (used at end-of-stream).
    ///
    /// Errors with [`TimeSeriesError::Empty`] when no pane has completed
    /// yet — an empty window would otherwise yield a meaningless frame
    /// (empty smoothed series, NaN kurtosis).
    pub fn refresh(&mut self) -> Result<Frame, TimeSeriesError> {
        let series = self.window.pane_means();
        if series.is_empty() {
            return Err(TimeSeriesError::Empty);
        }
        self.searches += 1;
        let outcome = asap::search_seeded(&series, &self.config.asap, self.previous_window)?;
        self.previous_window = Some(outcome.window);
        let smoothed = if outcome.window <= 1 {
            series
        } else {
            asap_timeseries::sma(&series, outcome.window)?
        };
        Ok(Frame {
            smoothed,
            outcome,
            points_ingested: self.points,
        })
    }
}

impl Operator<f64, Frame> for StreamingAsap {
    fn process(&mut self, input: f64, out: &mut Vec<Frame>) {
        if let Ok(Some(frame)) = self.push(input) {
            out.push(frame);
        }
    }

    fn finish(&mut self, out: &mut Vec<Frame>) {
        if self.is_warm() {
            if let Ok(frame) = self.refresh() {
                out.push(frame);
            }
        }
    }
}

/// A multi-series streaming driver: one runtime instance serving many
/// keys.
///
/// Server-side deployments (§2) smooth every panel of a dashboard — or
/// every series of a sharded store — from a single operator process. This
/// driver owns one [`StreamingAsap`] per key, created lazily from a shared
/// configuration template, and keeps them in a `BTreeMap` so every
/// cross-key operation ([`MultiStreamingAsap::refresh_all`],
/// [`MultiStreamingAsap::keys`]) is in deterministic key order.
///
/// The key type is generic: monitoring backends use metric names
/// (see [`crate::fleet::Fleet`], a thin wrapper over
/// `MultiStreamingAsap<String>`), while storage layers can drive it with
/// richer series identities.
#[derive(Debug)]
pub struct MultiStreamingAsap<K: Ord + Clone> {
    template: StreamingConfig,
    operators: BTreeMap<K, StreamingAsap>,
    // Counters carried by operators that have since been removed, so
    // total_points/total_searches stay monotonic across key eviction.
    retired_points: u64,
    retired_searches: u64,
}

impl<K: Ord + Clone> MultiStreamingAsap<K> {
    /// Creates a driver whose per-key operators all use `template`.
    ///
    /// # Panics
    /// Panics on the invalid templates [`StreamingAsap::new`] rejects
    /// (zero `window_points`, `resolution`, or `refresh_interval`), so a
    /// bad configuration fails at construction rather than at first push.
    pub fn new(template: StreamingConfig) -> Self {
        // Validate eagerly by building (and discarding) one operator.
        let _probe = StreamingAsap::new(template.clone());
        MultiStreamingAsap {
            template,
            operators: BTreeMap::new(),
            retired_points: 0,
            retired_searches: 0,
        }
    }

    /// The shared configuration template.
    pub fn config(&self) -> &StreamingConfig {
        &self.template
    }

    /// Number of keys currently tracked.
    pub fn len(&self) -> usize {
        self.operators.len()
    }

    /// True when no key has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.operators.is_empty()
    }

    /// Tracked keys, in key order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.operators.keys()
    }

    /// The per-key operator, if `key` has been seen.
    pub fn operator<Q>(&self, key: &Q) -> Option<&StreamingAsap>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.operators.get(key)
    }

    /// Ingests one point for `key`, creating its operator on first sight
    /// via `to_owned`. Returns a frame when that key's refresh fired.
    ///
    /// The borrowed-key form lets hot ingest paths look up by `&str` (or
    /// any borrowed form) without allocating an owned key per point.
    pub fn push_with<Q>(
        &mut self,
        key: &Q,
        value: f64,
        to_owned: impl FnOnce(&Q) -> K,
    ) -> Result<Option<Frame>, TimeSeriesError>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let op = match self.operators.get_mut(key) {
            Some(op) => op,
            None => self
                .operators
                .entry(to_owned(key))
                .or_insert_with(|| StreamingAsap::new(self.template.clone())),
        };
        op.push(value)
    }

    /// Ingests one point for `key` (cloning it on first sight). Returns a
    /// frame when that key's refresh fired.
    pub fn push(&mut self, key: &K, value: f64) -> Result<Option<Frame>, TimeSeriesError> {
        self.push_with(key, value, K::clone)
    }

    /// Forces a refresh of every warm key, returning `(key, frame)` pairs
    /// in key order — the "render the whole dashboard now" operation.
    /// Cold keys (window not yet warm) are skipped.
    pub fn refresh_all(&mut self) -> Vec<(K, Frame)> {
        self.operators
            .iter_mut()
            .filter(|(_, op)| op.is_warm())
            .filter_map(|(key, op)| op.refresh().ok().map(|frame| (key.clone(), frame)))
            .collect()
    }

    /// Removes `key`'s operator, returning it if it existed.
    ///
    /// The removed operator's point/search counts are retired into the
    /// driver's running totals, so [`MultiStreamingAsap::total_points`] and
    /// [`MultiStreamingAsap::total_searches`] stay monotonic: removing a
    /// key never makes the driver forget work it already did. A later push
    /// for the same key starts a fresh, cold operator.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<StreamingAsap>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let op = self.operators.remove(key)?;
        self.retired_points += op.points_ingested();
        self.retired_searches += op.searches_run();
        Some(op)
    }

    /// Keeps only the keys for which `keep` returns `true`, evicting the
    /// rest — the bulk form of [`MultiStreamingAsap::remove`], with the
    /// same counter-retirement semantics. Returns how many keys were
    /// evicted.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &StreamingAsap) -> bool) -> usize {
        let before = self.operators.len();
        let mut retired_points = 0u64;
        let mut retired_searches = 0u64;
        self.operators.retain(|key, op| {
            if keep(key, op) {
                true
            } else {
                retired_points += op.points_ingested();
                retired_searches += op.searches_run();
                false
            }
        });
        self.retired_points += retired_points;
        self.retired_searches += retired_searches;
        before - self.operators.len()
    }

    /// Total searches run across all keys, including keys since removed.
    pub fn total_searches(&self) -> u64 {
        self.retired_searches
            + self.operators.values().map(StreamingAsap::searches_run).sum::<u64>()
    }

    /// Total raw points ingested across all keys, including keys since
    /// removed.
    pub fn total_points(&self) -> u64 {
        self.retired_points
            + self.operators.values().map(StreamingAsap::points_ingested).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_data(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (std::f64::consts::TAU * i as f64 / period as f64).sin()
                    + 0.3 * ((((i as u64) * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
            })
            .collect()
    }

    #[test]
    fn frames_fire_at_the_refresh_interval() {
        let config = StreamingConfig::new(10_000, 100, 1_000);
        let mut op = StreamingAsap::new(config);
        let mut frames = 0;
        for &v in &stream_data(10_000, 500) {
            if op.push(v).unwrap().is_some() {
                frames += 1;
            }
        }
        assert_eq!(frames, 10); // every 1000 points once window warm
        assert_eq!(op.searches_run(), frames as u64);
    }

    #[test]
    fn larger_refresh_interval_means_fewer_searches() {
        // The linear relationship of Figure 10.
        let runs = |interval: usize| {
            let mut op = StreamingAsap::new(StreamingConfig::new(10_000, 100, interval));
            for &v in &stream_data(20_000, 500) {
                op.push(v).unwrap();
            }
            op.searches_run()
        };
        let fast = runs(500);
        let slow = runs(2_000);
        assert_eq!(fast, 4 * slow);
    }

    #[test]
    fn frame_series_length_is_bounded_by_resolution() {
        let mut op = StreamingAsap::new(StreamingConfig::new(5_000, 50, 2_500));
        let mut last = None;
        for &v in &stream_data(5_000, 250) {
            if let Some(f) = op.push(v).unwrap() {
                last = Some(f);
            }
        }
        let f = last.expect("at least one frame");
        assert!(f.smoothed.len() <= 50);
        assert!(f.outcome.window >= 1);
    }

    #[test]
    fn streamed_window_matches_batch_on_stable_data() {
        // Once the window is full of stable periodic data, the streaming
        // search must agree with a batch search over the same pane means.
        // (Period = 5 panes, so the ACF has clear in-range peaks and the
        // choice is robust to pane-sum rounding.)
        let data = stream_data(20_000, 500);
        let config = StreamingConfig::new(20_000, 200, 20_000);
        let pane = config.pane_size();
        let mut op = StreamingAsap::new(config.clone());
        let mut frame = None;
        for &v in &data {
            if let Some(f) = op.push(v).unwrap() {
                frame = Some(f);
            }
        }
        let frame = frame.expect("one frame at the end");
        let (agg, _) = crate::preagg::preaggregate(&data, 200);
        assert_eq!(pane, 100);
        let batch = crate::search::asap::search(&agg, &config.asap).unwrap();
        assert_eq!(frame.outcome.window, batch.window);
        assert!(frame.outcome.window >= 5, "period should be smoothed over");
    }

    #[test]
    fn operator_finish_flushes_a_final_frame() {
        let op = StreamingAsap::new(StreamingConfig::new(1_000, 50, 10_000));
        let data = stream_data(1_000, 100);
        let frames = asap_stream::run_pipeline(op, data);
        // Interval never fired (10k > 1k points) but finish emits one frame.
        assert_eq!(frames.len(), 1);
    }

    #[test]
    fn seeded_search_checks_no_more_candidates_than_cold_search() {
        let data = stream_data(40_000, 2_000);
        let mut op = StreamingAsap::new(StreamingConfig::new(20_000, 200, 5_000));
        let mut counts = Vec::new();
        for &v in &data {
            if let Some(f) = op.push(v).unwrap() {
                counts.push(f.outcome.candidates_checked);
            }
        }
        assert!(counts.len() >= 4);
        // After the first warm search, the seed keeps candidate counts from
        // growing (the previous window rules out most peaks immediately).
        let first = counts[1]; // first fully-warm refresh
        let later_max = *counts[2..].iter().max().unwrap();
        assert!(
            later_max <= first + 3,
            "seeded searches blew up: first {first}, later {later_max}"
        );
    }

    #[test]
    #[should_panic(expected = "refresh_interval")]
    fn zero_refresh_interval_panics() {
        StreamingAsap::new(StreamingConfig::new(100, 10, 0));
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn zero_resolution_pane_size_is_rejected() {
        // resolution 0 would mean zero-sized panes; construction rejects it
        // instead of silently degrading to one giant pane per point.
        StreamingAsap::new(StreamingConfig::new(100, 0, 10));
    }

    #[test]
    #[should_panic(expected = "window_points")]
    fn zero_window_points_panics() {
        StreamingAsap::new(StreamingConfig::new(0, 10, 10));
    }

    #[test]
    #[should_panic(expected = "panes")]
    fn permanently_cold_window_is_rejected() {
        // resolution 3 caps the pane window below the warm threshold: the
        // operator could never emit a frame. Construction must say so.
        StreamingAsap::new(StreamingConfig::new(100, 3, 1));
    }

    #[test]
    fn forced_refresh_before_any_data_errors_cleanly() {
        let mut op = StreamingAsap::new(StreamingConfig::new(1_000, 100, 100));
        assert!(!op.is_warm());
        // Nothing ingested: the window holds no panes, and a forced
        // refresh reports Empty rather than emitting a frame with an
        // empty smoothed series and NaN kurtosis.
        let err = op.refresh().unwrap_err();
        assert!(matches!(err, TimeSeriesError::Empty));
        assert_eq!(op.searches_run(), 0, "no search ran on an empty window");
    }

    #[test]
    fn window_not_yet_warm_suppresses_interval_frames() {
        // Pane size is 10 (1000 points / 100 pixels); with refresh every
        // point, no frame may fire until 4 panes (40 points) exist.
        let mut op = StreamingAsap::new(StreamingConfig::new(1_000, 100, 1));
        let mut first_frame_at = None;
        for i in 0..100usize {
            if op.push(i as f64).unwrap().is_some() && first_frame_at.is_none() {
                first_frame_at = Some(i + 1);
            }
        }
        assert_eq!(
            first_frame_at,
            Some(40),
            "first frame exactly when the fourth pane completes"
        );
    }

    #[test]
    fn refresh_interval_one_fires_every_point_once_warm() {
        let mut op = StreamingAsap::new(StreamingConfig::new(1_000, 100, 1));
        let mut frames = 0u64;
        for &v in &stream_data(200, 50) {
            if op.push(v).unwrap().is_some() {
                frames += 1;
            }
        }
        // 200 points, warm from point 40 onward: one frame per push.
        assert_eq!(frames, 200 - 39);
        assert_eq!(op.searches_run(), frames);
    }

    #[test]
    fn forced_refresh_with_few_panes_still_emits() {
        // 3 panes is below the warm threshold for *automatic* frames, but
        // an explicit end-of-stream refresh with ≥1 pane must not panic —
        // it either smooths what exists or reports a clean error.
        let mut op = StreamingAsap::new(StreamingConfig::new(1_000, 100, 1_000_000));
        for i in 0..30 {
            op.push(i as f64).unwrap(); // 3 full panes of 10
        }
        assert!(!op.is_warm());
        match op.refresh() {
            Ok(frame) => assert!(frame.smoothed.len() <= 3),
            Err(e) => assert!(matches!(
                e,
                TimeSeriesError::Empty | TimeSeriesError::TooShort { .. }
            )),
        }
    }

    #[test]
    fn multi_series_driver_serves_many_keys_deterministically() {
        let mut multi = MultiStreamingAsap::new(StreamingConfig::new(2_000, 100, 100_000));
        let keys = ["zeta", "alpha", "mid"];
        for i in 0..2_000usize {
            for (k, key) in keys.iter().enumerate() {
                multi
                    .push_with(*key, 1.0 + (i as f64 / (30.0 * (k + 1) as f64)).sin(), |s| {
                        s.to_string()
                    })
                    .unwrap();
            }
        }
        assert_eq!(multi.len(), 3);
        assert_eq!(multi.total_points(), 6_000);
        let listed: Vec<&String> = multi.keys().collect();
        assert_eq!(listed, ["alpha", "mid", "zeta"], "key order, not insertion");
        let frames = multi.refresh_all();
        assert_eq!(frames.len(), 3);
        let order: Vec<&str> = frames.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(order, ["alpha", "mid", "zeta"]);
        assert!(multi.total_searches() >= 3);
        assert!(multi.operator("alpha").unwrap().is_warm());
        assert!(multi.operator("ghost").is_none());
    }

    #[test]
    fn multi_series_driver_skips_cold_keys_on_refresh_all() {
        let mut multi: MultiStreamingAsap<String> =
            MultiStreamingAsap::new(StreamingConfig::new(1_000, 100, 100_000));
        for i in 0..1_000usize {
            multi.push(&"warm".to_string(), (i as f64 / 25.0).sin()).unwrap();
        }
        for i in 0..5usize {
            multi.push(&"cold".to_string(), i as f64).unwrap();
        }
        let frames = multi.refresh_all();
        assert_eq!(frames.len(), 1, "cold key skipped, not errored");
        assert_eq!(frames[0].0, "warm");
    }

    #[test]
    fn multi_series_driver_remove_retires_counters() {
        // Regression for the long-running-server leak: without remove(),
        // operators for churned series lived forever. Removal must both
        // free the key and keep the cumulative totals monotonic.
        let mut multi = MultiStreamingAsap::new(StreamingConfig::new(1_000, 100, 100));
        for i in 0..500usize {
            for key in ["keep", "churn"] {
                multi.push_with(key, (i as f64 / 25.0).sin(), |s| s.to_string()).unwrap();
            }
        }
        let points_before = multi.total_points();
        let searches_before = multi.total_searches();
        assert_eq!(points_before, 1_000);
        assert!(searches_before > 0);

        let removed = multi.remove("churn").expect("tracked key");
        assert_eq!(removed.points_ingested(), 500);
        assert_eq!(multi.len(), 1);
        assert!(multi.operator("churn").is_none());
        // Counter consistency: totals unchanged by eviction.
        assert_eq!(multi.total_points(), points_before);
        assert_eq!(multi.total_searches(), searches_before);
        assert!(multi.remove("churn").is_none(), "second remove is a no-op");
        assert_eq!(multi.total_points(), points_before);

        // Re-ingesting the key starts a fresh, cold operator; totals keep
        // growing from where they were instead of double-counting.
        multi.push_with("churn", 1.0, |s| s.to_string()).unwrap();
        assert!(!multi.operator("churn").unwrap().is_warm());
        assert_eq!(multi.operator("churn").unwrap().points_ingested(), 1);
        assert_eq!(multi.total_points(), points_before + 1);
    }

    #[test]
    fn multi_series_driver_retain_evicts_in_bulk() {
        let mut multi = MultiStreamingAsap::new(StreamingConfig::new(1_000, 100, 100));
        for key in ["a", "b", "c", "d"] {
            for i in 0..100usize {
                multi.push_with(key, i as f64, |s| s.to_string()).unwrap();
            }
        }
        let total = multi.total_points();
        let evicted = multi.retain(|key, op| {
            assert_eq!(op.points_ingested(), 100);
            key.as_str() < "c"
        });
        assert_eq!(evicted, 2);
        assert_eq!(multi.len(), 2);
        let listed: Vec<&String> = multi.keys().collect();
        assert_eq!(listed, ["a", "b"]);
        assert_eq!(multi.total_points(), total, "retained totals stay monotonic");
        assert_eq!(multi.retain(|_, _| true), 0, "keep-all retain evicts nothing");
    }

    #[test]
    fn multi_series_driver_isolates_bad_points() {
        let mut multi: MultiStreamingAsap<String> =
            MultiStreamingAsap::new(StreamingConfig::new(100, 10, 10));
        multi.push(&"ok".to_string(), 1.0).unwrap();
        assert!(multi.push(&"bad".to_string(), f64::NAN).is_err());
        // Both keys keep working afterwards.
        assert!(multi.push(&"ok".to_string(), 2.0).unwrap().is_none());
        assert!(multi.push(&"bad".to_string(), 2.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn multi_series_driver_validates_template_eagerly() {
        let _ = MultiStreamingAsap::<String>::new(StreamingConfig::new(100, 0, 10));
    }

    #[test]
    fn non_finite_point_is_rejected_and_stream_survives() {
        let mut op = StreamingAsap::new(StreamingConfig::new(100, 10, 10));
        for i in 0..5 {
            op.push(i as f64).unwrap();
        }
        let err = op.push(f64::NAN).unwrap_err();
        assert!(matches!(err, TimeSeriesError::NonFinite { index: 5 }));
        // The bad point was not ingested; the stream keeps working.
        assert_eq!(op.points_ingested(), 5);
        for i in 5..20 {
            op.push(i as f64).unwrap();
        }
        assert_eq!(op.points_ingested(), 20);
    }
}
