//! The ASAP operator: automatic smoothing-parameter selection for time
//! series visualization (Rong & Bailis, VLDB 2017, §3–§4).
//!
//! Given a series `X` and a target resolution, ASAP finds the moving-average
//! window
//!
//! ```text
//! ŵ = argmin_w roughness(SMA(X, w))   s.t.   Kurt[SMA(X, w)] ≥ Kurt[X]
//! ```
//!
//! — the smoothest rendering that still preserves large-scale deviations —
//! and finds it fast through three optimizations:
//!
//! 1. **Autocorrelation pruning** (§4.3): only ACF peaks are candidate
//!    windows on periodic data, with lower-bound (Eq. 6) and
//!    roughness-estimate (Eq. 5) pruning; aperiodic data falls back to
//!    binary search (justified by the IID analysis of §4.2).
//! 2. **Pixel-aware preaggregation** (§4.4): the series is first reduced to
//!    one point per target pixel, bounding search cost by the display
//!    resolution rather than the data size.
//! 3. **On-demand streaming updates** (§4.5): in streaming mode the search
//!    re-runs only at human-perceptible refresh intervals, seeded with the
//!    previous answer (Algorithm 3).
//!
//! Entry points: [`Asap`] for one-shot batch smoothing,
//! [`streaming::StreamingAsap`] for streams, and [`search`] for the
//! individual strategies (exhaustive / grid / binary / ASAP) compared in
//! the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod alt_smoothers;
pub mod candidates;
pub mod fleet;
pub mod config;
pub mod devices;
pub mod estimate;
pub mod incremental;
pub mod metrics;
pub mod preagg;
pub mod problem;
pub mod pyramid;
pub mod search;
pub mod streaming;

pub use config::{AsapBuilder, AsapConfig};
pub use devices::{Device, DEVICES};
pub use preagg::{preaggregate, point_to_pixel_ratio};
pub use incremental::{SlidingMoments, SlidingRoughness};
pub use pyramid::ZoomPyramid;
pub use problem::{SearchOutcome, SmoothingResult};
pub use search::{binary, exhaustive, grid, SearchStrategy};
pub use alert::{Alert, AlertGate, DeviationAlerter, Direction};
pub use streaming::{Frame, MultiStreamingAsap, StreamingAsap, StreamingConfig, MIN_WARM_PANES};

use asap_timeseries::TimeSeriesError;

/// One-shot ASAP smoothing with a fixed configuration.
///
/// ```
/// use asap_core::Asap;
///
/// let noisy: Vec<f64> = (0..4000)
///     .map(|i| (i as f64 / 48.0 * std::f64::consts::TAU).sin()
///         + if i % 2 == 0 { 0.4 } else { -0.4 })
///     .collect();
/// let result = Asap::builder().resolution(800).build().smooth(&noisy).unwrap();
/// assert!(result.window >= 1);
/// ```
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct Asap {
    config: AsapConfig,
}

impl Asap {
    /// Starts building an ASAP instance.
    pub fn builder() -> AsapBuilder {
        AsapBuilder::default()
    }

    /// Creates an instance from an explicit configuration.
    pub fn with_config(config: AsapConfig) -> Self {
        Asap { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &AsapConfig {
        &self.config
    }

    /// Smooths `data` end-to-end: pixel-aware preaggregation, ASAP window
    /// search, and final SMA application.
    ///
    /// The returned [`SmoothingResult`] reports the chosen window in both
    /// preaggregated units (`window`) and raw-point units
    /// (`window_raw_points`).
    pub fn smooth(&self, data: &[f64]) -> Result<SmoothingResult, TimeSeriesError> {
        if data.is_empty() {
            return Err(TimeSeriesError::Empty);
        }
        asap_timeseries::validate_finite(data)?;
        let (aggregated, ratio) = if self.config.preaggregate {
            preagg::preaggregate(data, self.config.resolution)
        } else {
            (data.to_vec(), 1)
        };

        let outcome = search::asap::search(&aggregated, &self.config)?;
        let smoothed = if outcome.window <= 1 {
            aggregated.clone()
        } else {
            asap_timeseries::sma(&aggregated, outcome.window)?
        };
        Ok(SmoothingResult {
            window: outcome.window,
            window_raw_points: outcome.window * ratio,
            pixel_ratio: ratio,
            roughness: outcome.roughness,
            kurtosis: outcome.kurtosis,
            candidates_checked: outcome.candidates_checked,
            smoothed,
            aggregated,
        })
    }

    /// Re-renders a sub-range of the series — the zoom / scroll interaction
    /// of §2 ("when ASAP users change the range of time series to
    /// visualize, ASAP re-renders its output in accordance with the new
    /// range").
    ///
    /// Equivalent to `smooth(&data[range])`: the window search reruns on
    /// the new interval, because a high-quality window for one zoom level
    /// may over- or under-smooth another.
    pub fn smooth_range(
        &self,
        data: &[f64],
        range: std::ops::Range<usize>,
    ) -> Result<SmoothingResult, TimeSeriesError> {
        if range.start >= range.end || range.end > data.len() {
            return Err(TimeSeriesError::InvalidParameter {
                name: "range",
                message: "zoom range must be non-empty and within the series",
            });
        }
        self.smooth(&data[range])
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    fn periodic_noisy(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (std::f64::consts::TAU * i as f64 / period as f64).sin()
                    + 0.35 * if i % 2 == 0 { 1.0 } else { -1.0 }
            })
            .collect()
    }

    #[test]
    fn facade_smooths_and_reports_units() {
        let data = periodic_noisy(8000, 200);
        let res = Asap::builder().resolution(1000).build().smooth(&data).unwrap();
        assert_eq!(res.pixel_ratio, 8);
        assert_eq!(res.window_raw_points, res.window * 8);
        assert!(res.window > 1, "periodic noisy data should be smoothed");
        assert!(res.smoothed.len() <= 1001);
    }

    #[test]
    fn empty_input_errors() {
        assert!(Asap::default().smooth(&[]).is_err());
    }

    #[test]
    fn preaggregation_can_be_disabled() {
        let data = periodic_noisy(2000, 100);
        let res = Asap::builder()
            .resolution(100)
            .preaggregate(false)
            .build()
            .smooth(&data)
            .unwrap();
        assert_eq!(res.pixel_ratio, 1);
        assert_eq!(res.aggregated.len(), data.len());
    }

    #[test]
    fn short_series_is_left_alone() {
        let data = vec![1.0, 2.0, 1.5];
        let res = Asap::default().smooth(&data).unwrap();
        assert_eq!(res.window, 1);
        assert_eq!(res.smoothed, data);
    }

    #[test]
    fn non_finite_input_is_rejected_with_position() {
        let mut data = periodic_noisy(100, 10);
        data[42] = f64::NAN;
        assert!(matches!(
            Asap::default().smooth(&data),
            Err(TimeSeriesError::NonFinite { index: 42 })
        ));
        data[42] = f64::INFINITY;
        assert!(Asap::default().smooth(&data).is_err());
    }

    #[test]
    fn zooming_reruns_the_search_on_the_sub_range() {
        let data = periodic_noisy(8000, 200);
        let asap = Asap::builder().resolution(500).build();
        let full = asap.smooth(&data).unwrap();
        let zoomed = asap.smooth_range(&data, 0..2000).unwrap();
        // A quarter of the data at the same resolution: the pixel ratio
        // shrinks 4x, so the window (in raw points) adapts.
        assert_eq!(full.pixel_ratio, 16);
        assert_eq!(zoomed.pixel_ratio, 4);
        assert!(zoomed.smoothed.len() <= 501);
    }

    #[test]
    fn invalid_zoom_ranges_error() {
        let data = periodic_noisy(100, 10);
        let asap = Asap::default();
        assert!(asap.smooth_range(&data, 10..10).is_err());
        #[allow(clippy::reversed_empty_ranges)] // the error path under test
        {
            assert!(asap.smooth_range(&data, 50..20).is_err());
        }
        assert!(asap.smooth_range(&data, 0..101).is_err());
    }
}
