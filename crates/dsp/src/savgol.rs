//! Savitzky–Golay least-squares smoothing filters.
//!
//! Appendix B.2 of the paper compares SMA against Savitzky–Golay filters of
//! degree 1 (`SG1`) and degree 4 (`SG4`) under the same parameter-selection
//! criterion. A Savitzky–Golay filter replaces each point with the value at
//! the window center of the least-squares polynomial fit over the window;
//! the fit reduces to a fixed convolution kernel derived here from the
//! normal equations (no external linear-algebra dependency).

use crate::convolution::correlate_same_clipped;
use asap_timeseries::TimeSeriesError;

/// A Savitzky–Golay smoothing filter with a fixed window and polynomial
/// degree.
#[derive(Debug, Clone)]
pub struct SavitzkyGolay {
    window: usize,
    degree: usize,
    kernel: Vec<f64>,
}

impl SavitzkyGolay {
    /// Builds the filter for an odd `window ≥ degree + 2`.
    ///
    /// Degree 1 reproduces the simple moving average (a line fit's center
    /// value is the window mean); degree 4 matches the paper's `SG4`.
    pub fn new(window: usize, degree: usize) -> Result<Self, TimeSeriesError> {
        if window.is_multiple_of(2) || window < 3 {
            return Err(TimeSeriesError::InvalidParameter {
                name: "window",
                message: "Savitzky-Golay window must be odd and >= 3",
            });
        }
        if degree + 2 > window {
            return Err(TimeSeriesError::InvalidParameter {
                name: "degree",
                message: "window must be at least degree + 2",
            });
        }
        let kernel = savgol_kernel(window, degree);
        Ok(SavitzkyGolay {
            window,
            degree,
            kernel,
        })
    }

    /// Window length in points.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Polynomial degree of the local fit.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The convolution kernel (sums to 1).
    pub fn kernel(&self) -> &[f64] {
        &self.kernel
    }

    /// Applies the filter, returning a series of the same length (clipped,
    /// renormalized edges).
    pub fn smooth(&self, data: &[f64]) -> Vec<f64> {
        correlate_same_clipped(data, &self.kernel)
    }
}

/// Derives the Savitzky–Golay smoothing kernel for the window center by
/// solving the normal equations `(AᵀA) h = e₀` where `A[i][j] = iʲ` over
/// offsets `i ∈ [−m, m]`; the kernel is `c_i = Σ_j h_j iʲ`.
fn savgol_kernel(window: usize, degree: usize) -> Vec<f64> {
    let m = (window / 2) as isize;
    let p = degree + 1;

    // Normal matrix G[j][k] = Σ_i i^{j+k}.
    let mut g = vec![vec![0.0f64; p]; p];
    for (j, row) in g.iter_mut().enumerate() {
        for (k, cell) in row.iter_mut().enumerate() {
            let mut s = 0.0;
            for i in -m..=m {
                s += (i as f64).powi((j + k) as i32);
            }
            *cell = s;
        }
    }
    // Right-hand side e0 (evaluate fitted polynomial at offset 0).
    let mut rhs = vec![0.0f64; p];
    rhs[0] = 1.0;
    let h = solve_gaussian(&mut g, &mut rhs);

    (-m..=m)
        .map(|i| {
            let mut c = 0.0;
            let mut pow = 1.0;
            for &hj in &h {
                c += hj * pow;
                pow *= i as f64;
            }
            c
        })
        .collect()
}

/// Solves `G x = b` by Gaussian elimination with partial pivoting. `G` is
/// small (≤ 6×6 for the degrees used here), symmetric positive definite.
fn solve_gaussian(g: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for row in col + 1..n {
            if g[row][col].abs() > g[pivot][col].abs() {
                pivot = row;
            }
        }
        g.swap(col, pivot);
        b.swap(col, pivot);
        let diag = g[col][col];
        debug_assert!(diag.abs() > 1e-12, "singular normal matrix");
        for row in col + 1..n {
            let factor = g[row][col] / diag;
            // Indexing two rows of the same matrix; an iterator form would
            // need split_at_mut gymnastics for no clarity gain.
            #[allow(clippy::needless_range_loop)]
            for k in col..n {
                g[row][k] -= factor * g[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for k in col + 1..n {
            s -= g[col][k] * x[k];
        }
        x[col] = s / g[col][col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_one_kernel_is_uniform() {
        // A line fit's center value equals the window mean.
        let sg = SavitzkyGolay::new(5, 1).unwrap();
        for &c in sg.kernel() {
            assert!((c - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn kernel_sums_to_one() {
        for (w, d) in [(5usize, 2usize), (7, 2), (9, 4), (21, 4), (11, 3)] {
            let sg = SavitzkyGolay::new(w, d).unwrap();
            let sum: f64 = sg.kernel().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "w={w} d={d}: sum {sum}");
        }
    }

    #[test]
    fn quadratic_filter_reproduces_quadratics_exactly() {
        // SG of degree >= 2 leaves any quadratic signal unchanged (away from
        // the mirrored edges this is exact).
        let sg = SavitzkyGolay::new(9, 2).unwrap();
        let data: Vec<f64> = (0..50).map(|i| {
            let x = i as f64;
            0.5 * x * x - 3.0 * x + 2.0
        }).collect();
        let out = sg.smooth(&data);
        for i in 4..46 {
            assert!((out[i] - data[i]).abs() < 1e-7, "i={i}: {} vs {}", out[i], data[i]);
        }
    }

    #[test]
    fn known_quadratic_kernel_values() {
        // Classic SG(5, 2) kernel: (-3, 12, 17, 12, -3) / 35.
        let sg = SavitzkyGolay::new(5, 2).unwrap();
        let expected = [-3.0 / 35.0, 12.0 / 35.0, 17.0 / 35.0, 12.0 / 35.0, -3.0 / 35.0];
        for (a, e) in sg.kernel().iter().zip(expected) {
            assert!((a - e).abs() < 1e-9, "{a} vs {e}");
        }
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(SavitzkyGolay::new(4, 1).is_err()); // even window
        assert!(SavitzkyGolay::new(1, 0).is_err()); // too small
        assert!(SavitzkyGolay::new(5, 4).is_err()); // degree too high
    }

    #[test]
    fn smoothing_reduces_roughness_of_noisy_line() {
        let data: Vec<f64> = (0..300)
            .map(|i| i as f64 * 0.1 + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let sg = SavitzkyGolay::new(11, 1).unwrap();
        let out = sg.smooth(&data);
        let r0 = asap_timeseries::roughness(&data).unwrap();
        let r1 = asap_timeseries::roughness(&out).unwrap();
        assert!(r1 < r0 / 3.0);
    }

    #[test]
    fn higher_degree_tracks_signal_more_closely() {
        // SG4 follows curvature better (less smoothing) than SG1 at equal
        // window; the paper reports SG4 rougher than SG1 (Fig. B.2).
        let data: Vec<f64> = (0..400)
            .map(|i| (i as f64 * 0.2).sin() + 0.3 * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let sg1 = SavitzkyGolay::new(21, 1).unwrap().smooth(&data);
        let sg4 = SavitzkyGolay::new(21, 4).unwrap().smooth(&data);
        let r1 = asap_timeseries::roughness(&sg1).unwrap();
        let r4 = asap_timeseries::roughness(&sg4).unwrap();
        assert!(r4 > r1, "SG4 {r4} should be rougher than SG1 {r1}");
    }
}
