//! Direct convolution helpers used by the smoothing filters.

/// "Same"-mode correlation of `data` with `kernel`, mirroring edge handling:
/// at the boundaries the window is clipped and the kernel renormalized over
/// the in-range taps. Output has the same length as `data`.
///
/// This is the standard evaluation mode for smoothing filters applied to
/// plots: no phantom zeros are introduced at the edges, so the filtered
/// series does not dive toward zero at either end.
pub fn correlate_same_clipped(data: &[f64], kernel: &[f64]) -> Vec<f64> {
    let n = data.len();
    let k = kernel.len();
    if n == 0 || k == 0 {
        return vec![];
    }
    let half = k / 2;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut acc = 0.0;
        let mut weight = 0.0;
        for (j, &c) in kernel.iter().enumerate() {
            let idx = i as isize + j as isize - half as isize;
            if idx >= 0 && (idx as usize) < n {
                acc += c * data[idx as usize];
                weight += c;
            }
        }
        // Renormalize when the window is clipped (only valid for kernels
        // whose full weight is nonzero, which holds for smoothing kernels).
        if weight.abs() > f64::EPSILON {
            let full_weight: f64 = kernel.iter().sum();
            if (full_weight - weight).abs() > f64::EPSILON && weight != 0.0 {
                acc *= full_weight / weight;
            }
        }
        out.push(acc);
    }
    out
}

/// "Valid"-mode correlation: only positions where the kernel fully overlaps
/// the data. Output length is `data.len() − kernel.len() + 1`.
pub fn correlate_valid(data: &[f64], kernel: &[f64]) -> Vec<f64> {
    let n = data.len();
    let k = kernel.len();
    if k == 0 || n < k {
        return vec![];
    }
    data.windows(k)
        .map(|w| w.iter().zip(kernel).map(|(x, c)| x * c).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_mode_length() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let kernel = [0.5, 0.5];
        let out = correlate_valid(&data, &kernel);
        assert_eq!(out, vec![1.5, 2.5, 3.5, 4.5]);
    }

    #[test]
    fn same_mode_preserves_length() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let kernel = [1.0 / 3.0; 3];
        let out = correlate_same_clipped(&data, &kernel);
        assert_eq!(out.len(), 6);
        // Interior points are plain moving averages.
        assert!((out[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn clipped_edges_are_renormalized() {
        let data = [6.0, 6.0, 6.0, 6.0];
        let kernel = [1.0 / 3.0; 3];
        let out = correlate_same_clipped(&data, &kernel);
        // A constant series must stay constant even at edges.
        for v in out {
            assert!((v - 6.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_inputs_yield_empty() {
        assert!(correlate_valid(&[], &[1.0]).is_empty());
        assert!(correlate_valid(&[1.0], &[]).is_empty());
        assert!(correlate_same_clipped(&[], &[1.0]).is_empty());
        assert!(correlate_valid(&[1.0, 2.0], &[1.0, 1.0, 1.0]).is_empty());
    }

    #[test]
    fn identity_kernel_is_identity() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(correlate_same_clipped(&data, &[1.0]), data.to_vec());
        assert_eq!(correlate_valid(&data, &[1.0]), data.to_vec());
    }
}
