//! From-scratch iterative radix-2 FFT, kept as an independent test oracle.
//!
//! The production autocorrelation path ([`crate::acf`]) uses `rustfft`
//! (§4.3.3: "optimized FFT routines ... in the form of mature software
//! libraries"). This module provides a dependency-free Cooley–Tukey
//! implementation so the workspace can cross-check the dependency and so the
//! algorithmic content of the paper remains fully reproduced in-tree.

use std::f64::consts::PI;
use std::ops::{Add, Mul, Sub};

/// A minimal complex number (re, im) to keep this oracle dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cpx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cpx {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Cpx { re, im }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl Add for Cpx {
    type Output = Cpx;
    #[inline]
    fn add(self, o: Cpx) -> Cpx {
        Cpx::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Cpx {
    type Output = Cpx;
    #[inline]
    fn sub(self, o: Cpx) -> Cpx {
        Cpx::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Cpx {
    type Output = Cpx;
    #[inline]
    fn mul(self, o: Cpx) -> Cpx {
        Cpx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// Returns the smallest power of two ≥ `n`.
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `inverse` selects the inverse transform (conjugated twiddles); the inverse
/// is **unnormalized** — callers divide by the length, as is conventional.
///
/// # Panics
/// Panics if `buf.len()` is not a power of two.
pub fn fft_in_place(buf: &mut [Cpx], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "radix-2 FFT requires power-of-two length");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Cpx::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Cpx::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2] * w;
                buf[i + k] = u + v;
                buf[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
/// Returns the complex spectrum of length `next_power_of_two(data.len())`.
pub fn fft_real(data: &[f64]) -> Vec<Cpx> {
    let n = next_power_of_two(data.len().max(1));
    let mut buf = vec![Cpx::default(); n];
    for (b, &x) in buf.iter_mut().zip(data) {
        b.re = x;
    }
    fft_in_place(&mut buf, false);
    buf
}

/// Naive O(n²) DFT, the oracle's oracle for small sizes.
pub fn dft_naive(data: &[Cpx]) -> Vec<Cpx> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Cpx::default();
            for (t, &x) in data.iter().enumerate() {
                let ang = -2.0 * PI * (k * t) as f64 / n as f64;
                acc = acc + x * Cpx::new(ang.cos(), ang.sin());
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Cpx], b: &[Cpx], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        for n in [2usize, 4, 8, 64, 256] {
            let data: Vec<Cpx> = (0..n)
                .map(|i| Cpx::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let mut fast = data.clone();
            fft_in_place(&mut fast, false);
            let naive = dft_naive(&data);
            assert_close(&fast, &naive, 1e-8);
        }
    }

    #[test]
    fn forward_then_inverse_round_trips() {
        let n = 128;
        let data: Vec<Cpx> = (0..n).map(|i| Cpx::new(i as f64, -(i as f64) / 3.0)).collect();
        let mut buf = data.clone();
        fft_in_place(&mut buf, false);
        fft_in_place(&mut buf, true);
        for b in buf.iter_mut() {
            b.re /= n as f64;
            b.im /= n as f64;
        }
        assert_close(&buf, &data, 1e-9);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut buf = vec![Cpx::default(); 16];
        buf[0].re = 1.0;
        fft_in_place(&mut buf, false);
        for b in &buf {
            assert!((b.re - 1.0).abs() < 1e-12 && b.im.abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_concentrates_energy() {
        let n = 64usize;
        let data: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 5.0 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&data);
        // Energy should be at bins 5 and n−5 only.
        for (k, s) in spec.iter().enumerate() {
            let mag = s.norm_sq().sqrt();
            if k == 5 || k == n - 5 {
                assert!((mag - n as f64 / 2.0).abs() < 1e-9, "bin {k} mag {mag}");
            } else {
                assert!(mag < 1e-9, "leak at bin {k}: {mag}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        let mut buf = vec![Cpx::default(); 12];
        fft_in_place(&mut buf, false);
    }

    #[test]
    fn fft_real_zero_pads() {
        let spec = fft_real(&[1.0, 2.0, 3.0]); // padded to 4
        assert_eq!(spec.len(), 4);
        // DC bin equals the sum.
        assert!((spec[0].re - 6.0).abs() < 1e-12);
    }

    #[test]
    fn linearity_holds() {
        let n = 32;
        let a: Vec<Cpx> = (0..n).map(|i| Cpx::new((i as f64).sin(), 0.0)).collect();
        let b: Vec<Cpx> = (0..n).map(|i| Cpx::new(0.0, (i as f64).cos())).collect();
        let sum: Vec<Cpx> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        fft_in_place(&mut fa, false);
        fft_in_place(&mut fb, false);
        fft_in_place(&mut fs, false);
        let combined: Vec<Cpx> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert_close(&fs, &combined, 1e-9);
    }
}
