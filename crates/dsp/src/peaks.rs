//! Autocorrelation-peak detection — the candidate generator of §4.3.3.
//!
//! ASAP "only checks autocorrelation peaks, which are local maximums in the
//! autocorrelation function and correspond to periods in the time series."
//! This module mirrors the reference implementation: it scans the ACF for
//! rising→falling turning points above a correlation threshold, and — when
//! the data is aperiodic (at most one peak found) — falls back to returning
//! *all* lags, which downstream search treats with plain binary search
//! (§4.3.3 "ASAP falls back to binary search for aperiodic data").

use crate::acf::Acf;

/// Configuration for peak detection.
#[derive(Debug, Clone, Copy)]
pub struct PeakConfig {
    /// Minimum ACF value for a local maximum to count as a peak. The
    /// reference implementation uses 0.2.
    pub correlation_threshold: f64,
    /// If at most this many peaks are found, the series is treated as
    /// aperiodic and all lags `2..=max_lag` are returned instead.
    pub min_peaks: usize,
}

impl Default for PeakConfig {
    fn default() -> Self {
        PeakConfig {
            correlation_threshold: 0.2,
            // A single qualifying peak is already periodicity evidence: a
            // series whose only period fits the lag range once (e.g. two
            // weeks of daily data capped at n/10 lags) must still take the
            // period-aligned path, or the search would binary-probe past
            // the period. Fallback is reserved for series with no
            // above-threshold peak at all.
            min_peaks: 0,
        }
    }
}

/// Result of peak detection over an ACF.
#[derive(Debug, Clone)]
pub struct Peaks {
    /// Candidate lags, in increasing order.
    pub lags: Vec<usize>,
    /// The maximum ACF value among detected peaks (`maxACF` in Algorithm 1);
    /// 0 when the fallback produced the candidates.
    pub max_acf: f64,
    /// Whether the candidates are true ACF peaks (periodic data) or the
    /// aperiodic fallback (all lags).
    pub periodic: bool,
}

/// Finds candidate window lengths from an ACF.
///
/// Scans lags `1..=max_lag` for turning points (rising then falling) whose
/// value exceeds `config.correlation_threshold`, starting at lag 2 as the
/// smallest meaningful smoothing window. When at most `config.min_peaks`
/// peaks are found the data is declared aperiodic and every lag in
/// `2..=max_lag` becomes a candidate.
pub fn find_peaks(acf: &Acf, config: PeakConfig) -> Peaks {
    let c = acf.values();
    let mut lags: Vec<usize> = Vec::new();
    let mut max_acf = f64::NEG_INFINITY;

    if c.len() > 2 {
        let mut positive = c[1] > c[0];
        let mut max_idx = 1usize;
        for i in 2..c.len() {
            if !positive && c[i] > c[i - 1] {
                // valley -> start rising
                max_idx = i;
                positive = true;
            } else if positive && c[i] > c[max_idx] {
                max_idx = i;
            } else if positive && c[i] < c[i - 1] {
                // turning point: local maximum at max_idx
                if max_idx > 1 && c[max_idx] > config.correlation_threshold {
                    lags.push(max_idx);
                    max_acf = max_acf.max(c[max_idx]);
                }
                positive = false;
            }
        }
    }

    if lags.len() <= config.min_peaks {
        // Aperiodic fallback: every candidate from 2 to max_lag. The
        // maximum ACF over those lags still powers the Eq. 6 lower bound,
        // as in the reference implementation.
        let lags: Vec<usize> = (2..c.len()).collect();
        let max_acf = lags
            .iter()
            .map(|&l| c[l])
            .fold(f64::NEG_INFINITY, f64::max);
        return Peaks {
            lags,
            max_acf,
            periodic: false,
        };
    }
    Peaks {
        lags,
        max_acf,
        periodic: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acf::autocorrelation;

    fn sine(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin())
            .collect()
    }

    #[test]
    fn sine_peaks_at_multiples_of_period() {
        let period = 32usize;
        let data = sine(640, period);
        let acf = autocorrelation(&data, 160).unwrap();
        let peaks = find_peaks(&acf, PeakConfig::default());
        assert!(peaks.periodic);
        // Peaks should be near 32, 64, 96, 128, 160.
        for (i, &lag) in peaks.lags.iter().enumerate() {
            let expected = (i + 1) * period;
            assert!(
                (lag as i64 - expected as i64).unsigned_abs() <= 1,
                "peak {i} at {lag}, expected ≈{expected}"
            );
        }
        assert!(peaks.max_acf > 0.9);
    }

    #[test]
    fn white_noise_like_series_falls_back_to_all_lags() {
        // Low-autocorrelation deterministic sequence (quadratic residues).
        let data: Vec<f64> = (0..500).map(|i| ((i * i * 7919) % 997) as f64).collect();
        let acf = autocorrelation(&data, 50).unwrap();
        let peaks = find_peaks(&acf, PeakConfig::default());
        assert!(!peaks.periodic);
        assert_eq!(peaks.lags, (2..=50).collect::<Vec<_>>());
        // Fallback still reports the best correlation over the lags so the
        // Eq. 6 lower bound stays sound.
        assert!(peaks.max_acf.is_finite());
        assert!(peaks.max_acf < 0.5, "noise should have low ACF: {}", peaks.max_acf);
    }

    #[test]
    fn threshold_filters_weak_peaks() {
        let period = 20usize;
        let data = sine(400, period);
        let acf = autocorrelation(&data, 100).unwrap();
        // Impossible threshold: no peak qualifies -> aperiodic fallback.
        let peaks = find_peaks(
            &acf,
            PeakConfig {
                correlation_threshold: 1.5,
                min_peaks: 1,
            },
        );
        assert!(!peaks.periodic);
    }

    #[test]
    fn lags_are_sorted_and_unique() {
        let data: Vec<f64> = (0..2000)
            .map(|i| {
                let t = i as f64;
                (2.0 * std::f64::consts::PI * t / 48.0).sin()
                    + 0.5 * (2.0 * std::f64::consts::PI * t / 336.0).sin()
            })
            .collect();
        let acf = autocorrelation(&data, 400).unwrap();
        let peaks = find_peaks(&acf, PeakConfig::default());
        for w in peaks.lags.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn peaks_never_include_lags_zero_or_one() {
        let data = sine(256, 8);
        let acf = autocorrelation(&data, 64).unwrap();
        let peaks = find_peaks(&acf, PeakConfig::default());
        assert!(peaks.lags.iter().all(|&l| l >= 2));
    }
}
