//! Min–max aggregation smoother (Figure B.2).
//!
//! Partitions the series into fixed windows and emits each window's minimum
//! and maximum in order of occurrence. "By definition, \[minmax\] produces
//! smoothed time series where consecutive points are maximized in distance
//! in the given window" (Appendix B.2) — the paper measures it ~38–316×
//! rougher than SMA, and it serves as the degenerate envelope-preserving
//! baseline.

use asap_timeseries::TimeSeriesError;

/// Applies min–max aggregation with the given window, emitting two points
/// (min and max, ordered by their position within the window) per window.
///
/// The trailing partial window, if any, is aggregated the same way.
pub fn minmax_aggregate(data: &[f64], window: usize) -> Result<Vec<f64>, TimeSeriesError> {
    if window == 0 {
        return Err(TimeSeriesError::InvalidParameter {
            name: "window",
            message: "minmax window must be at least 1",
        });
    }
    if data.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    let mut out = Vec::with_capacity(2 * data.len() / window + 2);
    for chunk in data.chunks(window) {
        let mut min_idx = 0usize;
        let mut max_idx = 0usize;
        for (i, &v) in chunk.iter().enumerate() {
            if v < chunk[min_idx] {
                min_idx = i;
            }
            if v > chunk[max_idx] {
                max_idx = i;
            }
        }
        if min_idx == max_idx {
            out.push(chunk[min_idx]); // constant window: single point
        } else if min_idx < max_idx {
            out.push(chunk[min_idx]);
            out.push(chunk[max_idx]);
        } else {
            out.push(chunk[max_idx]);
            out.push(chunk[min_idx]);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_min_and_max_per_window_in_order() {
        let data = [1.0, 5.0, 3.0, 2.0, 8.0, 0.0];
        // window [1,5,3]: min 1 @0, max 5 @1 -> [1,5]
        // window [2,8,0]: max 8 @1, min 0 @2 -> [8,0]
        let out = minmax_aggregate(&data, 3).unwrap();
        assert_eq!(out, vec![1.0, 5.0, 8.0, 0.0]);
    }

    #[test]
    fn constant_window_emits_single_point() {
        let out = minmax_aggregate(&[4.0, 4.0, 4.0, 1.0, 2.0, 3.0], 3).unwrap();
        assert_eq!(out, vec![4.0, 1.0, 3.0]);
    }

    #[test]
    fn preserves_global_extremes() {
        let data: Vec<f64> = (0..100)
            .map(|i| if i == 41 { 100.0 } else if i == 73 { -50.0 } else { (i as f64).sin() })
            .collect();
        let out = minmax_aggregate(&data, 10).unwrap();
        assert!(out.contains(&100.0));
        assert!(out.iter().any(|&v| v == -50.0));
    }

    #[test]
    fn partial_tail_window_is_aggregated() {
        // tail window [10, 9]: max 10 occurs before min 9
        let out = minmax_aggregate(&[1.0, 2.0, 3.0, 10.0, 9.0], 3).unwrap();
        assert_eq!(out, vec![1.0, 3.0, 10.0, 9.0]);
    }

    #[test]
    fn errors_on_degenerate_inputs() {
        assert!(minmax_aggregate(&[], 3).is_err());
        assert!(minmax_aggregate(&[1.0], 0).is_err());
    }

    #[test]
    fn is_rougher_than_sma_on_oscillating_data() {
        // The headline property from Fig. B.2.
        let data: Vec<f64> = (0..600)
            .map(|i| (i as f64 * 0.05).sin() + 0.8 * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let mm = minmax_aggregate(&data, 20).unwrap();
        let sma = asap_timeseries::sma(&data, 20).unwrap();
        let r_mm = asap_timeseries::roughness(&mm).unwrap();
        let r_sma = asap_timeseries::roughness(&sma).unwrap();
        assert!(r_mm > 5.0 * r_sma, "minmax {r_mm} vs sma {r_sma}");
    }
}
