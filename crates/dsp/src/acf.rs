//! Autocorrelation function (ACF) estimation — §4.3 of the paper.
//!
//! For a weakly stationary series, the lag-τ autocorrelation is
//! `ACF(X,τ) = cov(X_t, X_{t+τ}) / σ²`. ASAP uses the standard biased
//! sample estimator
//!
//! ```text
//! ACF(X,k) = Σ_{i=1}^{N−k} (xᵢ−x̄)(x_{i+k}−x̄) / Σ_{i=1}^{N} (xᵢ−x̄)²
//! ```
//!
//! computed for all lags at once in O(n log n) via the Wiener–Khinchin
//! theorem: FFT the mean-removed, zero-padded series, take the power
//! spectrum, inverse-FFT, and normalize by lag 0. A brute-force O(n²)
//! estimator is retained as the test oracle ([`acf_brute_force`]).

use asap_timeseries::TimeSeriesError;
use rustfft::{num_complex::Complex, FftPlanner};

/// Autocorrelation values for lags `0..=max_lag`, plus the series length the
/// estimate was computed from (needed by ASAP's roughness estimate, Eq. 5).
#[derive(Debug, Clone)]
pub struct Acf {
    values: Vec<f64>,
    series_len: usize,
}

impl Acf {
    /// ACF value at `lag`. Panics if `lag` exceeds the computed range.
    #[inline]
    pub fn at(&self, lag: usize) -> f64 {
        self.values[lag]
    }

    /// All computed values, index = lag. `values()[0] == 1.0`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Largest computed lag.
    pub fn max_lag(&self) -> usize {
        self.values.len() - 1
    }

    /// Length of the series the ACF was estimated from.
    pub fn series_len(&self) -> usize {
        self.series_len
    }
}

/// Computes the ACF of `data` for lags `0..=max_lag` using two FFTs.
///
/// Errors if the series has fewer than 2 points, zero variance, or if
/// `max_lag ≥ data.len()`.
pub fn autocorrelation(data: &[f64], max_lag: usize) -> Result<Acf, TimeSeriesError> {
    let n = data.len();
    if n < 2 {
        return Err(TimeSeriesError::TooShort {
            required: 2,
            actual: n,
        });
    }
    if max_lag >= n {
        return Err(TimeSeriesError::InvalidParameter {
            name: "max_lag",
            message: "max_lag must be smaller than the series length",
        });
    }

    let mean = data.iter().sum::<f64>() / n as f64;

    // Zero-pad to at least 2n so the circular autocorrelation of the padded
    // signal equals the linear autocorrelation of the original.
    let padded = (2 * n).next_power_of_two();
    let mut buf: Vec<Complex<f64>> = Vec::with_capacity(padded);
    buf.extend(data.iter().map(|&x| Complex::new(x - mean, 0.0)));
    buf.resize(padded, Complex::new(0.0, 0.0));

    let mut planner = FftPlanner::new();
    let fft = planner.plan_fft_forward(padded);
    let ifft = planner.plan_fft_inverse(padded);

    fft.process(&mut buf);
    for v in buf.iter_mut() {
        *v = Complex::new(v.norm_sqr(), 0.0);
    }
    ifft.process(&mut buf);

    let r0 = buf[0].re;
    if r0 <= 0.0 || !r0.is_finite() {
        return Err(TimeSeriesError::ZeroVariance);
    }
    let values: Vec<f64> = buf[..=max_lag].iter().map(|v| v.re / r0).collect();
    Ok(Acf {
        values,
        series_len: n,
    })
}

/// O(n²) reference ACF estimator (same biased normalization).
pub fn acf_brute_force(data: &[f64], max_lag: usize) -> Result<Acf, TimeSeriesError> {
    let n = data.len();
    if n < 2 {
        return Err(TimeSeriesError::TooShort {
            required: 2,
            actual: n,
        });
    }
    if max_lag >= n {
        return Err(TimeSeriesError::InvalidParameter {
            name: "max_lag",
            message: "max_lag must be smaller than the series length",
        });
    }
    let mean = data.iter().sum::<f64>() / n as f64;
    let denom: f64 = data.iter().map(|&x| (x - mean) * (x - mean)).sum();
    if denom <= 0.0 {
        return Err(TimeSeriesError::ZeroVariance);
    }
    let values = (0..=max_lag)
        .map(|k| {
            let num: f64 = (0..n - k)
                .map(|i| (data[i] - mean) * (data[i + k] - mean))
                .sum();
            num / denom
        })
        .collect();
    Ok(Acf {
        values,
        series_len: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_zero_is_one() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        let acf = autocorrelation(&data, 10).unwrap();
        assert!((acf.at(0) - 1.0).abs() < 1e-12);
        assert_eq!(acf.max_lag(), 10);
        assert_eq!(acf.series_len(), 100);
    }

    #[test]
    fn fft_matches_brute_force() {
        let data: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.21).sin() * 2.0 + (i as f64 * 0.037).cos() + 0.001 * i as f64)
            .collect();
        let fast = autocorrelation(&data, 120).unwrap();
        let slow = acf_brute_force(&data, 120).unwrap();
        for k in 0..=120 {
            assert!(
                (fast.at(k) - slow.at(k)).abs() < 1e-9,
                "lag {k}: {} vs {}",
                fast.at(k),
                slow.at(k)
            );
        }
    }

    #[test]
    fn periodic_signal_peaks_at_period() {
        let period = 25usize;
        let data: Vec<f64> = (0..1000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin())
            .collect();
        let acf = autocorrelation(&data, 100).unwrap();
        // The ACF should be (near-)maximal at the period and its multiples.
        assert!(acf.at(period) > 0.95, "acf at period {}", acf.at(period));
        assert!(acf.at(2 * period) > 0.9);
        // And strongly negative at the half-period.
        assert!(acf.at(period / 2) < -0.9);
    }

    #[test]
    fn alternating_series_is_anticorrelated_at_lag_one() {
        let data: Vec<f64> = (0..400).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let acf = autocorrelation(&data, 4).unwrap();
        assert!(acf.at(1) < -0.99);
        assert!(acf.at(2) > 0.98);
    }

    #[test]
    fn errors_on_degenerate_inputs() {
        assert!(autocorrelation(&[1.0], 0).is_err());
        assert!(autocorrelation(&[1.0, 2.0, 3.0], 3).is_err()); // max_lag >= n
        assert!(matches!(
            autocorrelation(&[5.0; 64], 10),
            Err(TimeSeriesError::ZeroVariance)
        ));
        assert!(matches!(
            acf_brute_force(&[5.0; 64], 10),
            Err(TimeSeriesError::ZeroVariance)
        ));
    }

    #[test]
    fn acf_is_bounded_by_one() {
        let data: Vec<f64> = (0..800)
            .map(|i| ((i * 7919) % 101) as f64) // pseudo-random but deterministic
            .collect();
        let acf = autocorrelation(&data, 200).unwrap();
        for (k, &v) in acf.values().iter().enumerate() {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v), "lag {k}: {v}");
        }
    }

    #[test]
    fn trend_series_has_slowly_decaying_acf() {
        let data: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let acf = autocorrelation(&data, 30).unwrap();
        // A pure trend decays slowly and monotonically over small lags.
        for k in 1..30 {
            assert!(acf.at(k) <= acf.at(k - 1) + 1e-12);
        }
        assert!(acf.at(1) > 0.98);
    }
}
