//! Signal-processing substrate for the ASAP reproduction.
//!
//! Section 4.3 of the paper prunes ASAP's window search using the series'
//! **autocorrelation function** (ACF), computed in O(n log n) with two FFTs,
//! and Appendix B.2 compares SMA against alternative smoothing functions.
//! This crate provides all of that machinery:
//!
//! * [`acf`] — the biased ACF estimator via FFT (production path, using
//!   `rustfft`) and via brute force (O(n²) test oracle);
//! * [`fft_ref`] — a from-scratch iterative radix-2 FFT kept as an
//!   independent oracle so correctness never rests on the dependency;
//! * [`peaks`] — autocorrelation peak detection (local maxima above a
//!   correlation threshold, falling back to all lags for aperiodic data),
//!   mirroring the reference ASAP implementation;
//! * [`savgol`] — Savitzky–Golay least-squares smoothing filters (SG1/SG4 in
//!   Figure B.2);
//! * [`fft_filter`] — FFT-low and FFT-dominant reconstruction smoothers
//!   (Figure B.2);
//! * [`minmax_filter`] — the min–max aggregation smoother (Figure B.2);
//! * [`convolution`] — direct convolution used by the filters;
//! * [`wavelet`] — Haar DWT and VisuShrink soft-threshold denoising (the
//!   §6 wavelet-transform alternative, added to the Figure B.2 sweep).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acf;
pub mod convolution;
pub mod fft_filter;
pub mod fft_ref;
pub mod minmax_filter;
pub mod peaks;
pub mod savgol;
pub mod wavelet;

pub use acf::{acf_brute_force, autocorrelation, Acf};
pub use peaks::{find_peaks, PeakConfig};
pub use savgol::SavitzkyGolay;
pub use wavelet::{denoise as wavelet_denoise, haar_forward, haar_inverse, HaarDecomposition};
