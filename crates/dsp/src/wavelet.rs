//! Haar discrete wavelet transform and wavelet-shrinkage denoising.
//!
//! The paper's related-work survey (§6) lists the wavelet transform
//! (Daubechies \[23\]) as a classic noise-reduction alternative to the
//! moving average. This module implements the standard pipeline —
//! multi-level Haar DWT, soft-thresholding of detail coefficients with the
//! VisuShrink universal threshold, inverse transform — so the Figure B.2
//! comparison can include a wavelet smoother under ASAP's selection
//! criterion.
//!
//! Inputs of arbitrary length are handled by edge-replication padding to
//! the next power of two; the output is truncated back. The unpadded
//! transform is orthonormal (`1/√2` analysis/synthesis weights), so energy
//! is preserved and perfect reconstruction holds to rounding error.

use asap_timeseries::TimeSeriesError;

/// A multi-level Haar decomposition of a (padded) series.
#[derive(Debug, Clone)]
pub struct HaarDecomposition {
    /// Approximation coefficients at the coarsest level.
    approx: Vec<f64>,
    /// Detail coefficients per level, finest first.
    details: Vec<Vec<f64>>,
    /// Original (pre-padding) length.
    n: usize,
}

impl HaarDecomposition {
    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.details.len()
    }

    /// Detail coefficients at `level` (0 = finest).
    pub fn detail(&self, level: usize) -> &[f64] {
        &self.details[level]
    }

    /// Coarsest-level approximation coefficients.
    pub fn approx(&self) -> &[f64] {
        &self.approx
    }
}

/// Maximum number of Haar levels for a series of length `n` (padded).
pub fn max_levels(n: usize) -> usize {
    if n < 2 {
        0
    } else {
        (n.next_power_of_two()).trailing_zeros() as usize
    }
}

/// Forward multi-level Haar DWT with edge-replication padding.
///
/// # Errors
///
/// Fails on series shorter than 2 points or `levels == 0`; `levels` beyond
/// the padded depth is clamped.
pub fn haar_forward(data: &[f64], levels: usize) -> Result<HaarDecomposition, TimeSeriesError> {
    if data.len() < 2 {
        return Err(TimeSeriesError::TooShort {
            required: 2,
            actual: data.len(),
        });
    }
    if levels == 0 {
        return Err(TimeSeriesError::InvalidParameter {
            name: "levels",
            message: "must decompose at least one level",
        });
    }
    let n = data.len();
    let padded_len = n.next_power_of_two();
    let mut approx: Vec<f64> = Vec::with_capacity(padded_len);
    approx.extend_from_slice(data);
    approx.resize(padded_len, *data.last().expect("non-empty"));

    let levels = levels.min(max_levels(n));
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    let mut details = Vec::with_capacity(levels);
    for _ in 0..levels {
        let half = approx.len() / 2;
        let mut next = Vec::with_capacity(half);
        let mut det = Vec::with_capacity(half);
        for i in 0..half {
            let (a, b) = (approx[2 * i], approx[2 * i + 1]);
            next.push((a + b) * inv_sqrt2);
            det.push((a - b) * inv_sqrt2);
        }
        details.push(det);
        approx = next;
    }
    Ok(HaarDecomposition { approx, details, n })
}

/// Inverse multi-level Haar DWT; returns the original-length series.
pub fn haar_inverse(dec: &HaarDecomposition) -> Vec<f64> {
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    let mut approx = dec.approx.clone();
    for det in dec.details.iter().rev() {
        debug_assert_eq!(approx.len(), det.len());
        let mut next = Vec::with_capacity(approx.len() * 2);
        for (a, d) in approx.iter().zip(det) {
            next.push((a + d) * inv_sqrt2);
            next.push((a - d) * inv_sqrt2);
        }
        approx = next;
    }
    approx.truncate(dec.n);
    approx
}

/// Soft-thresholds a coefficient: shrink toward zero by `t`, clip to zero
/// inside `[-t, t]`.
fn soft(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

/// Estimates the noise scale σ from the finest detail coefficients via the
/// median absolute deviation (MAD / 0.6745, the standard robust estimator).
pub fn noise_sigma(dec: &HaarDecomposition) -> f64 {
    let finest = &dec.details[0];
    if finest.is_empty() {
        return 0.0;
    }
    let mut mags: Vec<f64> = finest.iter().map(|d| d.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).expect("finite coefficients"));
    let mid = mags.len() / 2;
    let median = if mags.len().is_multiple_of(2) {
        (mags[mid - 1] + mags[mid]) / 2.0
    } else {
        mags[mid]
    };
    median / 0.6745
}

/// Wavelet-shrinkage denoising: Haar DWT to `levels`, soft-threshold every
/// detail coefficient at `threshold_scale ×` the VisuShrink universal
/// threshold `σ √(2 ln n)`, inverse DWT.
///
/// `threshold_scale = 1.0` is the textbook setting; larger values smooth
/// harder (the parameter ASAP's selection criterion sweeps).
pub fn denoise(
    data: &[f64],
    levels: usize,
    threshold_scale: f64,
) -> Result<Vec<f64>, TimeSeriesError> {
    if !threshold_scale.is_finite() || threshold_scale < 0.0 {
        return Err(TimeSeriesError::InvalidParameter {
            name: "threshold_scale",
            message: "must be finite and non-negative",
        });
    }
    let mut dec = haar_forward(data, levels)?;
    let sigma = noise_sigma(&dec);
    let t = threshold_scale * sigma * (2.0 * (data.len() as f64).ln()).sqrt();
    for det in &mut dec.details {
        for d in det.iter_mut() {
            *d = soft(*d, t);
        }
    }
    Ok(haar_inverse(&dec))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn perfect_reconstruction_power_of_two() {
        let data: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin() + i as f64 * 0.01).collect();
        for levels in 1..=6 {
            let dec = haar_forward(&data, levels).unwrap();
            assert_close(&haar_inverse(&dec), &data, 1e-12);
        }
    }

    #[test]
    fn perfect_reconstruction_arbitrary_length() {
        for n in [2usize, 3, 5, 17, 100, 1000] {
            let data: Vec<f64> = (0..n).map(|i| ((i * i) % 13) as f64 - 6.0).collect();
            let dec = haar_forward(&data, 4).unwrap();
            assert_close(&haar_inverse(&dec), &data, 1e-12);
        }
    }

    #[test]
    fn transform_is_orthonormal() {
        // Energy (sum of squares) is preserved for power-of-two input.
        let data: Vec<f64> = (0..128).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let dec = haar_forward(&data, 7).unwrap();
        let energy_in: f64 = data.iter().map(|x| x * x).sum();
        let energy_out: f64 = dec.approx().iter().map(|x| x * x).sum::<f64>()
            + (0..dec.levels())
                .map(|l| dec.detail(l).iter().map(|x| x * x).sum::<f64>())
                .sum::<f64>();
        assert!((energy_in - energy_out).abs() < 1e-9 * energy_in);
    }

    #[test]
    fn levels_clamped_to_depth() {
        let data = vec![1.0; 16];
        let dec = haar_forward(&data, 100).unwrap();
        assert_eq!(dec.levels(), 4);
        assert_eq!(dec.approx().len(), 1);
    }

    #[test]
    fn invalid_inputs_error() {
        assert!(haar_forward(&[1.0], 1).is_err());
        assert!(haar_forward(&[1.0, 2.0], 0).is_err());
        assert!(denoise(&[1.0, 2.0, 3.0, 4.0], 2, -1.0).is_err());
        assert!(denoise(&[1.0, 2.0, 3.0, 4.0], 2, f64::NAN).is_err());
    }

    #[test]
    fn constant_series_has_zero_details() {
        let dec = haar_forward(&[5.0; 32], 5).unwrap();
        for l in 0..dec.levels() {
            assert!(dec.detail(l).iter().all(|&d| d.abs() < 1e-12));
        }
        assert!((dec.approx()[0] - 5.0 * 32f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn noise_sigma_tracks_noise_amplitude() {
        // Deterministic pseudo-noise around zero.
        let noisy: Vec<f64> = (0..1024)
            .map(|i| 0.5 * ((((i as u64) * 2654435761) % 1000) as f64 / 1000.0 - 0.5))
            .collect();
        let dec = haar_forward(&noisy, 5).unwrap();
        let sigma = noise_sigma(&dec);
        assert!(sigma > 0.05 && sigma < 0.5, "sigma {sigma}");
    }

    #[test]
    fn denoise_reduces_roughness_but_keeps_trend() {
        let clean: Vec<f64> = (0..512).map(|i| (i as f64 / 80.0).sin() * 3.0).collect();
        let noisy: Vec<f64> = clean
            .iter()
            .enumerate()
            .map(|(i, &v)| v + 0.4 * ((((i as u64) * 1103515245) % 997) as f64 / 997.0 - 0.5))
            .collect();
        let den = denoise(&noisy, 4, 1.5).unwrap();
        let rough_noisy = asap_timeseries::roughness(&noisy).unwrap();
        let rough_den = asap_timeseries::roughness(&den).unwrap();
        assert!(
            rough_den < 0.6 * rough_noisy,
            "denoised {rough_den} vs noisy {rough_noisy}"
        );
        // Trend preserved: RMS error to the clean signal stays small.
        let rmse: f64 = (den
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / clean.len() as f64)
            .sqrt();
        assert!(rmse < 0.4, "rmse {rmse}");
    }

    #[test]
    fn zero_scale_is_identity() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).cos()).collect();
        let out = denoise(&data, 3, 0.0).unwrap();
        for (a, b) in out.iter().zip(&data) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn soft_threshold_shape() {
        assert_eq!(soft(3.0, 1.0), 2.0);
        assert_eq!(soft(-3.0, 1.0), -2.0);
        assert_eq!(soft(0.5, 1.0), 0.0);
        assert_eq!(soft(-0.5, 1.0), 0.0);
        assert_eq!(soft(1.0, 1.0), 0.0);
    }
}
