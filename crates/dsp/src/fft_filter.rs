//! FFT-based reconstruction smoothers (Figure B.2).
//!
//! Appendix B.2 compares SMA against reconstructing the signal from a subset
//! of its Fourier components, selected in two ways:
//!
//! * **FFT-low** — keep the `k` *lowest-frequency* components (a low-pass
//!   brick wall). Tends to produce very smooth reconstructions.
//! * **FFT-dominant** — keep the `k` components of *largest power*,
//!   regardless of frequency. The paper finds this yields very rough plots
//!   ("tend to keep the dominant high frequencies"), ~50–315× rougher than
//!   SMA on the study datasets.

use asap_timeseries::TimeSeriesError;
use rustfft::{num_complex::Complex, FftPlanner};

/// Which Fourier components to retain during reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentSelection {
    /// Keep the `k` lowest-frequency component pairs (plus DC).
    Lowest,
    /// Keep the `k` component pairs of largest power (plus DC).
    Dominant,
}

/// Reconstructs `data` from `k` of its Fourier component pairs.
///
/// The DC (mean) component is always kept. Conjugate-symmetric bins are
/// retained together so the reconstruction stays real. Output length equals
/// the input length.
pub fn fft_reconstruct(
    data: &[f64],
    k: usize,
    selection: ComponentSelection,
) -> Result<Vec<f64>, TimeSeriesError> {
    let n = data.len();
    if n < 2 {
        return Err(TimeSeriesError::TooShort {
            required: 2,
            actual: n,
        });
    }
    if k == 0 {
        return Err(TimeSeriesError::InvalidParameter {
            name: "k",
            message: "must retain at least one component",
        });
    }

    let mut planner = FftPlanner::new();
    let fft = planner.plan_fft_forward(n);
    let ifft = planner.plan_fft_inverse(n);

    let mut buf: Vec<Complex<f64>> = data.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft.process(&mut buf);

    // Frequencies 1..=n/2 index the unique component pairs.
    let half = n / 2;
    let kept: Vec<usize> = match selection {
        ComponentSelection::Lowest => (1..=half.min(k)).collect(),
        ComponentSelection::Dominant => {
            let mut freqs: Vec<usize> = (1..=half).collect();
            freqs.sort_by(|&a, &b| {
                buf[b]
                    .norm_sqr()
                    .partial_cmp(&buf[a].norm_sqr())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            freqs.truncate(k);
            freqs
        }
    };

    let mut mask = vec![false; n];
    mask[0] = true; // DC
    for &f in &kept {
        mask[f] = true;
        mask[n - f] = true; // conjugate bin (f == n-f at Nyquist for even n)
    }
    for (i, v) in buf.iter_mut().enumerate() {
        if !mask[i] {
            *v = Complex::new(0.0, 0.0);
        }
    }

    ifft.process(&mut buf);
    let inv = 1.0 / n as f64;
    Ok(buf.into_iter().map(|c| c.re * inv).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_timeseries::roughness;

    fn composite(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                (2.0 * std::f64::consts::PI * t / 100.0).sin()
                    + 0.2 * (2.0 * std::f64::consts::PI * t / 7.0).sin()
            })
            .collect()
    }

    #[test]
    fn keeping_all_components_reconstructs_exactly() {
        let data = composite(128);
        let out = fft_reconstruct(&data, 64, ComponentSelection::Lowest).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn low_pass_removes_high_frequency_ripple() {
        let data = composite(1000);
        // Period-100 wave is frequency bin 10; keep bins 1..=12 -> ripple
        // (bin ~143) removed.
        let out = fft_reconstruct(&data, 12, ComponentSelection::Lowest).unwrap();
        let r_in = roughness(&data).unwrap();
        let r_out = roughness(&out).unwrap();
        assert!(r_out < r_in / 2.0, "{r_in} -> {r_out}");
    }

    #[test]
    fn dominant_keeps_strongest_bin_first() {
        let data = composite(1000);
        let out = fft_reconstruct(&data, 1, ComponentSelection::Dominant).unwrap();
        // The strongest component is the period-100 sine (amplitude 1.0);
        // the reconstruction should correlate with it strongly.
        let reference: Vec<f64> = (0..1000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 100.0).sin())
            .collect();
        let dot: f64 = out.iter().zip(&reference).map(|(a, b)| a * b).sum();
        let norm: f64 = reference.iter().map(|x| x * x).sum();
        assert!((dot / norm - 1.0).abs() < 0.05, "projection {}", dot / norm);
    }

    #[test]
    fn dominant_on_noisy_data_is_rougher_than_low() {
        // High-frequency spikes dominate the spectrum -> FFT-dominant keeps
        // them (rough), FFT-low discards them (smooth). Matches Fig. B.2.
        let data: Vec<f64> = (0..512)
            .map(|i| {
                let t = i as f64;
                (2.0 * std::f64::consts::PI * t / 256.0).sin()
                    + 2.0 * if i % 2 == 0 { 1.0 } else { -1.0 }
            })
            .collect();
        let low = fft_reconstruct(&data, 3, ComponentSelection::Lowest).unwrap();
        let dom = fft_reconstruct(&data, 3, ComponentSelection::Dominant).unwrap();
        assert!(roughness(&dom).unwrap() > 10.0 * roughness(&low).unwrap());
    }

    #[test]
    fn mean_is_always_preserved() {
        let data: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37).sin() + 5.0).collect();
        let out = fft_reconstruct(&data, 2, ComponentSelection::Lowest).unwrap();
        let mean_in = data.iter().sum::<f64>() / 200.0;
        let mean_out = out.iter().sum::<f64>() / 200.0;
        assert!((mean_in - mean_out).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(fft_reconstruct(&[1.0], 1, ComponentSelection::Lowest).is_err());
        assert!(fft_reconstruct(&[1.0, 2.0], 0, ComponentSelection::Lowest).is_err());
    }

    #[test]
    fn odd_length_round_trip() {
        let data = composite(101);
        let out = fft_reconstruct(&data, 50, ComponentSelection::Lowest).unwrap();
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
