//! The simulated user study (substitute for the paper's MTurk experiments).
//!
//! §5.1 measured 700 crowdworkers identifying a described anomaly in one of
//! five equal regions of a plot. We cannot rerun humans, so the benchmark
//! substitutes a **signal-detection observer** whose mechanism is the
//! paper's own hypothesis: *small-scale noise competes with large-scale
//! deviations for attention*.
//!
//! The model, given a [`Rendering`] (column levels + ink spread):
//!
//! 1. **Region evidence.** Columns are split into 5 regions. Each region's
//!    evidence is a robust measure of sustained deviation of its levels
//!    from the plot's global median (the 75th percentile of per-column
//!    |deviation|, so single noise spikes don't masquerade as sustained
//!    shifts).
//! 2. **Distraction.** The rendering's [`Rendering::distraction`] (level
//!    jitter + vertical ink) sets the softmax temperature: noisier plots
//!    make choices more random.
//! 3. **Choice.** The observer samples a region from
//!    `softmax(evidence / τ)`, `τ = τ₀ + τ₁ · distraction`.
//! 4. **Response time.** `T = T₀ + T₁ · H(p)/H_max + ε`, where `H` is the
//!    entropy of the choice distribution — uncertain viewers scan longer.
//!    This reproduces the paper's accuracy/time correlation.
//!
//! What transfers from the paper: the *orderings* (ASAP ≥ alternatives on
//! accuracy and ≤ on time; oversmoothing wins only on very-long-trend
//! data). What does not: absolute percentages, which are properties of the
//! constants below, not of human perception.

use crate::rendering::{render, Rendering, Technique};
use asap_data::DatasetInfo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of answer regions in the identification task.
pub const REGIONS: usize = 5;

/// Tunable constants of the observer model.
#[derive(Debug, Clone)]
pub struct ObserverModel {
    /// Base softmax temperature (attention floor).
    pub tau0: f64,
    /// Temperature added per unit of rendering distraction.
    pub tau1: f64,
    /// Base response time in seconds.
    pub t0: f64,
    /// Additional seconds at maximum choice entropy.
    pub t1: f64,
    /// Std-dev of response-time noise in seconds.
    pub t_noise: f64,
    /// Trials per (dataset, technique) cell; the paper averages ~50 workers
    /// per bar.
    pub trials: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for ObserverModel {
    fn default() -> Self {
        ObserverModel {
            tau0: 0.2,
            tau1: 0.08,
            t0: 6.0,
            t1: 28.0,
            t_noise: 2.0,
            trials: 50,
            seed: 0x0B5E,
        }
    }
}

/// Aggregated result of one (dataset, technique) cell.
#[derive(Debug, Clone)]
pub struct StudyResult {
    /// Fraction of trials identifying the correct region.
    pub accuracy: f64,
    /// Mean response time in seconds.
    pub response_time: f64,
    /// Standard error of the accuracy estimate.
    pub accuracy_se: f64,
}

/// Per-region evidence combining **sustained** deviation (the 75th
/// percentile of per-column saliency — a whole-region level shift) with
/// **peak** deviation (the region's maximum — a short notch or spike).
///
/// Column saliency is `|level − median level| + ½·spread`: a viewer
/// registers both where the line sits and how far its ink extends. The
/// peak term is what lets a human spot a 4-day dip in a year of raw data —
/// and it is also the distraction channel, because raw noise produces
/// extreme columns in *innocent* regions.
pub fn region_evidence(rendering: &Rendering) -> [f64; REGIONS] {
    let level = &rendering.level;
    let mut sorted = level.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];

    let saliency: Vec<f64> = level
        .iter()
        .zip(&rendering.spread)
        .map(|(v, s)| (v - median).abs() + 0.5 * s)
        .collect();

    let mut out = [0.0f64; REGIONS];
    let n = level.len();
    for (r, slot) in out.iter_mut().enumerate() {
        let start = r * n / REGIONS;
        let end = ((r + 1) * n / REGIONS).max(start + 1).min(n);
        let mut devs: Vec<f64> = saliency[start..end].to_vec();
        devs.sort_by(f64::total_cmp);
        let q75 = devs[((devs.len() * 3) / 4).min(devs.len() - 1)];
        let peak = devs[devs.len() - 1];
        *slot = 0.35 * q75 + 0.65 * peak;
    }
    out
}

fn softmax(evidence: &[f64; REGIONS], tau: f64) -> [f64; REGIONS] {
    let max = evidence.iter().cloned().fold(f64::MIN, f64::max);
    let mut exps = [0.0f64; REGIONS];
    let mut sum = 0.0;
    for (e, x) in exps.iter_mut().zip(evidence) {
        *e = ((x - max) / tau).exp();
        sum += *e;
    }
    for e in exps.iter_mut() {
        *e /= sum;
    }
    exps
}

fn entropy(p: &[f64; REGIONS]) -> f64 {
    -p.iter()
        .filter(|&&x| x > 0.0)
        .map(|&x| x * x.ln())
        .sum::<f64>()
}

impl ObserverModel {
    /// The observer's choice distribution over regions for a rendering.
    pub fn choice_distribution(&self, rendering: &Rendering) -> [f64; REGIONS] {
        let evidence = region_evidence(rendering);
        let tau = self.tau0 + self.tau1 * rendering.distraction();
        softmax(&evidence, tau)
    }

    /// Runs the identification task for one (dataset, technique) cell.
    ///
    /// Returns `None` when the dataset has no ground-truth anomaly region.
    pub fn run_cell(&self, dataset: &DatasetInfo, technique: Technique) -> Option<StudyResult> {
        let correct = dataset.anomaly_region_index(REGIONS)?;
        let series = dataset.generate();
        let rendering = render(technique, series.values(), 800).ok()?;
        Some(self.run_rendering(&rendering, correct, technique))
    }

    /// Runs the identification task on an explicit rendering with a known
    /// correct region (used by the sensitivity study).
    pub fn run_rendering(
        &self,
        rendering: &Rendering,
        correct_region: usize,
        technique: Technique,
    ) -> StudyResult {
        let p = self.choice_distribution(rendering);
        let h_norm = entropy(&p) / (REGIONS as f64).ln();
        // Derive the cell's RNG from the technique so adding techniques
        // doesn't perturb other cells.
        let mut rng = StdRng::seed_from_u64(self.seed ^ (technique.name().len() as u64) << 32
            ^ correct_region as u64
            ^ (p[correct_region].to_bits() >> 11));
        let mut hits = 0usize;
        let mut total_time = 0.0f64;
        for _ in 0..self.trials {
            // Sample the categorical choice.
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut choice = REGIONS - 1;
            for (r, &pr) in p.iter().enumerate() {
                acc += pr;
                if u < acc {
                    choice = r;
                    break;
                }
            }
            if choice == correct_region {
                hits += 1;
            }
            let noise: f64 = {
                // Box–Muller on two uniforms.
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                (-2.0 * u1.ln()).sqrt() * u2.cos()
            };
            total_time += (self.t0 + self.t1 * h_norm + self.t_noise * noise).max(1.0);
        }
        let accuracy = hits as f64 / self.trials as f64;
        StudyResult {
            accuracy,
            response_time: total_time / self.trials as f64,
            accuracy_se: (accuracy * (1.0 - accuracy) / self.trials as f64).sqrt(),
        }
    }

    /// The visual-preference task of Figure 7: the observer picks the
    /// technique whose rendering maximizes correct-region evidence relative
    /// to the competition, discounted by distraction. Returns the fraction
    /// of trials each technique was preferred, in `techniques` order.
    pub fn preference(
        &self,
        dataset: &DatasetInfo,
        techniques: &[Technique],
    ) -> Option<Vec<f64>> {
        let correct = dataset.anomaly_region_index(REGIONS)?;
        let series = dataset.generate();
        let quality: Vec<f64> = techniques
            .iter()
            .map(|&t| {
                let Ok(r) = render(t, series.values(), 800) else {
                    return f64::MIN;
                };
                let evidence = region_evidence(&r);
                let correct_ev = evidence[correct];
                let rest: f64 = evidence
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != correct)
                    .map(|(_, &e)| e)
                    .sum::<f64>()
                    / (REGIONS - 1) as f64;
                // Contrast of the true anomaly against the decoys, penalized
                // by visual noise.
                (correct_ev - rest) / (1.0 + r.distraction())
            })
            .collect();

        // Softmax choice over techniques, sampled per trial. The
        // temperature is calibrated so the winning technique draws a
        // 60–85% share, the band the paper reports.
        let tau = 0.3;
        let max = quality.iter().cloned().fold(f64::MIN, f64::max);
        let exps: Vec<f64> = quality.iter().map(|q| ((q - max) / tau).exp()).collect();
        let sum: f64 = exps.iter().sum();
        let probs: Vec<f64> = exps.iter().map(|e| e / sum).collect();

        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xF167);
        let mut counts = vec![0usize; techniques.len()];
        for _ in 0..self.trials {
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut pick = techniques.len() - 1;
            for (i, &p) in probs.iter().enumerate() {
                acc += p;
                if u < acc {
                    pick = i;
                    break;
                }
            }
            counts[pick] += 1;
        }
        Some(counts.iter().map(|&c| c as f64 / self.trials as f64).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_data::catalog;

    #[test]
    fn asap_beats_original_on_the_taxi_dataset() {
        // The paper's headline: +21.3% accuracy over raw data (Taxi-like
        // level-shift anomalies behind daily noise).
        let model = ObserverModel::default();
        let taxi = catalog::by_name("Taxi").unwrap();
        let asap = model.run_cell(&taxi, Technique::Asap).unwrap();
        let original = model.run_cell(&taxi, Technique::Original).unwrap();
        assert!(
            asap.accuracy > original.accuracy,
            "asap {} vs original {}",
            asap.accuracy,
            original.accuracy
        );
        assert!(
            asap.response_time < original.response_time + 1e-9,
            "asap {}s vs original {}s",
            asap.response_time,
            original.response_time
        );
    }

    #[test]
    fn accuracy_is_a_probability_with_sane_se() {
        let model = ObserverModel::default();
        let sine = catalog::by_name("Sine").unwrap();
        for t in Technique::figure6() {
            let r = model.run_cell(&sine, t).unwrap();
            assert!((0.0..=1.0).contains(&r.accuracy), "{}", t.name());
            assert!(r.accuracy_se < 0.08);
            assert!(r.response_time > 0.0);
        }
    }

    #[test]
    fn datasets_without_ground_truth_yield_none() {
        let ramp = catalog::by_name("ramp_traffic").unwrap();
        let model = ObserverModel::default();
        assert!(model.run_cell(&ramp, Technique::Asap).is_none());
    }

    #[test]
    fn results_are_deterministic_under_a_fixed_seed() {
        let model = ObserverModel::default();
        let taxi = catalog::by_name("Taxi").unwrap();
        let a = model.run_cell(&taxi, Technique::Asap).unwrap();
        let b = model.run_cell(&taxi, Technique::Asap).unwrap();
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.response_time, b.response_time);
    }

    #[test]
    fn preference_fractions_sum_to_one() {
        let model = ObserverModel::default();
        let power = catalog::by_name("Power").unwrap();
        let prefs = model
            .preference(&power, &Technique::figure7())
            .unwrap();
        let sum: f64 = prefs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(prefs.len(), 4);
    }

    #[test]
    fn a_clean_rendering_with_obvious_anomaly_is_identified() {
        // A synthetic rendering: flat everywhere except region 3.
        let mut level = vec![0.0f64; 800];
        for v in &mut level[480..640] {
            *v = 3.0;
        }
        let rendering = Rendering {
            level,
            spread: vec![0.0; 800],
        };
        let model = ObserverModel::default();
        let result = model.run_rendering(&rendering, 3, Technique::Asap);
        assert!(result.accuracy > 0.9, "accuracy {}", result.accuracy);
    }

    #[test]
    fn distraction_lowers_accuracy_on_the_same_signal() {
        let mut level = vec![0.0f64; 800];
        for v in &mut level[480..640] {
            *v = 2.0;
        }
        let clean = Rendering {
            level: level.clone(),
            spread: vec![0.0; 800],
        };
        // Same level signal, heavy ink spread everywhere (raw-plot noise).
        let noisy = Rendering {
            level,
            spread: vec![3.0; 800],
        };
        // The per-trial miss probability under distraction is ~1%, so at the
        // default 50 trials the outcome depends on the RNG stream. Use enough
        // trials that the statistical ordering is certain (P[tie] < 1e-6).
        let model = ObserverModel {
            trials: 5_000,
            ..ObserverModel::default()
        };
        let a = model.run_rendering(&clean, 3, Technique::Asap);
        let b = model.run_rendering(&noisy, 3, Technique::Original);
        assert!(
            a.accuracy > b.accuracy,
            "clean {} vs noisy {}",
            a.accuracy,
            b.accuracy
        );
        assert!(a.response_time < b.response_time);
    }
}
