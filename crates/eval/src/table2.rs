//! The batch comparison of Table 2: exhaustive vs ASAP per dataset at a
//! 1200-pixel target resolution.

use asap_core::{preaggregate, AsapConfig, SearchStrategy};
use asap_data::DatasetInfo;
use asap_timeseries::TimeSeriesError;

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Raw point count.
    pub n_points: usize,
    /// Exhaustive search's window (preaggregated units).
    pub exhaustive_window: usize,
    /// Exhaustive search's candidate count.
    pub exhaustive_candidates: usize,
    /// ASAP's window.
    pub asap_window: usize,
    /// ASAP's candidate count.
    pub asap_candidates: usize,
}

impl Table2Row {
    /// Whether ASAP found the same smoothing parameter as exhaustive
    /// search (the paper: true for all 11 datasets).
    pub fn windows_agree(&self) -> bool {
        self.exhaustive_window == self.asap_window
    }
}

/// Runs the Table 2 experiment for one dataset at `resolution` pixels.
pub fn run_dataset(info: &DatasetInfo, resolution: usize) -> Result<Table2Row, TimeSeriesError> {
    let series = info.generate();
    let (agg, _) = preaggregate(series.values(), resolution);
    let config = AsapConfig {
        resolution,
        ..AsapConfig::default()
    };
    let ex = SearchStrategy::Exhaustive.search(&agg, &config)?;
    let asap = SearchStrategy::Asap.search(&agg, &config)?;
    Ok(Table2Row {
        dataset: info.name,
        n_points: info.n_points,
        exhaustive_window: ex.window,
        exhaustive_candidates: ex.candidates_checked,
        asap_window: asap.window,
        asap_candidates: asap.candidates_checked,
    })
}

/// Runs Table 2 over a list of datasets.
pub fn run_all(datasets: &[DatasetInfo], resolution: usize) -> Vec<Table2Row> {
    datasets
        .iter()
        .filter_map(|d| run_dataset(d, resolution).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_data::catalog;

    #[test]
    fn taxi_asap_matches_exhaustive_with_fewer_candidates() {
        let taxi = catalog::by_name("Taxi").unwrap();
        let row = run_dataset(&taxi, 1200).unwrap();
        assert!(row.windows_agree(), "{row:?}");
        assert!(
            row.asap_candidates < row.exhaustive_candidates / 2,
            "{row:?}"
        );
        assert!(row.exhaustive_window > 1, "taxi should be smoothed: {row:?}");
    }

    #[test]
    fn twitter_is_left_unsmoothed() {
        // Table 2 / Figure C.1: "this time series is smooth except for a
        // few unusual peaks, so further smoothing would have averaged out
        // the peaks" — window 1 for both searches.
        let twitter = catalog::by_name("Twitter_AAPL").unwrap();
        let row = run_dataset(&twitter, 1200).unwrap();
        assert_eq!(row.exhaustive_window, 1, "{row:?}");
        assert_eq!(row.asap_window, 1, "{row:?}");
    }

    #[test]
    fn sine_window_aligns_with_its_period() {
        // 800 points at 1200px: no preaggregation; period 32. The chosen
        // window should be a multiple of the period (paper reports 64).
        let sine = catalog::by_name("Sine").unwrap();
        let row = run_dataset(&sine, 1200).unwrap();
        assert!(row.windows_agree(), "{row:?}");
        assert_eq!(
            row.exhaustive_window % 32,
            0,
            "window should align with the period: {row:?}"
        );
    }
}
