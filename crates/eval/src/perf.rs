//! Wall-clock measurement of the search strategies (Figures 8, 9, A.2,
//! A.3).
//!
//! The paper reports *relative* performance — speedups over exhaustive
//! search and roughness ratios — which transfer across hardware even
//! though absolute wall-clock numbers don't.

use asap_core::{preaggregate, AsapConfig, SearchOutcome, SearchStrategy};
use asap_timeseries::TimeSeriesError;
use std::time::{Duration, Instant};

/// One measured search run.
#[derive(Debug, Clone)]
pub struct MeasuredSearch {
    /// Strategy display name.
    pub strategy: String,
    /// Search outcome (window, roughness, candidates).
    pub outcome: SearchOutcome,
    /// Wall-clock time of the search itself.
    pub elapsed: Duration,
}

impl MeasuredSearch {
    /// Throughput in input points per second, charging the search cost to
    /// `n_raw` raw points.
    pub fn throughput(&self, n_raw: usize) -> f64 {
        n_raw as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Runs and times one strategy over an (already preaggregated) series.
pub fn measure(
    data: &[f64],
    strategy: SearchStrategy,
    config: &AsapConfig,
) -> Result<MeasuredSearch, TimeSeriesError> {
    let start = Instant::now();
    let outcome = strategy.search(data, config)?;
    let elapsed = start.elapsed();
    Ok(MeasuredSearch {
        strategy: strategy.name(),
        outcome,
        elapsed,
    })
}

/// A Figure 8-style comparison row: one strategy against the exhaustive
/// reference on the same data.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Strategy display name.
    pub strategy: String,
    /// `t_exhaustive / t_strategy` (higher is better).
    pub speedup: f64,
    /// `roughness_strategy / roughness_exhaustive` (1.0 is ideal; higher is
    /// worse).
    pub roughness_ratio: f64,
    /// Candidates the strategy evaluated.
    pub candidates: usize,
}

/// Compares the given strategies against exhaustive search over one raw
/// series at one target resolution (preaggregating first, as in §5.2.1
/// where "all algorithms run on preaggregated data").
pub fn compare_at_resolution(
    raw: &[f64],
    resolution: usize,
    strategies: &[SearchStrategy],
) -> Result<Vec<ComparisonRow>, TimeSeriesError> {
    let (agg, _) = preaggregate(raw, resolution);
    let config = AsapConfig {
        resolution,
        ..AsapConfig::default()
    };

    let reference = measure(&agg, SearchStrategy::Exhaustive, &config)?;
    let ref_time = reference.elapsed.as_secs_f64().max(1e-12);
    // Roughness ratios compare smoothed outputs; guard the zero case.
    let ref_rough = reference.outcome.roughness.max(1e-12);

    strategies
        .iter()
        .map(|&s| {
            let m = measure(&agg, s, &config)?;
            Ok(ComparisonRow {
                strategy: m.strategy.clone(),
                speedup: ref_time / m.elapsed.as_secs_f64().max(1e-12),
                roughness_ratio: m.outcome.roughness.max(1e-12) / ref_rough,
                candidates: m.outcome.candidates_checked,
            })
        })
        .collect()
}

/// Measures exhaustive search (or ASAP) **without** preaggregation — the
/// Figure 9 baseline. `budget` caps the wall-clock spent; when the search
/// would exceed it the measurement extrapolates from the candidates
/// evaluated so far (the paper itself reports the 1M-point exhaustive
/// baseline as "over an hour", i.e. extrapolated).
pub fn measure_raw_exhaustive_budgeted(
    raw: &[f64],
    config: &AsapConfig,
    budget: Duration,
) -> (Duration, bool) {
    use asap_timeseries::PrefixSum;
    let n = raw.len();
    let max_window = config.effective_max_window(n);
    let prefix = PrefixSum::new(raw);
    let start = Instant::now();
    let mut evaluated = 0usize;
    for w in 2..=max_window {
        // Same per-candidate work as the real evaluator: one O(N) pass.
        let mut value_m = asap_timeseries::Moments::new();
        let mut diff_m = asap_timeseries::Moments::new();
        let inv = 1.0 / w as f64;
        let mut prev = prefix.range_sum(0, w) * inv;
        value_m.push(prev);
        for i in 1..(n - w + 1) {
            let cur = prefix.range_sum(i, i + w) * inv;
            value_m.push(cur);
            diff_m.push(cur - prev);
            prev = cur;
        }
        std::hint::black_box((value_m.kurtosis(), diff_m.stddev()));
        evaluated += 1;
        if start.elapsed() > budget {
            let remaining = (max_window - 1 - evaluated) as f64;
            let per = start.elapsed().as_secs_f64() / evaluated as f64;
            return (
                Duration::from_secs_f64(start.elapsed().as_secs_f64() + per * remaining),
                true,
            );
        }
    }
    (start.elapsed(), false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (std::f64::consts::TAU * i as f64 / 480.0).sin()
                    + 0.3 * ((((i as u64) * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
            })
            .collect()
    }

    #[test]
    fn comparison_includes_requested_strategies() {
        let data = raw(24_000);
        let rows = compare_at_resolution(
            &data,
            1000,
            &[SearchStrategy::Asap, SearchStrategy::Binary],
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].strategy, "ASAP");
        assert!(rows[0].roughness_ratio > 0.0);
        assert!(rows[0].speedup > 0.0);
    }

    #[test]
    fn asap_checks_fewer_candidates_than_exhaustive_reference() {
        let data = raw(24_000);
        let rows =
            compare_at_resolution(&data, 1200, &[SearchStrategy::Asap]).unwrap();
        // Exhaustive at 1200px checks ~119 candidates; ASAP far fewer.
        assert!(rows[0].candidates < 60, "{}", rows[0].candidates);
    }

    #[test]
    fn budgeted_measurement_extrapolates_when_over_budget() {
        let data = raw(200_000);
        let config = AsapConfig::default();
        let (elapsed, extrapolated) =
            measure_raw_exhaustive_budgeted(&data, &config, Duration::from_millis(50));
        assert!(extrapolated);
        assert!(elapsed > Duration::from_millis(50));
    }

    #[test]
    fn budgeted_measurement_completes_small_inputs() {
        let data = raw(2_000);
        let config = AsapConfig::default();
        let (_, extrapolated) =
            measure_raw_exhaustive_budgeted(&data, &config, Duration::from_secs(10));
        assert!(!extrapolated);
    }

    #[test]
    fn throughput_scales_with_raw_size() {
        let m = MeasuredSearch {
            strategy: "x".into(),
            outcome: SearchOutcome {
                window: 1,
                roughness: 0.0,
                kurtosis: 3.0,
                candidates_checked: 0,
            },
            elapsed: Duration::from_millis(100),
        };
        assert!((m.throughput(1000) - 10_000.0).abs() < 1e-6);
        assert!((m.throughput(2000) - 20_000.0).abs() < 1e-6);
    }
}
