//! Sensitivity sweeps of Figure B.1: how the target roughness and the
//! kurtosis constraint affect the end-user study.
//!
//! * **Roughness variants**: plots with 8×/4×/2×/½× the roughness of the
//!   ASAP choice, produced by picking the window whose achieved roughness
//!   is closest to the target (ignoring the kurtosis constraint, as the
//!   study varies the target directly).
//! * **Kurtosis variants**: the ASAP search with the preservation bar
//!   scaled to 0.5× / 1.5× / 2× the original kurtosis.

use asap_core::{metrics::CandidateEvaluator, preaggregate, AsapConfig, SearchStrategy};
use asap_timeseries::TimeSeriesError;

/// Finds the window whose smoothed roughness is closest to `target`,
/// scanning all windows up to the config cap. Returns `(window, achieved
/// roughness)`.
pub fn window_for_target_roughness(
    data: &[f64],
    target: f64,
    config: &AsapConfig,
) -> Result<(usize, f64), TimeSeriesError> {
    let ev = CandidateEvaluator::new(data)?;
    let max_window = config.effective_max_window(data.len());
    let mut best = (1usize, ev.base().roughness);
    for w in 1..=max_window {
        let m = ev.evaluate(w)?;
        if (m.roughness - target).abs() < (best.1 - target).abs() {
            best = (w, m.roughness);
        }
    }
    Ok(best)
}

/// One sensitivity variant: a label and the smoothed series it produces.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Display label ("ASAP", "8x", "k0.5", ...).
    pub label: String,
    /// Window used.
    pub window: usize,
    /// The smoothed (preaggregated) series.
    pub smoothed: Vec<f64>,
}

/// Builds the Figure B.1 roughness ladder for one raw series: ASAP's choice
/// plus plots at the given multiples of its roughness.
pub fn roughness_variants(
    raw: &[f64],
    resolution: usize,
    multiples: &[f64],
) -> Result<Vec<Variant>, TimeSeriesError> {
    let (agg, _) = preaggregate(raw, resolution);
    let config = AsapConfig {
        resolution,
        ..AsapConfig::default()
    };
    let asap = SearchStrategy::Asap.search(&agg, &config)?;
    let reference = asap.roughness.max(1e-12);

    let mut out = vec![Variant {
        label: "ASAP".into(),
        window: asap.window,
        smoothed: smooth(&agg, asap.window)?,
    }];
    for &m in multiples {
        let (w, _) = window_for_target_roughness(&agg, reference * m, &config)?;
        out.push(Variant {
            label: format!("{m}x"),
            window: w,
            smoothed: smooth(&agg, w)?,
        });
    }
    Ok(out)
}

/// Builds the Figure B.1 kurtosis ladder: the ASAP search run with each
/// preservation factor.
pub fn kurtosis_variants(
    raw: &[f64],
    resolution: usize,
    factors: &[f64],
) -> Result<Vec<Variant>, TimeSeriesError> {
    let (agg, _) = preaggregate(raw, resolution);
    let mut out = Vec::with_capacity(factors.len());
    for &f in factors {
        let mut config = AsapConfig {
            resolution,
            ..AsapConfig::default()
        };
        config.kurtosis_factor = f;
        let r = SearchStrategy::Asap.search(&agg, &config)?;
        out.push(Variant {
            label: format!("k{f}"),
            window: r.window,
            smoothed: smooth(&agg, r.window)?,
        });
    }
    Ok(out)
}

fn smooth(data: &[f64], window: usize) -> Result<Vec<f64>, TimeSeriesError> {
    if window <= 1 {
        Ok(data.to_vec())
    } else {
        asap_timeseries::sma(data, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study_series() -> Vec<f64> {
        (0..3600)
            .map(|i| {
                (std::f64::consts::TAU * i as f64 / 48.0).sin()
                    + 0.4 * ((((i as u64) * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
                    + if (2600..2936).contains(&i) { -2.0 } else { 0.0 }
            })
            .collect()
    }

    #[test]
    fn target_roughness_search_moves_in_the_right_direction() {
        let data = study_series();
        let config = AsapConfig::default();
        let ev = CandidateEvaluator::new(&data).unwrap();
        let base = ev.base().roughness;
        let (w_rough, r_rough) = window_for_target_roughness(&data, base, &config).unwrap();
        let (w_smooth, r_smooth) =
            window_for_target_roughness(&data, base / 100.0, &config).unwrap();
        assert!(w_rough < w_smooth, "{w_rough} vs {w_smooth}");
        assert!(r_smooth < r_rough);
    }

    #[test]
    fn roughness_ladder_orders_windows() {
        let data = study_series();
        let variants = roughness_variants(&data, 1200, &[8.0, 4.0, 2.0, 0.5]).unwrap();
        assert_eq!(variants.len(), 5);
        assert_eq!(variants[0].label, "ASAP");
        // Rougher targets need smaller windows.
        let w8 = variants[1].window;
        let w2 = variants[3].window;
        assert!(w8 <= w2, "8x window {w8} should be <= 2x window {w2}");
    }

    #[test]
    fn kurtosis_factor_below_one_allows_more_smoothing() {
        let data = study_series();
        let variants = kurtosis_variants(&data, 1200, &[0.5, 1.0, 2.0]).unwrap();
        let w_half = variants[0].window;
        let w_two = variants[2].window;
        assert!(
            w_half >= w_two,
            "relaxed constraint window {w_half} should be >= strict {w_two}"
        );
    }
}
