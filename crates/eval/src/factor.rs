//! Factor analysis and lesion study (Figure 11).
//!
//! Figure 11 streams the machine-temp dataset and measures end-to-end
//! throughput while toggling ASAP's three optimizations:
//!
//! * **Pixel** — pixel-aware preaggregation (pane size = point-to-pixel
//!   ratio vs 1);
//! * **AC** — autocorrelation-pruned search (vs exhaustive search);
//! * **Lazy** — on-demand refresh once per day of data (288 points at
//!   5-minute cadence) vs refresh on every ingested (pane) arrival.
//!
//! The harness replays the series through the same pane/window machinery
//! streaming ASAP uses and charges every search to the wall clock. Slow
//! variants (the baseline is ~7 orders of magnitude slower) are measured
//! under a time budget and their throughput extrapolated from the work
//! completed, as the paper itself does for the "over an hour" baseline.

use asap_core::{point_to_pixel_ratio, AsapConfig, SearchStrategy};
use asap_stream::{PaneAggregator, RefreshClock, SlidingWindow};
use asap_timeseries::TimeSeries;
use std::time::{Duration, Instant};

/// One configuration of the factor/lesion grid.
#[derive(Debug, Clone, Copy)]
pub struct FactorVariant {
    /// Display name ("Baseline", "+Pixel", "no AC", ...).
    pub name: &'static str,
    /// Pixel-aware preaggregation enabled.
    pub pixel: bool,
    /// Autocorrelation-pruned search enabled.
    pub ac: bool,
    /// On-demand (lazy) refresh enabled.
    pub lazy: bool,
}

/// The cumulative factor-analysis ladder of Figure 11 (left).
pub const CUMULATIVE: [FactorVariant; 4] = [
    FactorVariant { name: "Baseline", pixel: false, ac: false, lazy: false },
    FactorVariant { name: "+Pixel", pixel: true, ac: false, lazy: false },
    FactorVariant { name: "+AC", pixel: true, ac: true, lazy: false },
    FactorVariant { name: "+Lazy", pixel: true, ac: true, lazy: true },
];

/// The lesion grid of Figure 11 (right): remove one optimization at a time.
pub const LESION: [FactorVariant; 4] = [
    FactorVariant { name: "no Pixel", pixel: false, ac: true, lazy: true },
    FactorVariant { name: "no AC", pixel: true, ac: false, lazy: true },
    FactorVariant { name: "no Lazy", pixel: true, ac: true, lazy: false },
    FactorVariant { name: "ASAP", pixel: true, ac: true, lazy: true },
];

/// Result of one streaming throughput measurement.
#[derive(Debug, Clone)]
pub struct FactorResult {
    /// Variant name.
    pub name: &'static str,
    /// Points per second (possibly extrapolated).
    pub throughput: f64,
    /// Whether the run hit the budget and was extrapolated.
    pub extrapolated: bool,
    /// Number of search invocations charged.
    pub searches: usize,
}

/// Streams `series` at the given display `resolution` under one variant and
/// measures throughput, spending at most `budget` of wall-clock time.
///
/// `lazy_interval_points` is the refresh cadence in raw points when `lazy`
/// is set (the paper uses one day = 288 machine-temp points); eager
/// variants refresh on every pane completion.
pub fn run_variant(
    series: &TimeSeries,
    resolution: usize,
    variant: FactorVariant,
    lazy_interval_points: usize,
    budget: Duration,
) -> FactorResult {
    let data = series.values();
    let n = data.len();
    let pane_size = if variant.pixel {
        point_to_pixel_ratio(n, resolution)
    } else {
        1
    };
    let capacity = n.div_ceil(pane_size).max(2);
    let strategy = if variant.ac {
        SearchStrategy::Asap
    } else {
        SearchStrategy::Exhaustive
    };
    let refresh_every = if variant.lazy {
        lazy_interval_points.max(1)
    } else {
        pane_size // one refresh per (pre)aggregated point
    };
    let config = AsapConfig {
        resolution,
        ..AsapConfig::default()
    };

    let mut panes = PaneAggregator::new(pane_size);
    let mut window = SlidingWindow::new(capacity);
    let mut clock = RefreshClock::new(refresh_every);
    let mut searches = 0usize;

    let start = Instant::now();
    let mut processed = 0usize;
    let mut extrapolated = false;
    for &v in data {
        if let Some(p) = panes.push(v) {
            window.push(p);
        }
        processed += 1;
        if clock.tick() && window.len() >= 8 {
            let view = window.pane_means();
            let _ = std::hint::black_box(strategy.search(&view, &config));
            searches += 1;
            if start.elapsed() > budget {
                extrapolated = true;
                break;
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    FactorResult {
        name: variant.name,
        throughput: processed as f64 / elapsed,
        extrapolated,
        searches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_series() -> TimeSeries {
        let values: Vec<f64> = (0..20_000)
            .map(|i| {
                (std::f64::consts::TAU * i as f64 / 288.0).sin()
                    + 0.4 * ((((i as u64) * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
            })
            .collect();
        TimeSeries::new("synthetic_machine_temp", values, 300.0)
    }

    // NOTE: wall-clock *ordering* of the full ladder (Baseline < +Pixel <
    // +AC < +Lazy) is asserted by the release-mode bench
    // (`fig11_factor_analysis`); unoptimized test builds at unit-test scale
    // invert the AC step because the FFT dominates tiny exhaustive scans.
    // The unit tests below pin the mechanisms that are build-invariant.

    #[test]
    fn pixel_preaggregation_dominates_the_baseline() {
        let series = small_series();
        let budget = Duration::from_millis(400);
        let baseline = run_variant(&series, 1000, CUMULATIVE[0], 288, budget);
        let pixel = run_variant(&series, 1000, CUMULATIVE[1], 288, budget);
        assert!(
            pixel.throughput > 3.0 * baseline.throughput,
            "+Pixel ({:.1}) should dominate Baseline ({:.1})",
            pixel.throughput,
            baseline.throughput
        );
    }

    #[test]
    fn removing_pixel_preaggregation_hurts() {
        let series = small_series();
        let budget = Duration::from_millis(400);
        let full = run_variant(&series, 1000, LESION[3], 288, budget);
        let no_pixel = run_variant(&series, 1000, LESION[0], 288, budget);
        assert!(
            no_pixel.throughput < full.throughput,
            "no Pixel ({:.1}) should be slower than ASAP ({:.1})",
            no_pixel.throughput,
            full.throughput
        );
    }

    #[test]
    fn removing_lazy_refresh_multiplies_search_invocations() {
        let series = small_series();
        let budget = Duration::from_secs(5);
        let full = run_variant(&series, 1000, LESION[3], 288, budget);
        let no_lazy = run_variant(&series, 1000, LESION[2], 288, budget);
        assert!(
            no_lazy.searches > 5 * full.searches.max(1),
            "no Lazy ran {} searches vs ASAP {}",
            no_lazy.searches,
            full.searches
        );
    }

    #[test]
    fn lazy_variant_runs_fewer_searches() {
        let series = small_series();
        let budget = Duration::from_secs(5);
        let lazy = run_variant(&series, 1000, LESION[3], 288, budget);
        let eager = run_variant(&series, 1000, LESION[2], 288, budget);
        assert!(
            lazy.searches < eager.searches,
            "lazy {} vs eager {}",
            lazy.searches,
            eager.searches
        );
    }
}
