//! Technique rendering: the column-level view a plot viewer actually sees.
//!
//! The user studies (§5.1) compare seven presentations of the same series.
//! For the simulated observer we reduce each presentation to its rendered
//! form at `R` pixel columns:
//!
//! * `level[c]` — the perceived central tendency of the ink in column `c`
//!   (mean of the points mapped there);
//! * `spread[c]` — the vertical extent of ink in column `c` (max − min),
//!   which is how high-frequency noise manifests once a plot is squeezed
//!   into fewer pixels than points (the Figure 2 phenomenon).
//!
//! Techniques that retain original time positions (M4, Visvalingam–Whyatt)
//! map points to columns by index; value-only reductions (PAA, SMA
//! variants) are stretched uniformly, as a plotting library would.

use asap_baselines::{m4, oversmooth::oversmooth, paa::paa, visvalingam::visvalingam};
use asap_core::Asap;
use asap_timeseries::{zscore, TimeSeriesError};

/// The visualization techniques of Figure 6 (and the Figure 7 subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// The raw series.
    Original,
    /// ASAP's smoothed rendering.
    Asap,
    /// M4 min/max/first/last aggregation.
    M4,
    /// Visvalingam–Whyatt line simplification ("simp").
    Simplify,
    /// Piecewise aggregate approximation to 800 points.
    Paa800,
    /// Piecewise aggregate approximation to 100 points.
    Paa100,
    /// SMA with a quarter-length window.
    Oversmooth,
}

impl Technique {
    /// The seven techniques of Figure 6, in plot order.
    pub fn figure6() -> [Technique; 7] {
        [
            Technique::Asap,
            Technique::Original,
            Technique::M4,
            Technique::Simplify,
            Technique::Paa800,
            Technique::Paa100,
            Technique::Oversmooth,
        ]
    }

    /// The four techniques of the visual-preference study (Figure 7).
    pub fn figure7() -> [Technique; 4] {
        [
            Technique::Original,
            Technique::Asap,
            Technique::Paa100,
            Technique::Oversmooth,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Technique::Original => "Original",
            Technique::Asap => "ASAP",
            Technique::M4 => "M4",
            Technique::Simplify => "simp",
            Technique::Paa800 => "PAA800",
            Technique::Paa100 => "PAA100",
            Technique::Oversmooth => "Oversmooth",
        }
    }
}

/// A technique's output reduced to what the viewer sees at `R` columns.
#[derive(Debug, Clone)]
pub struct Rendering {
    /// Perceived level per column (z-scored).
    pub level: Vec<f64>,
    /// Vertical ink extent per column, in the same z units.
    pub spread: Vec<f64>,
}

impl Rendering {
    /// Number of columns.
    pub fn columns(&self) -> usize {
        self.level.len()
    }

    /// The viewer-side distraction: jitter between adjacent column levels
    /// plus the average vertical ink, both in z units. This is the
    /// roughness the observer experiences, as opposed to the series-level
    /// roughness ASAP optimizes.
    pub fn distraction(&self) -> f64 {
        let jitter = asap_timeseries::roughness(&self.level).unwrap_or(0.0);
        let ink = self.spread.iter().sum::<f64>() / self.spread.len().max(1) as f64;
        jitter + ink
    }
}

/// Builds a rendering from `(index, value)` points over `n_original`
/// positions.
fn render_indexed(
    points: &[(usize, f64)],
    n_original: usize,
    columns: usize,
) -> Result<Rendering, TimeSeriesError> {
    if points.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    let values: Vec<f64> = points.iter().map(|&(_, v)| v).collect();
    let z = zscore(&values)?;
    let mut sum = vec![0.0f64; columns];
    let mut count = vec![0usize; columns];
    let mut min = vec![f64::INFINITY; columns];
    let mut max = vec![f64::NEG_INFINITY; columns];
    let denom = n_original.max(1);
    for (k, &(i, _)) in points.iter().enumerate() {
        let c = ((i * columns) / denom).min(columns - 1);
        sum[c] += z[k];
        count[c] += 1;
        min[c] = min[c].min(z[k]);
        max[c] = max[c].max(z[k]);
    }
    // Fill empty columns by carrying the previous level (a line segment
    // passes through them); spread 0.
    let mut level = Vec::with_capacity(columns);
    let mut spread = Vec::with_capacity(columns);
    let mut last = 0.0f64;
    for c in 0..columns {
        if count[c] > 0 {
            last = sum[c] / count[c] as f64;
            level.push(last);
            spread.push((max[c] - min[c]).max(0.0));
        } else {
            level.push(last);
            spread.push(0.0);
        }
    }
    Ok(Rendering { level, spread })
}

/// Builds a rendering from a plain value series stretched uniformly.
fn render_uniform(values: &[f64], columns: usize) -> Result<Rendering, TimeSeriesError> {
    let points: Vec<(usize, f64)> = values.iter().copied().enumerate().collect();
    render_indexed(&points, values.len(), columns)
}

/// Renders `technique` applied to `data` at `columns` pixel columns.
pub fn render(
    technique: Technique,
    data: &[f64],
    columns: usize,
) -> Result<Rendering, TimeSeriesError> {
    match technique {
        Technique::Original => render_uniform(data, columns),
        Technique::Asap => {
            let result = Asap::builder().resolution(columns).build().smooth(data)?;
            render_uniform(&result.smoothed, columns)
        }
        Technique::M4 => {
            let pts: Vec<(usize, f64)> = m4::m4_aggregate(data, columns)?
                .into_iter()
                .map(|p| (p.index, p.value))
                .collect();
            render_indexed(&pts, data.len(), columns)
        }
        Technique::Simplify => {
            let pts: Vec<(usize, f64)> = visvalingam(data, columns.max(2))?
                .into_iter()
                .map(|p| (p.index, p.value))
                .collect();
            render_indexed(&pts, data.len(), columns)
        }
        Technique::Paa800 => render_uniform(&paa(data, 800)?, columns),
        Technique::Paa100 => render_uniform(&paa(data, 100)?, columns),
        Technique::Oversmooth => render_uniform(&oversmooth(data)?, columns),
    }
}

/// Pixel error of a technique against the raw rendering (Table 4).
///
/// Techniques that keep original time positions (M4, Visvalingam–Whyatt)
/// are rasterized at those positions; value-only reductions are stretched
/// uniformly, exactly as a plotting frontend would draw them.
pub fn technique_pixel_error(
    technique: Technique,
    data: &[f64],
    width: usize,
    height: usize,
) -> Result<f64, TimeSeriesError> {
    use asap_baselines::{pixel_error, rasterize, rasterize_indexed};
    let original = rasterize(data, width, height);
    let reduced = match technique {
        Technique::Original => rasterize(data, width, height),
        Technique::Asap => {
            let result = Asap::builder().resolution(width).build().smooth(data)?;
            rasterize(&result.smoothed, width, height)
        }
        Technique::M4 => {
            let pts: Vec<(usize, f64)> = m4::m4_aggregate(data, width)?
                .into_iter()
                .map(|p| (p.index, p.value))
                .collect();
            rasterize_indexed(&pts, data.len(), width, height)
        }
        Technique::Simplify => {
            let pts: Vec<(usize, f64)> = visvalingam(data, width.max(2))?
                .into_iter()
                .map(|p| (p.index, p.value))
                .collect();
            rasterize_indexed(&pts, data.len(), width, height)
        }
        Technique::Paa800 => rasterize(&paa(data, 800)?, width, height),
        Technique::Paa100 => rasterize(&paa(data, 100)?, width, height),
        Technique::Oversmooth => rasterize(&oversmooth(data)?, width, height),
    };
    Ok(pixel_error(&original, &reduced))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_with_dip(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let noise = 0.8 * ((((i as u64) * 2654435761) % 1000) as f64 / 1000.0 - 0.5);
                let seasonal = (std::f64::consts::TAU * i as f64 / 48.0).sin();
                let dip = if i >= 7 * n / 10 && i < 8 * n / 10 { -3.0 } else { 0.0 };
                seasonal + noise + dip
            })
            .collect()
    }

    #[test]
    fn all_techniques_render_to_requested_columns() {
        let data = noisy_with_dip(4000);
        for t in Technique::figure6() {
            let r = render(t, &data, 800).unwrap();
            assert_eq!(r.columns(), 800, "{}", t.name());
            assert!(r.level.iter().all(|v| v.is_finite()), "{}", t.name());
        }
    }

    #[test]
    fn asap_rendering_is_less_distracting_than_original() {
        let data = noisy_with_dip(4000);
        let original = render(Technique::Original, &data, 800).unwrap();
        let asap = render(Technique::Asap, &data, 800).unwrap();
        assert!(
            asap.distraction() < original.distraction(),
            "asap {} vs original {}",
            asap.distraction(),
            original.distraction()
        );
    }

    #[test]
    fn m4_rendering_keeps_the_noise() {
        let data = noisy_with_dip(4000);
        let m4 = render(Technique::M4, &data, 800).unwrap();
        let asap = render(Technique::Asap, &data, 800).unwrap();
        assert!(m4.distraction() > asap.distraction());
    }

    #[test]
    fn figure_lists_have_the_documented_arity() {
        assert_eq!(Technique::figure6().len(), 7);
        assert_eq!(Technique::figure7().len(), 4);
        assert_eq!(Technique::Simplify.name(), "simp");
    }

    #[test]
    fn empty_input_errors() {
        assert!(render(Technique::Original, &[], 100).is_err());
    }

    #[test]
    fn table4_pixel_error_ordering() {
        // Table 4: M4 near-zero, line simplification small, ASAP large.
        let data = noisy_with_dip(4000);
        let e_m4 = technique_pixel_error(Technique::M4, &data, 400, 150).unwrap();
        let e_simp = technique_pixel_error(Technique::Simplify, &data, 400, 150).unwrap();
        let e_asap = technique_pixel_error(Technique::Asap, &data, 400, 150).unwrap();
        assert!(e_m4 < 0.35, "M4 {e_m4}");
        assert!(e_asap > 0.6, "ASAP {e_asap}");
        assert!(e_m4 <= e_simp + 0.1, "M4 {e_m4} vs simp {e_simp}");
        assert!(e_asap > e_m4 && e_asap > e_simp);
        assert_eq!(
            technique_pixel_error(Technique::Original, &data, 400, 150).unwrap(),
            0.0
        );
    }

    #[test]
    fn dip_is_visible_in_smoothed_level() {
        let data = noisy_with_dip(4000);
        let asap = render(Technique::Asap, &data, 100).unwrap();
        // Columns 70..80 carry the dip: their mean level must be clearly
        // below the global mean.
        let dip_mean: f64 = asap.level[70..80].iter().sum::<f64>() / 10.0;
        let global: f64 = asap.level.iter().sum::<f64>() / 100.0;
        assert!(dip_mean < global - 1.0, "dip {dip_mean} vs global {global}");
    }
}
