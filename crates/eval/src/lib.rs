//! Evaluation harness for the ASAP reproduction.
//!
//! Reproduces the experimental apparatus of §5 and the appendix:
//!
//! * [`observer`] — the **simulated user study**. The paper's Figures 6, 7
//!   and B.1 come from Amazon Mechanical Turk; we substitute a
//!   signal-detection observer model whose mechanism mirrors the paper's
//!   hypothesis (noise distracts attention from sustained deviations).
//!   See the module docs for the model and its limits.
//! * [`rendering`] — turns each visualization technique's output into the
//!   column-level "what the viewer sees" representation the observer
//!   consumes.
//! * [`perf`] — wall-clock measurement of the search strategies (Figures
//!   8, 9, A.2, A.3).
//! * [`table2`] — the batch exhaustive-vs-ASAP comparison of Table 2.
//! * [`factor`] — the cumulative factor analysis and lesion study of
//!   Figure 11.
//! * [`sensitivity`] — the roughness/kurtosis sensitivity sweeps of
//!   Figure B.1.
//! * [`report`] — fixed-width table formatting for the benchmark binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod factor;
pub mod observer;
pub mod perf;
pub mod rendering;
pub mod report;
pub mod sensitivity;
pub mod table2;

pub use observer::{ObserverModel, StudyResult};
pub use rendering::{render, technique_pixel_error, Rendering, Technique};
pub use report::Table;
