//! Fixed-width table formatting for the benchmark binaries.
//!
//! The benches print the same rows/series the paper's tables and figures
//! report; this module keeps that output aligned and diffable.

use std::fmt::Write as _;

/// A simple left-aligned fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<w$}  ", w = w);
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with `prec` decimal places.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a throughput/speedup with engineering suffixes (K/M/G), as the
/// paper's figures do ("113K", "4.0K").
pub fn eng(x: f64) -> String {
    let (v, suffix) = if x.abs() >= 1e9 {
        (x / 1e9, "G")
    } else if x.abs() >= 1e6 {
        (x / 1e6, "M")
    } else if x.abs() >= 1e3 {
        (x / 1e3, "K")
    } else {
        (x, "")
    };
    if v.abs() >= 100.0 || suffix.is_empty() && v.fract() == 0.0 {
        format!("{v:.0}{suffix}")
    } else {
        format!("{v:.1}{suffix}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Column 2 starts at the same offset in every data row.
        let off2 = lines[2].find('1').unwrap();
        let off3 = lines[3].find('2').unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    fn missing_cells_render_empty() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["only-one"]);
        assert!(t.render().contains("only-one"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(0.5, 0), "0");
    }

    #[test]
    fn engineering_formatting_matches_figure_style() {
        assert_eq!(eng(113_000.0), "113K");
        assert_eq!(eng(4_000.0), "4.0K");
        assert_eq!(eng(20_400.0), "20.4K");
        assert_eq!(eng(0.01), "0.0");
        assert_eq!(eng(2_500_000.0), "2.5M");
    }
}
