//! Time-series kernel for the ASAP reproduction.
//!
//! This crate implements the statistical primitives that Section 3 of
//! *ASAP: Prioritizing Attention via Time Series Smoothing* (Rong & Bailis,
//! VLDB 2017) builds on:
//!
//! * [`stats`] — one-pass central moments: mean, population variance,
//!   standard deviation, and **kurtosis** (the fourth standardized moment,
//!   the paper's trend-preservation measure, §3.2);
//! * [`diff`] — first-difference series and **roughness** (σ of the first
//!   differences, the paper's smoothness measure, §3.1);
//! * [`mod@sma`] — the simple moving average smoothing function (§3.3), in both
//!   naive and prefix-sum forms, plus strided/sliding variants used by the
//!   pixel-aware preaggregation;
//! * [`normalize`] — z-score normalization used for all plots in the paper
//!   ("we depict z-scores instead of raw values", §1 fn. 1);
//! * [`series`] — an owned, timestamped series container with sampling
//!   metadata used across the workspace.
//!
//! All moment computations use *population* (biased, ÷N) estimators to match
//! the paper's derivations (Equations 1–4) and its reference kurtosis values
//! (normal = 3, Laplace = 6, uniform = 1.8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod error;
pub mod normalize;
pub mod resample;
pub mod series;
pub mod sma;
pub mod stats;

pub use diff::{first_differences, roughness};
pub use error::TimeSeriesError;
pub use normalize::{zscore, zscore_in_place};
pub use resample::{resample, GapFill};
pub use series::TimeSeries;
pub use sma::{sma, sma_naive, sma_strided, PrefixSum};
pub use stats::{kurtosis, mean, moments, stddev, variance, Moments};

/// Validates that every sample is finite, reporting the first offender.
///
/// The moment kernels themselves accept any `f64` (NaN propagates, which is
/// correct for internal use); public entry points such as
/// `asap_core::Asap::smooth` call this so users get a positioned error
/// instead of a silently-NaN plot.
pub fn validate_finite(data: &[f64]) -> Result<(), TimeSeriesError> {
    match data.iter().position(|v| !v.is_finite()) {
        Some(index) => Err(TimeSeriesError::NonFinite { index }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn validate_finite_accepts_ordinary_data() {
        assert!(validate_finite(&[1.0, -2.5, 0.0, f64::MIN_POSITIVE]).is_ok());
        assert!(validate_finite(&[]).is_ok());
    }

    #[test]
    fn validate_finite_reports_first_offender() {
        assert_eq!(
            validate_finite(&[1.0, f64::NAN, f64::INFINITY]),
            Err(TimeSeriesError::NonFinite { index: 1 })
        );
        assert_eq!(
            validate_finite(&[1.0, 2.0, f64::NEG_INFINITY]),
            Err(TimeSeriesError::NonFinite { index: 2 })
        );
    }
}
