//! First differences and the ASAP roughness measure (§3.1).
//!
//! The paper quantifies the visual smoothness of a plot as the standard
//! deviation of the *first difference series*
//! `ΔX = {x₂−x₁, x₃−x₂, …}`: `roughness(X) = σ(ΔX)`. A roughness of zero
//! holds iff the plot is a straight line (constant slope). The measure is
//! closely related to the variogram at lag 1 used in geostatistics.

use crate::error::TimeSeriesError;
use crate::stats::Moments;

/// Returns the first-difference series `Δxᵢ = x_{i+1} − xᵢ`.
///
/// The result has `data.len() − 1` points; errors if fewer than two points
/// are provided.
pub fn first_differences(data: &[f64]) -> Result<Vec<f64>, TimeSeriesError> {
    if data.len() < 2 {
        return Err(TimeSeriesError::TooShort {
            required: 2,
            actual: data.len(),
        });
    }
    Ok(data.windows(2).map(|w| w[1] - w[0]).collect())
}

/// ASAP's roughness measure: the population standard deviation of the first
/// differences, `roughness(X) = σ(ΔX)`.
///
/// Computed in one pass without materializing the difference series. Errors
/// if fewer than two points are provided.
pub fn roughness(data: &[f64]) -> Result<f64, TimeSeriesError> {
    if data.len() < 2 {
        return Err(TimeSeriesError::TooShort {
            required: 2,
            actual: data.len(),
        });
    }
    let mut m = Moments::new();
    for w in data.windows(2) {
        m.push(w[1] - w[0]);
    }
    Ok(m.stddev())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differences_of_line_are_constant() {
        let line: Vec<f64> = (0..10).map(|i| 3.0 * i as f64 + 1.0).collect();
        let d = first_differences(&line).unwrap();
        assert_eq!(d.len(), 9);
        assert!(d.iter().all(|&x| (x - 3.0).abs() < 1e-12));
    }

    #[test]
    fn too_short_errors() {
        assert!(first_differences(&[1.0]).is_err());
        assert!(roughness(&[]).is_err());
        assert!(roughness(&[1.0]).is_err());
    }

    #[test]
    fn straight_line_has_zero_roughness() {
        // §3.1: "a time series will have roughness value of 0 if and only if
        // the corresponding plot is a straight line".
        let line: Vec<f64> = (0..100).map(|i| -0.5 * i as f64 + 7.0).collect();
        assert!(roughness(&line).unwrap() < 1e-12);
    }

    #[test]
    fn figure4_series_a_jagged_line() {
        // Figure 4 of the paper: three series with mean 0 and stddev 1 whose
        // roughness values are 2.04, 0.4 and 0. Series A alternates around 0
        // (a sawtooth): differences alternate ±2σ, giving roughness 2.0 for a
        // unit-variance alternating series.
        let a: Vec<f64> = (0..200).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let r = roughness(&a).unwrap();
        // differences are ±2 with (almost) equal frequency => σ ≈ 2
        assert!((r - 2.0).abs() < 0.05, "roughness {r}");
    }

    #[test]
    fn roughness_orders_jagged_above_bent_above_straight() {
        // Qualitative replication of Figure 4: jagged > slightly bent > line.
        let n = 120usize;
        let jagged: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let bent: Vec<f64> = (0..n)
            .map(|i| {
                // piecewise linear with a single slope change in the middle
                let x = i as f64;
                if i < n / 2 {
                    x * 0.01
                } else {
                    (n / 2) as f64 * 0.01 + (x - (n / 2) as f64) * 0.03
                }
            })
            .collect();
        let line: Vec<f64> = (0..n).map(|i| 0.02 * i as f64).collect();
        let (rj, rb, rl) = (
            roughness(&jagged).unwrap(),
            roughness(&bent).unwrap(),
            roughness(&line).unwrap(),
        );
        assert!(rj > rb && rb > rl, "{rj} > {rb} > {rl} violated");
        assert!(rl < 1e-12);
        assert!(rb > 0.0);
    }

    #[test]
    fn roughness_matches_materialized_differences() {
        let data: Vec<f64> = (0..333).map(|i| ((i as f64) * 0.217).sin() * 5.0).collect();
        let d = first_differences(&data).unwrap();
        let expected = crate::stats::stddev(&d).unwrap();
        assert!((roughness(&data).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn roughness_is_translation_invariant() {
        let data: Vec<f64> = (0..100).map(|i| ((i as f64) * 0.7).cos()).collect();
        let shifted: Vec<f64> = data.iter().map(|x| x + 1000.0).collect();
        let r0 = roughness(&data).unwrap();
        let r1 = roughness(&shifted).unwrap();
        assert!((r0 - r1).abs() < 1e-9);
    }

    #[test]
    fn roughness_scales_linearly() {
        let data: Vec<f64> = (0..100).map(|i| ((i as f64) * 0.7).cos()).collect();
        let scaled: Vec<f64> = data.iter().map(|x| x * 3.0).collect();
        let r0 = roughness(&data).unwrap();
        let r1 = roughness(&scaled).unwrap();
        assert!((r1 - 3.0 * r0).abs() < 1e-9);
    }
}
