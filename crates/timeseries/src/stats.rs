//! One-pass central moments: mean, population variance, and kurtosis.
//!
//! Kurtosis is ASAP's *preservation measure* (§3.2): the fourth standardized
//! moment `Kurt[X] = E[(X−µ)⁴] / E[(X−µ)²]²`. Higher kurtosis means more of
//! the variance is contributed by rare, extreme deviations. The paper's
//! reference values — normal 3, Laplace 6, uniform 1.8 — correspond to the
//! *population* estimator implemented here.

use crate::error::TimeSeriesError;

/// First four central moments of a sample, computed in a single pass.
///
/// Uses the numerically stable streaming update of Pébay (2008) — the same
/// family of formulas behind `M2/M3/M4` accumulators in monitoring systems —
/// so that million-point telemetry windows do not lose precision to
/// catastrophic cancellation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
}

impl Default for Moments {
    fn default() -> Self {
        Self::new()
    }
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Moments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
        }
    }

    /// Accumulates all values of `data`.
    pub fn from_slice(data: &[f64]) -> Self {
        let mut m = Moments::new();
        for &x in data {
            m.push(x);
        }
        m
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;

        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;

        self.mean += delta * nb / n;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.n += other.n;
    }

    /// Number of accumulated observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (÷N).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Population skewness (third standardized moment). `NaN` on
    /// zero-variance input.
    pub fn skewness(&self) -> f64 {
        let var = self.variance();
        if var <= 0.0 {
            return f64::NAN;
        }
        (self.m3 / self.n as f64) / var.powf(1.5)
    }

    /// Population kurtosis: the fourth standardized moment (not excess).
    ///
    /// Returns `NaN` when the variance is zero (the statistic is undefined;
    /// ASAP treats such plots as already maximally smooth).
    pub fn kurtosis(&self) -> f64 {
        let var = self.variance();
        if var <= 0.0 {
            return f64::NAN;
        }
        (self.m4 / self.n as f64) / (var * var)
    }
}

/// Mean of `data`. Returns an error on empty input.
pub fn mean(data: &[f64]) -> Result<f64, TimeSeriesError> {
    if data.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    Ok(Moments::from_slice(data).mean())
}

/// Population variance of `data`.
pub fn variance(data: &[f64]) -> Result<f64, TimeSeriesError> {
    if data.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    Ok(Moments::from_slice(data).variance())
}

/// Population standard deviation of `data`.
pub fn stddev(data: &[f64]) -> Result<f64, TimeSeriesError> {
    variance(data).map(f64::sqrt)
}

/// Population kurtosis (fourth standardized moment) of `data`.
///
/// This is ASAP's preservation measure (§3.2). Errors on empty input and on
/// zero-variance input, where the statistic is undefined.
pub fn kurtosis(data: &[f64]) -> Result<f64, TimeSeriesError> {
    if data.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    let k = Moments::from_slice(data).kurtosis();
    if k.is_nan() {
        Err(TimeSeriesError::ZeroVariance)
    } else {
        Ok(k)
    }
}

/// All four moments of `data` in one pass.
pub fn moments(data: &[f64]) -> Result<Moments, TimeSeriesError> {
    if data.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    Ok(Moments::from_slice(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_kurtosis(data: &[f64]) -> f64 {
        let n = data.len() as f64;
        let mu = data.iter().sum::<f64>() / n;
        let m2 = data.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / n;
        let m4 = data.iter().map(|x| (x - mu).powi(4)).sum::<f64>() / n;
        m4 / (m2 * m2)
    }

    #[test]
    fn mean_of_constant() {
        assert_eq!(mean(&[5.0; 10]).unwrap(), 5.0);
    }

    #[test]
    fn empty_inputs_error() {
        assert_eq!(mean(&[]), Err(TimeSeriesError::Empty));
        assert_eq!(variance(&[]), Err(TimeSeriesError::Empty));
        assert_eq!(kurtosis(&[]), Err(TimeSeriesError::Empty));
        assert!(moments(&[]).is_err());
    }

    #[test]
    fn zero_variance_kurtosis_is_error() {
        assert_eq!(kurtosis(&[2.0; 8]), Err(TimeSeriesError::ZeroVariance));
    }

    #[test]
    fn variance_is_population_not_sample() {
        // Population variance of {1, 3} is 1.0 (sample variance would be 2.0).
        assert!((variance(&[1.0, 3.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kurtosis_matches_naive_two_pass() {
        let data: Vec<f64> = (0..500)
            .map(|i| ((i as f64) * 0.37).sin() + 0.01 * (i as f64))
            .collect();
        let fast = kurtosis(&data).unwrap();
        let naive = naive_kurtosis(&data);
        assert!((fast - naive).abs() < 1e-9, "{fast} vs {naive}");
    }

    #[test]
    fn kurtosis_of_two_point_distribution_is_one() {
        // A symmetric two-point distribution {-1, +1} has kurtosis exactly 1,
        // the minimum possible value.
        let data: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { -1.0 } else { 1.0 }).collect();
        assert!((kurtosis(&data).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kurtosis_of_uniform_grid_approaches_1_8() {
        // Discrete uniform on a fine grid approximates the continuous uniform,
        // whose kurtosis is 9/5 = 1.8 (paper §3.2: "less than 3, such as the
        // uniform distribution").
        let data: Vec<f64> = (0..100_000).map(|i| i as f64).collect();
        let k = kurtosis(&data).unwrap();
        assert!((k - 1.8).abs() < 1e-3, "kurtosis {k}");
    }

    #[test]
    fn merge_equals_bulk() {
        let a: Vec<f64> = (0..257).map(|i| (i as f64 * 0.11).cos() * 3.0 + 1.0).collect();
        let b: Vec<f64> = (0..511).map(|i| (i as f64 * 0.07).sin() - 2.0).collect();
        let mut left = Moments::from_slice(&a);
        let right = Moments::from_slice(&b);
        left.merge(&right);

        let mut all = a.clone();
        all.extend_from_slice(&b);
        let bulk = Moments::from_slice(&all);

        assert_eq!(left.count(), bulk.count());
        assert!((left.mean() - bulk.mean()).abs() < 1e-9);
        assert!((left.variance() - bulk.variance()).abs() < 1e-9);
        assert!((left.kurtosis() - bulk.kurtosis()).abs() < 1e-9);
        assert!((left.skewness() - bulk.skewness()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = Moments::from_slice(&[1.0, 2.0, 3.0]);
        let mut m = a;
        m.merge(&Moments::new());
        assert_eq!(m, a);
        let mut e = Moments::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn skewness_of_symmetric_data_is_zero() {
        let data: Vec<f64> = (-500..=500).map(|i| i as f64).collect();
        let m = Moments::from_slice(&data);
        assert!(m.skewness().abs() < 1e-9);
    }

    #[test]
    fn moments_on_shifted_data_are_shift_invariant() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * i) % 97) as f64).collect();
        let shifted: Vec<f64> = data.iter().map(|x| x + 1e9).collect();
        let k0 = kurtosis(&data).unwrap();
        let k1 = kurtosis(&shifted).unwrap();
        // One-pass updates keep precision even under a large offset.
        assert!((k0 - k1).abs() < 1e-6, "{k0} vs {k1}");
    }
}
