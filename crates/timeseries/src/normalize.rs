//! Z-score normalization.
//!
//! Every plot in the paper depicts z-scores rather than raw values (§1,
//! footnote 1): normalizing the visual field across plots while preserving
//! large-scale structure. Z-scoring is affine, so it changes neither the
//! kurtosis nor the *relative* roughness of a series — which is why ASAP's
//! window choice is invariant under it (verified in the test suite).

use crate::error::TimeSeriesError;
use crate::stats::Moments;

/// Returns the z-scored copy of `data`: `(x − µ) / σ`.
///
/// Errors on empty input and zero-variance input (where the z-score is
/// undefined).
pub fn zscore(data: &[f64]) -> Result<Vec<f64>, TimeSeriesError> {
    let mut out = data.to_vec();
    zscore_in_place(&mut out)?;
    Ok(out)
}

/// Z-scores `data` in place. See [`zscore`].
pub fn zscore_in_place(data: &mut [f64]) -> Result<(), TimeSeriesError> {
    if data.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    let m = Moments::from_slice(data);
    let sd = m.stddev();
    if sd <= 0.0 || !sd.is_finite() {
        return Err(TimeSeriesError::ZeroVariance);
    }
    let mu = m.mean();
    let inv = 1.0 / sd;
    for x in data.iter_mut() {
        *x = (*x - mu) * inv;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{kurtosis, moments};

    #[test]
    fn zscored_series_has_zero_mean_unit_variance() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.17).sin() * 42.0 + 7.0).collect();
        let z = zscore(&data).unwrap();
        let m = moments(&z).unwrap();
        assert!(m.mean().abs() < 1e-10);
        assert!((m.variance() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn zscore_is_idempotent() {
        let data: Vec<f64> = (0..200).map(|i| (i as f64).powf(1.3)).collect();
        let once = zscore(&data).unwrap();
        let twice = zscore(&once).unwrap();
        for (a, b) in once.iter().zip(&twice) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn zscore_preserves_kurtosis() {
        // Affine invariance of the fourth standardized moment — the reason
        // the paper can z-score plots without changing ASAP's constraint.
        let data: Vec<f64> = (0..2000)
            .map(|i| if i % 97 == 0 { 50.0 } else { (i as f64 * 0.3).sin() })
            .collect();
        let z = zscore(&data).unwrap();
        let k0 = kurtosis(&data).unwrap();
        let k1 = kurtosis(&z).unwrap();
        assert!((k0 - k1).abs() < 1e-8, "{k0} vs {k1}");
    }

    #[test]
    fn degenerate_inputs_error() {
        assert_eq!(zscore(&[]), Err(TimeSeriesError::Empty));
        assert_eq!(zscore(&[3.0; 5]), Err(TimeSeriesError::ZeroVariance));
    }

    #[test]
    fn in_place_matches_copying() {
        let data: Vec<f64> = (0..64).map(|i| (i as f64) * 1.5 - 10.0).collect();
        let copied = zscore(&data).unwrap();
        let mut inplace = data.clone();
        zscore_in_place(&mut inplace).unwrap();
        assert_eq!(copied, inplace);
    }
}
