//! Resampling irregular telemetry onto the equi-spaced grid ASAP requires.
//!
//! ASAP's problem statement assumes temporally ordered, equi-spaced points
//! (§2), but real exports — InfluxDB queries, CloudWatch `GetMetricData`,
//! CSV dumps — carry jitter, gaps, and bursts. [`resample`] buckets raw
//! `(timestamp, value)` observations onto a fixed grid (mean per bucket,
//! like the pixel-aware preaggregation) and fills empty buckets with a
//! configurable [`GapFill`] policy so downstream moments are not poisoned.

use crate::error::TimeSeriesError;
use crate::series::TimeSeries;

/// Policy for grid buckets containing no observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GapFill {
    /// Carry the previous bucket's value forward (step interpolation) —
    /// the right default for gauges (CPU %, temperature).
    Previous,
    /// Linear interpolation between the neighbouring filled buckets — for
    /// smoothly varying physical signals.
    Linear,
    /// A fixed value (e.g. 0 for counters that report only on activity).
    Constant(f64),
}

/// Buckets irregular `(timestamp_secs, value)` observations onto an
/// equi-spaced grid of `period_secs`, averaging within buckets and filling
/// gaps per `fill`.
///
/// Observations must be finite; timestamps need not be sorted (the grid is
/// formed from min/max). Errors on empty input, non-positive period,
/// non-finite values, and on leading gaps that `GapFill::Previous` cannot
/// fill (there is no previous value — use `Linear`, which extrapolates
/// flat, or `Constant`).
pub fn resample(
    points: &[(f64, f64)],
    period_secs: f64,
    fill: GapFill,
    name: &str,
) -> Result<TimeSeries, TimeSeriesError> {
    if points.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    if period_secs <= 0.0 || !period_secs.is_finite() {
        return Err(TimeSeriesError::InvalidParameter {
            name: "period_secs",
            message: "sampling period must be positive and finite",
        });
    }
    for (i, &(t, v)) in points.iter().enumerate() {
        if !t.is_finite() || !v.is_finite() {
            return Err(TimeSeriesError::NonFinite { index: i });
        }
    }

    let t0 = points.iter().map(|&(t, _)| t).fold(f64::MAX, f64::min);
    let t1 = points.iter().map(|&(t, _)| t).fold(f64::MIN, f64::max);
    // The relative epsilon keeps exact multiples of the period (t1 = k·p)
    // from flooring to k−1 under division rounding.
    let buckets = ((t1 - t0) / period_secs * (1.0 + 1e-12) + 1e-9).floor() as usize + 1;

    let mut sums = vec![0.0f64; buckets];
    let mut counts = vec![0usize; buckets];
    for &(t, v) in points {
        // Same epsilon as the bucket count: a timestamp at an exact bucket
        // boundary must not round down into the previous bucket.
        let b = (((t - t0) / period_secs * (1.0 + 1e-12) + 1e-9) as usize).min(buckets - 1);
        sums[b] += v;
        counts[b] += 1;
    }

    let mut values = vec![f64::NAN; buckets];
    for b in 0..buckets {
        if counts[b] > 0 {
            values[b] = sums[b] / counts[b] as f64;
        }
    }

    match fill {
        GapFill::Constant(c) => {
            for v in values.iter_mut() {
                if v.is_nan() {
                    *v = c;
                }
            }
        }
        GapFill::Previous => {
            if values[0].is_nan() {
                return Err(TimeSeriesError::InvalidParameter {
                    name: "fill",
                    message: "GapFill::Previous cannot fill a leading gap",
                });
            }
            let mut last = values[0];
            for v in values.iter_mut() {
                if v.is_nan() {
                    *v = last;
                } else {
                    last = *v;
                }
            }
        }
        GapFill::Linear => {
            // Fill each NaN run by interpolating between its neighbours;
            // leading/trailing runs extend flat.
            let mut b = 0usize;
            while b < buckets {
                if !values[b].is_nan() {
                    b += 1;
                    continue;
                }
                let run_start = b;
                while b < buckets && values[b].is_nan() {
                    b += 1;
                }
                let run_end = b; // exclusive
                let left = run_start.checked_sub(1).map(|i| values[i]);
                let right = values.get(run_end).copied().filter(|v| !v.is_nan());
                match (left, right) {
                    (Some(l), Some(r)) => {
                        let span = (run_end - run_start + 1) as f64;
                        for (k, v) in values[run_start..run_end].iter_mut().enumerate() {
                            *v = l + (r - l) * (k + 1) as f64 / span;
                        }
                    }
                    (Some(l), None) => values[run_start..run_end].fill(l),
                    (None, Some(r)) => values[run_start..run_end].fill(r),
                    (None, None) => {
                        return Err(TimeSeriesError::Empty); // no observations at all
                    }
                }
            }
        }
    }

    Ok(TimeSeries::new(name, values, period_secs).with_start_epoch(t0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_input_passes_through() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64 * 60.0, i as f64)).collect();
        let ts = resample(&pts, 60.0, GapFill::Previous, "r").unwrap();
        assert_eq!(ts.len(), 10);
        assert_eq!(ts.values()[3], 3.0);
        assert_eq!(ts.period_secs(), 60.0);
        assert_eq!(ts.start_epoch_secs(), 0.0);
    }

    #[test]
    fn bursts_are_averaged_within_buckets() {
        let pts = [(0.0, 1.0), (10.0, 3.0), (20.0, 5.0), (70.0, 10.0)];
        let ts = resample(&pts, 60.0, GapFill::Previous, "b").unwrap();
        assert_eq!(ts.len(), 2);
        assert!((ts.values()[0] - 3.0).abs() < 1e-12); // mean of 1,3,5
        assert_eq!(ts.values()[1], 10.0);
    }

    #[test]
    fn previous_fill_carries_forward() {
        let pts = [(0.0, 2.0), (300.0, 8.0)]; // 5-minute gap at 60s period
        let ts = resample(&pts, 60.0, GapFill::Previous, "p").unwrap();
        assert_eq!(ts.values(), &[2.0, 2.0, 2.0, 2.0, 2.0, 8.0]);
    }

    #[test]
    fn linear_fill_interpolates() {
        let pts = [(0.0, 0.0), (300.0, 10.0)];
        let ts = resample(&pts, 60.0, GapFill::Linear, "l").unwrap();
        let expected = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0];
        for (a, e) in ts.values().iter().zip(expected) {
            assert!((a - e).abs() < 1e-9, "{a} vs {e}");
        }
    }

    #[test]
    fn constant_fill_uses_the_constant() {
        let pts = [(0.0, 5.0), (180.0, 7.0)];
        let ts = resample(&pts, 60.0, GapFill::Constant(0.0), "c").unwrap();
        assert_eq!(ts.values(), &[5.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn unsorted_timestamps_are_handled() {
        let pts = [(120.0, 3.0), (0.0, 1.0), (60.0, 2.0)];
        let ts = resample(&pts, 60.0, GapFill::Previous, "u").unwrap();
        assert_eq!(ts.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(resample(&[], 60.0, GapFill::Previous, "e").is_err());
        assert!(resample(&[(0.0, 1.0)], 0.0, GapFill::Previous, "e").is_err());
        assert!(resample(&[(0.0, f64::NAN)], 60.0, GapFill::Previous, "e").is_err());
        assert!(resample(&[(f64::INFINITY, 1.0)], 60.0, GapFill::Previous, "e").is_err());
    }

    #[test]
    fn single_point_yields_single_bucket() {
        let ts = resample(&[(1000.0, 42.0)], 60.0, GapFill::Linear, "s").unwrap();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.values()[0], 42.0);
        assert_eq!(ts.start_epoch_secs(), 1000.0);
    }

    #[test]
    fn trailing_gap_extends_flat_under_linear() {
        // Observations at buckets 0 and 1; timestamps reach into bucket 3.
        let pts = [(0.0, 1.0), (60.0, 3.0), (200.0, f64::NAN)];
        assert!(resample(&pts, 60.0, GapFill::Linear, "t").is_err()); // NaN rejected
        let pts = [(0.0, 1.0), (60.0, 3.0), (210.0, 9.0)];
        let ts = resample(&pts, 60.0, GapFill::Linear, "t").unwrap();
        assert_eq!(ts.len(), 4);
        // bucket 2 interpolates between 3 and 9.
        assert!((ts.values()[2] - 6.0).abs() < 1e-9);
    }
}
