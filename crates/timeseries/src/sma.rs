//! Simple moving average — ASAP's smoothing function (§3.3).
//!
//! `SMA(X, w)` averages every sequential window of `w` points:
//! `yᵢ = (1/w) Σ_{j=0}^{w−1} x_{i+j}`. The paper chooses SMA because it is
//! cheap, incrementally maintainable, and statistically optimal for
//! recovering a trend under normally distributed fluctuations.
//!
//! Two execution strategies are provided:
//!
//! * [`sma_naive`] — the textbook O(N·w) definition, kept as a test oracle;
//! * [`sma`] — O(N) via a running sum with periodic renormalization through
//!   [`PrefixSum`], the strategy ASAP's search uses when evaluating many
//!   candidate windows over the same series.
//!
//! [`sma_strided`] additionally supports a slide size > 1, which is how the
//! pixel-aware preaggregation (§4.4) reduces a raw stream to one point per
//! point-to-pixel group (window = slide = ratio).
//!
//! Note on output length: the paper writes `SMA(X,w) = {y₁…y_{N−w}}`; we
//! return all `N−w+1` full windows (the conventional definition — the
//! paper's index set drops the final window; this off-by-one has no effect
//! on the search).

use crate::error::TimeSeriesError;

/// Precomputed prefix sums enabling O(1) window-sum queries, the workhorse
/// behind evaluating many SMA candidates over one series.
///
/// `sums[i]` holds `x₀ + … + x_{i−1}`; the sum of `x[a..b]` is
/// `sums[b] − sums[a]`. Uses compensated (Kahan) accumulation so the error
/// stays bounded for million-point telemetry series.
#[derive(Debug, Clone)]
pub struct PrefixSum {
    sums: Vec<f64>,
}

impl PrefixSum {
    /// Builds prefix sums over `data` in O(N).
    pub fn new(data: &[f64]) -> Self {
        let mut sums = Vec::with_capacity(data.len() + 1);
        sums.push(0.0);
        let mut acc = 0.0f64;
        let mut comp = 0.0f64; // Kahan compensation
        for &x in data {
            let y = x - comp;
            let t = acc + y;
            comp = (t - acc) - y;
            acc = t;
            sums.push(acc);
        }
        PrefixSum { sums }
    }

    /// Number of underlying points.
    pub fn len(&self) -> usize {
        self.sums.len() - 1
    }

    /// True when built over an empty series.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of `data[start..end)`. Panics (debug) on out-of-range input.
    #[inline]
    pub fn range_sum(&self, start: usize, end: usize) -> f64 {
        debug_assert!(start <= end && end < self.sums.len());
        self.sums[end] - self.sums[start]
    }

    /// Mean of `data[start..end)`.
    #[inline]
    pub fn range_mean(&self, start: usize, end: usize) -> f64 {
        self.range_sum(start, end) / (end - start) as f64
    }

    /// Computes `SMA(X, w)` with slide 1 in O(N) using the prefix sums.
    pub fn sma(&self, window: usize) -> Result<Vec<f64>, TimeSeriesError> {
        let n = self.len();
        validate_window(window, n)?;
        let out_len = n - window + 1;
        let inv = 1.0 / window as f64;
        let mut out = Vec::with_capacity(out_len);
        for i in 0..out_len {
            out.push(self.range_sum(i, i + window) * inv);
        }
        Ok(out)
    }
}

fn validate_window(window: usize, n: usize) -> Result<(), TimeSeriesError> {
    if window == 0 {
        return Err(TimeSeriesError::InvalidParameter {
            name: "window",
            message: "moving-average window must be at least 1",
        });
    }
    if n < window {
        return Err(TimeSeriesError::TooShort {
            required: window,
            actual: n,
        });
    }
    Ok(())
}

/// Textbook O(N·w) simple moving average; retained as a test oracle for the
/// fast paths.
pub fn sma_naive(data: &[f64], window: usize) -> Result<Vec<f64>, TimeSeriesError> {
    validate_window(window, data.len())?;
    let inv = 1.0 / window as f64;
    Ok(data
        .windows(window)
        .map(|w| w.iter().sum::<f64>() * inv)
        .collect())
}

/// O(N) simple moving average with slide 1.
///
/// Equivalent to [`sma_naive`] up to floating-point rounding; uses a running
/// sum renormalized from scratch every `RENORM_INTERVAL` outputs to keep
/// rounding error from drifting on long streams.
pub fn sma(data: &[f64], window: usize) -> Result<Vec<f64>, TimeSeriesError> {
    validate_window(window, data.len())?;
    if window == 1 {
        return Ok(data.to_vec());
    }
    const RENORM_INTERVAL: usize = 4096;
    let inv = 1.0 / window as f64;
    let out_len = data.len() - window + 1;
    let mut out = Vec::with_capacity(out_len);
    let mut sum: f64 = data[..window].iter().sum();
    out.push(sum * inv);
    for i in 1..out_len {
        if i % RENORM_INTERVAL == 0 {
            sum = data[i..i + window].iter().sum();
        } else {
            sum += data[i + window - 1] - data[i - 1];
        }
        out.push(sum * inv);
    }
    Ok(out)
}

/// Simple moving average with an explicit slide (hop) size.
///
/// Emits one output per `slide` input positions: output `k` is the mean of
/// `data[k·slide .. k·slide + window)`. With `slide == window` this is the
/// disjoint ("tumbling") aggregation the pixel-aware preaggregation uses
/// (§4.4); with `slide == 1` it degenerates to [`sma`].
pub fn sma_strided(
    data: &[f64],
    window: usize,
    slide: usize,
) -> Result<Vec<f64>, TimeSeriesError> {
    validate_window(window, data.len())?;
    if slide == 0 {
        return Err(TimeSeriesError::InvalidParameter {
            name: "slide",
            message: "slide must be at least 1",
        });
    }
    let ps = PrefixSum::new(data);
    let n = data.len();
    let mut out = Vec::with_capacity((n - window) / slide + 1);
    let mut start = 0usize;
    while start + window <= n {
        out.push(ps.range_mean(start, start + window));
        start += slide;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * 0.31).sin() * 2.5 + (i as f64) * 0.01).collect()
    }

    #[test]
    fn window_one_is_identity() {
        let data = series(50);
        assert_eq!(sma(&data, 1).unwrap(), data);
        assert_eq!(sma_naive(&data, 1).unwrap(), data);
    }

    #[test]
    fn window_equal_length_yields_single_mean() {
        let data = series(32);
        let out = sma(&data, 32).unwrap();
        assert_eq!(out.len(), 1);
        let mean = data.iter().sum::<f64>() / 32.0;
        assert!((out[0] - mean).abs() < 1e-12);
    }

    #[test]
    fn invalid_windows_error() {
        let data = series(10);
        assert!(sma(&data, 0).is_err());
        assert!(sma(&data, 11).is_err());
        assert!(sma_strided(&data, 4, 0).is_err());
        assert!(sma(&[], 1).is_err());
    }

    #[test]
    fn fast_matches_naive() {
        let data = series(1000);
        for w in [2usize, 3, 7, 50, 999, 1000] {
            let a = sma(&data, w).unwrap();
            let b = sma_naive(&data, w).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-9, "w={w}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn prefix_sum_matches_naive() {
        let data = series(513);
        let ps = PrefixSum::new(&data);
        assert_eq!(ps.len(), 513);
        for w in [1usize, 5, 128, 513] {
            let a = ps.sma(w).unwrap();
            let b = sma_naive(&data, w).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn output_length_is_n_minus_w_plus_1() {
        let data = series(100);
        for w in [1usize, 2, 37, 100] {
            assert_eq!(sma(&data, w).unwrap().len(), 100 - w + 1);
        }
    }

    #[test]
    fn strided_with_slide_one_matches_sma() {
        let data = series(200);
        let a = sma_strided(&data, 9, 1).unwrap();
        let b = sma(&data, 9).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn tumbling_aggregation_groups_disjointly() {
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let out = sma_strided(&data, 4, 4).unwrap();
        assert_eq!(out, vec![1.5, 5.5, 9.5]);
    }

    #[test]
    fn tumbling_with_remainder_drops_partial_tail() {
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        // windows [0..4), [4..8); tail 8,9 is not a full window
        let out = sma_strided(&data, 4, 4).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn smoothing_reduces_roughness_on_noisy_data() {
        // Deterministic "noise": high-frequency oscillation.
        let data: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.05).sin() + 0.5 * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let smoothed = sma(&data, 10).unwrap();
        let r0 = crate::diff::roughness(&data).unwrap();
        let r1 = crate::diff::roughness(&smoothed).unwrap();
        assert!(r1 < r0 / 2.0, "roughness {r0} -> {r1}");
    }

    #[test]
    fn long_stream_running_sum_does_not_drift() {
        // 100k points with large offset stresses the renormalization.
        let data: Vec<f64> = (0..100_000)
            .map(|i| 1.0e6 + ((i as f64) * 0.013).sin())
            .collect();
        let fast = sma(&data, 97).unwrap();
        let ps = PrefixSum::new(&data);
        let exact = ps.sma(97).unwrap();
        let max_err = fast
            .iter()
            .zip(&exact)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-6, "max drift {max_err}");
    }
}
