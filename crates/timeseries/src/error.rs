//! Error type shared by the time-series kernel.

use std::fmt;

/// Errors produced by kernel operations on time series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeSeriesError {
    /// The input series was empty where at least one point is required.
    Empty,
    /// The input series was shorter than the minimum length required by the
    /// operation (e.g. a moving average window longer than the series).
    TooShort {
        /// Number of points required.
        required: usize,
        /// Number of points available.
        actual: usize,
    },
    /// A window/lag/stride parameter was zero or otherwise out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        message: &'static str,
    },
    /// The series has zero variance where a normalized statistic (z-score,
    /// kurtosis, autocorrelation) is undefined.
    ZeroVariance,
    /// The input contains a NaN or infinite sample. Telemetry pipelines
    /// routinely emit such values on collection gaps; they would silently
    /// poison every moment statistic, so validating entry points reject
    /// them with the offending position.
    NonFinite {
        /// Index of the first non-finite sample.
        index: usize,
    },
}

impl fmt::Display for TimeSeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeSeriesError::Empty => write!(f, "time series is empty"),
            TimeSeriesError::TooShort { required, actual } => write!(
                f,
                "time series too short: {actual} points, at least {required} required"
            ),
            TimeSeriesError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            TimeSeriesError::ZeroVariance => {
                write!(f, "statistic undefined on a zero-variance series")
            }
            TimeSeriesError::NonFinite { index } => {
                write!(f, "non-finite sample (NaN or infinity) at index {index}")
            }
        }
    }
}

impl std::error::Error for TimeSeriesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(TimeSeriesError::Empty.to_string(), "time series is empty");
        let e = TimeSeriesError::TooShort {
            required: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("at least 4"));
        let e = TimeSeriesError::InvalidParameter {
            name: "window",
            message: "must be nonzero",
        };
        assert!(e.to_string().contains("window"));
        assert!(TimeSeriesError::ZeroVariance.to_string().contains("zero-variance"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<TimeSeriesError>();
    }
}
