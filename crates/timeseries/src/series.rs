//! Owned time-series container with sampling metadata.
//!
//! ASAP operates on *temporally ordered, equi-spaced* data points (§2). The
//! [`TimeSeries`] type bundles the values with the sampling period and an
//! epoch so that window sizes (in points) can be reported back in natural
//! time units ("a weekly average") as the paper's figures do.

use crate::diff::roughness;
use crate::error::TimeSeriesError;
use crate::normalize::zscore;
use crate::stats::Moments;

/// An equi-spaced, temporally ordered series of `f64` samples.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeSeries {
    /// Human-readable name ("Taxi", "machine_temp", ...).
    name: String,
    /// Sample values in time order.
    values: Vec<f64>,
    /// Seconds between consecutive samples.
    period_secs: f64,
    /// Seconds since the UNIX epoch of the first sample.
    start_epoch_secs: f64,
}

impl TimeSeries {
    /// Creates a series from raw values with a given sampling period.
    pub fn new(name: impl Into<String>, values: Vec<f64>, period_secs: f64) -> Self {
        TimeSeries {
            name: name.into(),
            values,
            period_secs,
            start_epoch_secs: 0.0,
        }
    }

    /// Sets the epoch of the first sample (builder style).
    pub fn with_start_epoch(mut self, start_epoch_secs: f64) -> Self {
        self.start_epoch_secs = start_epoch_secs;
        self
    }

    /// Series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Underlying values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the underlying values.
    pub fn values_mut(&mut self) -> &mut Vec<f64> {
        &mut self.values
    }

    /// Consumes the series, returning its values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Seconds between consecutive samples.
    pub fn period_secs(&self) -> f64 {
        self.period_secs
    }

    /// Epoch (seconds) of the first sample.
    pub fn start_epoch_secs(&self) -> f64 {
        self.start_epoch_secs
    }

    /// Total covered duration in seconds (`(len−1) · period`), 0 when empty.
    pub fn duration_secs(&self) -> f64 {
        if self.values.len() < 2 {
            0.0
        } else {
            (self.values.len() - 1) as f64 * self.period_secs
        }
    }

    /// Timestamp (epoch seconds) of sample `i`.
    pub fn timestamp(&self, i: usize) -> f64 {
        self.start_epoch_secs + i as f64 * self.period_secs
    }

    /// One-pass moments over the values.
    pub fn moments(&self) -> Result<Moments, TimeSeriesError> {
        if self.values.is_empty() {
            return Err(TimeSeriesError::Empty);
        }
        Ok(Moments::from_slice(&self.values))
    }

    /// ASAP roughness of the series (σ of first differences).
    pub fn roughness(&self) -> Result<f64, TimeSeriesError> {
        roughness(&self.values)
    }

    /// Kurtosis of the series (fourth standardized moment).
    pub fn kurtosis(&self) -> Result<f64, TimeSeriesError> {
        let k = self.moments()?.kurtosis();
        if k.is_nan() {
            Err(TimeSeriesError::ZeroVariance)
        } else {
            Ok(k)
        }
    }

    /// Returns a z-scored copy (the presentation normalization the paper
    /// applies to every figure).
    pub fn zscored(&self) -> Result<TimeSeries, TimeSeriesError> {
        Ok(TimeSeries {
            name: self.name.clone(),
            values: zscore(&self.values)?,
            period_secs: self.period_secs,
            start_epoch_secs: self.start_epoch_secs,
        })
    }

    /// Converts a window expressed in points to seconds of wall-clock time.
    pub fn window_to_secs(&self, window_points: usize) -> f64 {
        window_points as f64 * self.period_secs
    }

    /// Returns the sub-series of the last `n` points (the "target interval
    /// for visualization" of §2), or the whole series when shorter.
    pub fn tail(&self, n: usize) -> TimeSeries {
        let start = self.values.len().saturating_sub(n);
        TimeSeries {
            name: self.name.clone(),
            values: self.values[start..].to_vec(),
            period_secs: self.period_secs,
            start_epoch_secs: self.start_epoch_secs + start as f64 * self.period_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts() -> TimeSeries {
        TimeSeries::new("t", (0..100).map(|i| i as f64).collect(), 60.0)
            .with_start_epoch(1_000_000.0)
    }

    #[test]
    fn metadata_accessors() {
        let s = ts();
        assert_eq!(s.name(), "t");
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
        assert_eq!(s.period_secs(), 60.0);
        assert_eq!(s.duration_secs(), 99.0 * 60.0);
        assert_eq!(s.timestamp(0), 1_000_000.0);
        assert_eq!(s.timestamp(10), 1_000_600.0);
        assert_eq!(s.window_to_secs(5), 300.0);
    }

    #[test]
    fn tail_keeps_alignment() {
        let s = ts();
        let t = s.tail(10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.values()[0], 90.0);
        assert_eq!(t.timestamp(0), s.timestamp(90));
        // Longer than the series: returns everything.
        assert_eq!(s.tail(1000).len(), 100);
    }

    #[test]
    fn stats_delegate_to_kernel() {
        let s = ts();
        assert!(s.roughness().unwrap() < 1e-12); // straight line
        let m = s.moments().unwrap();
        assert!((m.mean() - 49.5).abs() < 1e-9);
        let z = s.zscored().unwrap();
        assert!(z.moments().unwrap().mean().abs() < 1e-10);
        assert_eq!(z.period_secs(), 60.0);
    }

    #[test]
    fn empty_series_errors() {
        let e = TimeSeries::new("e", vec![], 1.0);
        assert!(e.is_empty());
        assert!(e.moments().is_err());
        assert!(e.roughness().is_err());
        assert_eq!(e.duration_secs(), 0.0);
    }

    #[test]
    fn kurtosis_error_on_constant() {
        let c = TimeSeries::new("c", vec![1.0; 10], 1.0);
        assert_eq!(c.kurtosis(), Err(TimeSeriesError::ZeroVariance));
    }

    #[test]
    fn into_values_round_trips() {
        let s = ts();
        let v = s.clone().into_values();
        assert_eq!(v.len(), 100);
        assert_eq!(&v, s.values());
    }
}
