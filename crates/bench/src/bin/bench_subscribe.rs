//! Subscription benchmark: live `SUBSCRIBE` frame push vs polling the
//! same smoothing out of the store with `SMOOTH` queries.
//!
//! One subscriber registers `SUBSCRIBE req.rate EVERY <n>` before any
//! data exists; a client then streams the document over loopback TCP
//! while the subscriber tails the pushed `FRAME` lines. The push phase
//! is timed from first ingest byte to the last expected frame read —
//! ingest and delivery overlap, which is the point of push. Before any
//! number is trusted, the pushed stream is asserted byte-identical per
//! series to the serial oracle: the stored points replayed through a
//! fresh `StreamingAsap` with the same template. The poll phase then
//! issues one `SMOOTH` query per refresh tick over the same trailing
//! window against the warmed store — the request/response cost a
//! dashboard pays for the same refresh cadence without `SUBSCRIBE`.
//!
//! Hand-timed wall clock, median of `BENCH_SUBSCRIBE_RUNS` runs.
//! Caveat: on a 1-CPU host the ingest pipeline, the shard-writer fanout,
//! and the subscriber share one core, so push wall time includes
//! serialization that vanishes with real parallelism — compare phases
//! within one run, not across machines.
//!
//! Knobs: `BENCH_SUBSCRIBE_POINTS` (records per series, default
//! 20_000), `BENCH_SUBSCRIBE_SERIES` (default 4),
//! `BENCH_SUBSCRIBE_EVERY` (refresh interval, default 200),
//! `BENCH_SUBSCRIBE_RUNS` (default 3).

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use asap_core::{StreamingAsap, StreamingConfig};
use asap_server::{protocol, Server, ServerConfig};
use asap_tsdb::{RangeQuery, Selector, ShardedConfig, ShardedDb};

const SUB_WINDOW: usize = 1_000;
const SUB_RESOLUTION: usize = 100;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build_doc(series: usize, points: usize) -> String {
    let mut doc = String::with_capacity(series * points * 40);
    for t in 0..points {
        for h in 0..series {
            doc.push_str(&format!(
                "req,host=h{h:02} rate={:.4} {t}\n",
                (std::f64::consts::TAU * t as f64 / 900.0).sin() + h as f64,
            ));
        }
    }
    doc
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Reads one `OK …`-to-`END` response off an established connection.
fn read_block(reader: &mut impl BufRead) -> usize {
    let mut bytes = 0;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "response truncated");
        bytes += n;
        if line.trim() == "END" || line.starts_with("ERR") {
            assert!(!line.starts_with("ERR"), "poll query failed: {line}");
            return bytes;
        }
    }
}

fn main() {
    let points = env_usize("BENCH_SUBSCRIBE_POINTS", 20_000);
    let series = env_usize("BENCH_SUBSCRIBE_SERIES", 4);
    let every = env_usize("BENCH_SUBSCRIBE_EVERY", 200).max(1);
    let runs = env_usize("BENCH_SUBSCRIBE_RUNS", 3).max(1);
    let doc = build_doc(series, points);
    let total_points = series * points;

    println!(
        "subscribe push vs poll: {series} series x {points} records, window {SUB_WINDOW}, \
         refresh every {every}, median of {runs} ({} host cpus)",
        std::thread::available_parallelism().map_or(0, usize::from)
    );

    let config = || ServerConfig {
        poll_interval: Duration::from_millis(2),
        subscribe_window: SUB_WINDOW,
        subscribe_resolution: SUB_RESOLUTION,
        subscribe_every: every,
        ..ServerConfig::default()
    };

    let mut push_secs_runs = Vec::new();
    let mut poll_secs_runs = Vec::new();
    let mut expected_total = 0usize;
    let mut polls = 0usize;
    for _ in 0..runs {
        let server = Server::start(
            ShardedDb::with_config(ShardedConfig::new(4, 4096)),
            config(),
        )
        .expect("server start");

        // Subscribe before any series exists.
        let sub = TcpStream::connect(server.query_addr()).expect("connect subscriber");
        sub.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        (&sub)
            .write_all(format!("SUBSCRIBE req.rate EVERY {every}\n").as_bytes())
            .unwrap();
        let mut reader = BufReader::new(&sub);
        let mut ack = String::new();
        reader.read_line(&mut ack).unwrap();
        assert!(ack.starts_with("OK subscribed"), "{ack}");

        // Push phase: ingest streams while the subscriber tails frames.
        // Frames per series for an in-order stream are deterministic, so
        // the reader knows exactly how many lines to await.
        let frames_per_series = {
            let mut op =
                StreamingAsap::new(StreamingConfig::new(SUB_WINDOW, SUB_RESOLUTION, every));
            (0..points)
                .filter(|&t| {
                    op.push((t as f64 / 900.0).sin()).unwrap().is_some()
                })
                .count()
        };
        expected_total = frames_per_series * series;
        let ingest_addr = server.ingest_addr();
        let doc_ref = &doc;
        let t = Instant::now();
        let push_secs = std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut conn = TcpStream::connect(ingest_addr).expect("connect ingest");
                for piece in doc_ref.as_bytes().chunks(64 * 1024) {
                    conn.write_all(piece).expect("send");
                }
                conn.shutdown(Shutdown::Write).expect("half-close");
                let mut report = String::new();
                conn.read_to_string(&mut report).expect("report");
                assert!(report.contains("clean=true"), "{report}");
            });
            let mut pushed: BTreeMap<String, Vec<String>> = BTreeMap::new();
            for _ in 0..expected_total {
                let mut line = String::new();
                assert!(reader.read_line(&mut line).expect("read frame") > 0, "eof");
                let key = line
                    .strip_prefix("FRAME ")
                    .unwrap_or_else(|| panic!("not a frame: {line}"))
                    .split_whitespace()
                    .next()
                    .unwrap()
                    .to_owned();
                pushed.entry(key).or_default().push(line);
            }
            let secs = t.elapsed().as_secs_f64();
            // Correctness gate: pushed stream ≡ serial replay of the
            // stored points through the same template.
            for (key, stored) in server
                .db()
                .query_selector(&Selector::any(), RangeQuery::raw(i64::MIN + 1, i64::MAX))
                .unwrap()
            {
                let mut op =
                    StreamingAsap::new(StreamingConfig::new(SUB_WINDOW, SUB_RESOLUTION, every));
                let mut want = Vec::new();
                for point in stored {
                    if let Some(frame) = op.push(point.value).unwrap() {
                        want.push(protocol::render_frame(&key, &frame));
                    }
                }
                assert_eq!(
                    pushed.get(&key.to_string()),
                    Some(&want),
                    "pushed stream diverged from the serial oracle for {key}"
                );
            }
            secs
        });
        push_secs_runs.push(push_secs);

        // Poll phase: the same refresh cadence paid as request/response
        // against the warmed store — one SMOOTH per refresh tick over
        // the trailing window (one query smooths all matching series).
        polls = frames_per_series;
        let conn = TcpStream::connect(server.query_addr()).expect("connect poller");
        conn.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut poll_reader = BufReader::new(&conn);
        let t = Instant::now();
        for i in 0..polls {
            let end = (points - 1).min(SUB_WINDOW + (i + 1) * every) as i64;
            let start = (end - SUB_WINDOW as i64).max(0);
            (&conn)
                .write_all(
                    format!("SMOOTH req.rate {start} {end} 1 {SUB_RESOLUTION}\n").as_bytes(),
                )
                .unwrap();
            read_block(&mut poll_reader);
        }
        poll_secs_runs.push(t.elapsed().as_secs_f64());
        server.shutdown();
    }

    let push_secs = median(push_secs_runs);
    let poll_secs = median(poll_secs_runs);
    let push_fps = expected_total as f64 / push_secs;
    let poll_qps = polls as f64 / poll_secs;
    println!(
        "push: {expected_total} frames in {:.1} ms ({push_fps:.3e} frames/s, \
         ingest overlapped, {total_points} pts)",
        push_secs * 1e3
    );
    println!(
        "poll: {polls} SMOOTH queries in {:.1} ms ({poll_qps:.3e} queries/s, warmed store)",
        poll_secs * 1e3
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"subscribe_push_vs_poll\",\n");
    json.push_str(
        "  \"note\": \"hand-timed wall clock; push phase times ingest + live frame delivery \
         overlapped (the pushed stream is asserted byte-identical per series to a serial \
         StreamingAsap replay of the stored points before timing is trusted); poll phase times \
         one SMOOTH per refresh tick against the warmed store; on a 1-CPU host ingest, fanout, \
         and the subscriber serialize onto one core, so compare phases within one run, not \
         across machines\",\n",
    );
    json.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, usize::from)
    ));
    json.push_str(&format!("  \"series\": {series},\n"));
    json.push_str(&format!("  \"records_per_series\": {points},\n"));
    json.push_str(&format!("  \"window_points\": {SUB_WINDOW},\n"));
    json.push_str(&format!("  \"resolution\": {SUB_RESOLUTION},\n"));
    json.push_str(&format!("  \"refresh_every\": {every},\n"));
    json.push_str(&format!("  \"runs\": {runs},\n"));
    json.push_str(&format!(
        "  \"push\": {{\"frames\": {expected_total}, \"wall_ms\": {:.2}, \
         \"frames_per_sec\": {push_fps:.0}}},\n",
        push_secs * 1e3
    ));
    json.push_str(&format!(
        "  \"poll\": {{\"queries\": {polls}, \"wall_ms\": {:.2}, \
         \"queries_per_sec\": {poll_qps:.0}}}\n",
        poll_secs * 1e3
    ));
    json.push_str("}\n");

    let mut file =
        std::fs::File::create("BENCH_subscribe.json").expect("create BENCH_subscribe.json");
    file.write_all(json.as_bytes()).expect("write BENCH_subscribe.json");
    println!("wrote BENCH_subscribe.json");
}
