//! Checkpoint cost benchmark: full snapshot vs incremental chain delta
//! as the store grows.
//!
//! The claim behind snapshot v3 (`asap_tsdb::chain`): a full snapshot
//! costs O(total data) every time, while an incremental chain
//! checkpoint costs O(write activity since the last pass). This bench
//! measures both on the same stores — for each store size it times (a)
//! a full `save_sharded` of the whole store and (b) a chain delta
//! checkpoint covering one fixed-size write batch — so the full column
//! should grow with store size while the delta column stays flat.
//!
//! Before any number is trusted, the chain (base + every timed delta)
//! is folded back through `load_chain` into a fresh store which is
//! asserted identical to the live one — each measured size therefore
//! also proves its recovery set is complete. Results are written to
//! `BENCH_checkpoint.json` (see `EXPERIMENTS.md` for the recorded run).
//!
//! Hand-timed wall clock, median of `BENCH_CHECKPOINT_RUNS` runs — the
//! criterion shim's budgeted micro-timing is wrong for multi-threaded
//! phases.
//!
//! Knobs: `BENCH_CHECKPOINT_POINTS` (records per series, default
//! 2_000), `BENCH_CHECKPOINT_SIZES` (comma-separated series counts,
//! default `8,32,128`), `BENCH_CHECKPOINT_WRITE_SERIES` (series touched
//! per delta batch, default 4), `BENCH_CHECKPOINT_WRITE_POINTS` (points
//! per touched series per batch, default 500), `BENCH_CHECKPOINT_RUNS`
//! (default 3).

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use asap_tsdb::{
    CheckpointChain, DataPoint, RangeQuery, Selector, SeriesKey, ShardedConfig, ShardedDb,
};

const BLOCK_CAPACITY: usize = 4096;
const SHARDS: usize = 4;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_sizes(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .and_then(|v| {
            v.split(',')
                .map(|s| s.trim().parse().ok())
                .collect::<Option<Vec<usize>>>()
        })
        .filter(|sizes| !sizes.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("asap-bench-checkpoint-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(series: usize) -> SeriesKey {
    SeriesKey::metric("req").with_tag("host", format!("h{series:04}"))
}

fn full() -> RangeQuery {
    RangeQuery::raw(i64::MIN + 1, i64::MAX)
}

fn main() {
    let points = env_usize("BENCH_CHECKPOINT_POINTS", 2_000);
    let sizes = env_sizes("BENCH_CHECKPOINT_SIZES", &[8, 32, 128]);
    let write_series = env_usize("BENCH_CHECKPOINT_WRITE_SERIES", 4).max(1);
    let write_points = env_usize("BENCH_CHECKPOINT_WRITE_POINTS", 500).max(1);
    let runs = env_usize("BENCH_CHECKPOINT_RUNS", 3).max(1);
    let batch_points = write_series * write_points;

    println!(
        "checkpoint cost: store sizes {sizes:?} series x {points} records, fixed write batch \
         of {write_series} series x {write_points} points = {batch_points} pts per delta, \
         {SHARDS} shards, median of {runs} ({} host cpus)",
        std::thread::available_parallelism().map_or(0, usize::from)
    );
    println!(
        "{:>10} {:>12} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "series", "store pts", "full ms", "full bytes", "delta ms", "delta bytes", "full/delta"
    );

    let mut rows = Vec::new();
    for &series in &sizes {
        let db = ShardedDb::with_config(ShardedConfig::new(SHARDS, BLOCK_CAPACITY));
        for s in 0..series {
            let k = key(s);
            for t in 0..points {
                db.write(
                    &k,
                    DataPoint::new(
                        t as i64,
                        (std::f64::consts::TAU * t as f64 / 900.0).sin() + s as f64,
                    ),
                )
                .unwrap();
            }
        }
        let total_points = series * points;

        // (a) Full snapshot of the whole store — O(total data) by
        // construction, measured to show the scaling the chain avoids.
        let full_path = temp_dir(&format!("full-{series}"));
        std::fs::create_dir_all(&full_path).unwrap();
        let full_file = full_path.join("snapshot.bin");
        let full_secs = median(
            (0..runs)
                .map(|_| {
                    let t = Instant::now();
                    db.save(&full_file).unwrap();
                    t.elapsed().as_secs_f64()
                })
                .collect(),
        );
        let full_bytes = std::fs::metadata(&full_file).unwrap().len();
        std::fs::remove_dir_all(&full_path).ok();

        // (b) Incremental chain delta covering one fixed write batch.
        // The base (untimed) captures the initial store; each timed run
        // appends the same-sized batch and checkpoints just that.
        let chain_dir = temp_dir(&format!("chain-{series}"));
        let mut chain = CheckpointChain::open(&chain_dir, runs + 2).unwrap();
        let base = chain.checkpoint(&db, None).unwrap();
        assert!(base.rebased && base.completed);
        let mut delta_bytes = 0u64;
        let mut next_ts = points as i64;
        let delta_secs = median(
            (0..runs)
                .map(|run| {
                    for s in 0..write_series {
                        let k = key(s);
                        for t in 0..write_points {
                            db.write(
                                &k,
                                DataPoint::new(next_ts + t as i64, (run + s + t) as f64),
                            )
                            .unwrap();
                        }
                    }
                    next_ts += write_points as i64;
                    let t = Instant::now();
                    let report = chain.checkpoint(&db, None).unwrap();
                    let secs = t.elapsed().as_secs_f64();
                    assert!(report.completed && !report.rebased);
                    assert_eq!(report.series_written, write_series);
                    delta_bytes = report.bytes_written;
                    secs
                })
                .collect(),
        );

        // Correctness gate: the chain alone (base + every timed delta)
        // rebuilds the live store — the recovery set is complete.
        let recovered =
            asap_tsdb::load_chain(&chain_dir, ShardedConfig::new(SHARDS, BLOCK_CAPACITY)).unwrap();
        assert_eq!(
            recovered.query_selector(&Selector::any(), full()).unwrap(),
            db.query_selector(&Selector::any(), full()).unwrap(),
            "folded chain diverges from the live store at {series} series"
        );
        std::fs::remove_dir_all(&chain_dir).ok();

        println!(
            "{series:>10} {total_points:>12} {:>10.2} {full_bytes:>12} {:>10.2} \
             {delta_bytes:>12} {:>10.1}",
            full_secs * 1e3,
            delta_secs * 1e3,
            full_secs / delta_secs,
        );
        rows.push((
            series,
            total_points,
            full_secs,
            full_bytes,
            delta_secs,
            delta_bytes,
        ));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"checkpoint_cost\",\n");
    json.push_str(
        "  \"note\": \"hand-timed wall clock (not the criterion shim); absolute numbers are \
         machine-relative, compare rows within one run; each row times a full save of the \
         whole store against an incremental chain delta covering one fixed-size write batch \
         on the same store, and folds the chain back through load_chain asserting it \
         identical to the live store before the timing is trusted; full cost should grow \
         with store size while delta cost tracks the (constant) write batch\",\n",
    );
    json.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, usize::from)
    ));
    json.push_str(&format!("  \"records_per_series\": {points},\n"));
    json.push_str(&format!(
        "  \"delta_batch\": {{\"series\": {write_series}, \"points_per_series\": \
         {write_points}, \"total_points\": {batch_points}}},\n"
    ));
    json.push_str(&format!("  \"shards\": {SHARDS},\n"));
    json.push_str(&format!("  \"runs_per_size\": {runs},\n"));
    json.push_str("  \"sizes\": [\n");
    for (i, (series, total_points, full_secs, full_bytes, delta_secs, delta_bytes)) in
        rows.iter().enumerate()
    {
        json.push_str(&format!(
            "    {{\"series\": {series}, \"store_points\": {total_points}, \
             \"full_ms\": {:.3}, \"full_bytes\": {full_bytes}, \"delta_ms\": {:.3}, \
             \"delta_bytes\": {delta_bytes}, \"full_over_delta\": {:.2}}}{}\n",
            full_secs * 1e3,
            delta_secs * 1e3,
            full_secs / delta_secs,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let mut file =
        std::fs::File::create("BENCH_checkpoint.json").expect("create BENCH_checkpoint.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_checkpoint.json");
    println!("wrote BENCH_checkpoint.json");
}
