//! Ablation of ASAP's search mechanisms (a design-choice study beyond the
//! paper's Figure 11, which lesions whole optimizations).
//!
//! Toggles the Eq. 6 lower bound, the Eq. 5 roughness-estimate skip, and
//! the Algorithm 2 binary refinement independently, reporting candidate
//! counts and achieved roughness across the Table 2 datasets.
//!
//! Run: `cargo run --release -p asap-bench --bin ablation_pruning`

use asap_core::search::ablation::{search_ablated, AblationFlags};
use asap_core::{preaggregate, AsapConfig, SearchStrategy};
use asap_eval::{report, Table};

fn main() {
    println!("== Ablation: Algorithm 1/2 mechanisms, 1200 px ==\n");
    let variants: [(&str, AblationFlags); 5] = [
        ("full ASAP", AblationFlags::all()),
        (
            "no lower bound",
            AblationFlags {
                lower_bound: false,
                ..AblationFlags::all()
            },
        ),
        (
            "no est. prune",
            AblationFlags {
                roughness_estimate: false,
                ..AblationFlags::all()
            },
        ),
        (
            "no refinement",
            AblationFlags {
                refinement: false,
                ..AblationFlags::all()
            },
        ),
        ("peaks only", AblationFlags::none()),
    ];

    let mut cand_table = Table::new(vec!["Variant", "avg candidates", "avg roughness ratio"]);
    let datasets: Vec<(String, Vec<f64>)> = asap_bench::sweep_datasets()
        .iter()
        .filter(|d| d.n_points <= 100_000)
        .map(|d| (d.name.to_string(), d.generate().into_values()))
        .collect();

    // Exhaustive references per dataset.
    let refs: Vec<f64> = datasets
        .iter()
        .map(|(_, raw)| {
            let (agg, _) = preaggregate(raw, 1200);
            let cfg = AsapConfig {
                resolution: 1200,
                ..AsapConfig::default()
            };
            SearchStrategy::Exhaustive
                .search(&agg, &cfg)
                .map(|o| o.roughness.max(1e-12))
                .unwrap_or(1.0)
        })
        .collect();

    for (name, flags) in variants {
        let mut cand_sum = 0usize;
        let mut ratio_sum = 0.0f64;
        for ((_, raw), reference) in datasets.iter().zip(&refs) {
            let (agg, _) = preaggregate(raw, 1200);
            let cfg = AsapConfig {
                resolution: 1200,
                ..AsapConfig::default()
            };
            let out = search_ablated(&agg, &cfg, flags).expect("searchable");
            cand_sum += out.candidates_checked;
            ratio_sum += out.roughness.max(1e-12) / reference;
        }
        cand_table.row(vec![
            name.to_string(),
            report::f(cand_sum as f64 / datasets.len() as f64, 1),
            report::f(ratio_sum / datasets.len() as f64, 3),
        ]);
    }
    print!("{cand_table}");
    println!("\nReading: the estimate prune and lower bound buy candidate reductions;");
    println!("the refinement buys quality (roughness ratio closer to 1.0). All three");
    println!("are needed for Table 2's 'same window, ~13x fewer candidates'.");
}
