//! Table 2: batch results of exhaustive search vs ASAP on every evaluation
//! dataset, target resolution 1200 pixels.
//!
//! The headline: ASAP finds the same smoothing parameter as exhaustive
//! search while checking ~13× fewer candidates.
//!
//! Run: `cargo run --release -p asap-bench --bin table2_batch_results`
//! (set ASAP_FAST=1 to skip the 4.2M-point gas sensor)

use asap_eval::{table2, Table};

fn main() {
    println!("== Table 2: exhaustive vs ASAP, 1200 px ==\n");
    let datasets = asap_bench::sweep_datasets();
    let rows = table2::run_all(&datasets, 1200);

    let mut table = Table::new(vec![
        "Dataset",
        "# points",
        "Exh. window",
        "Exh. # cand",
        "ASAP window",
        "ASAP # cand",
        "Agree",
    ]);
    let mut sum_ex = 0usize;
    let mut sum_asap = 0usize;
    let mut agree = 0usize;
    for r in &rows {
        table.row(vec![
            r.dataset.to_string(),
            r.n_points.to_string(),
            r.exhaustive_window.to_string(),
            r.exhaustive_candidates.to_string(),
            r.asap_window.to_string(),
            r.asap_candidates.to_string(),
            if r.windows_agree() { "yes" } else { "NO" }.to_string(),
        ]);
        sum_ex += r.exhaustive_candidates;
        sum_asap += r.asap_candidates;
        agree += usize::from(r.windows_agree());
    }
    print!("{table}");
    println!(
        "\nagreement: {agree}/{} datasets | avg candidates: exhaustive {:.2}, ASAP {:.2} ({:.1}x fewer)",
        rows.len(),
        sum_ex as f64 / rows.len() as f64,
        sum_asap as f64 / rows.len() as f64,
        sum_ex as f64 / sum_asap.max(1) as f64
    );
    println!("paper: same window on 11/11; avg 113.64 vs 8.64 candidates (13x fewer)");
}
