//! Streaming ingest benchmark: out-of-order byte streams through
//! `ingest_reader` vs the in-memory pipeline vs serial ingest.
//!
//! Measures, per (shards, parsers) configuration, the wall-clock
//! throughput of draining a lateness-shuffled line-protocol byte stream
//! through `tsdb::ingest::ingest_reader` (chunker → parser workers →
//! per-shard writers with a reorder stage), against two references on
//! the same data: the serial `line_protocol::ingest` of the *sorted*
//! document, and the in-memory `pipeline_ingest` of the sorted document.
//! Before any number is trusted, the streamed store is asserted
//! identical to the sorted serial oracle — the reorder stage must repair
//! the disorder losslessly, with zero write failures. Results are
//! written to `BENCH_stream.json` (see `EXPERIMENTS.md` for the
//! recorded run).
//!
//! Hand-timed wall clock, median of `BENCH_STREAM_RUNS` runs — the
//! criterion shim's budgeted micro-timing is wrong for multi-threaded
//! phases, which need one timed span per full ingest.
//!
//! Knobs: `BENCH_STREAM_POINTS` (records per series, default 50_000),
//! `BENCH_STREAM_SERIES` (default 8), `BENCH_STREAM_RUNS` (default 3),
//! `BENCH_STREAM_LATENESS` (shuffle window in timestamp units,
//! default 64).

use std::io::Write as _;
use std::time::Instant;

use asap_tsdb::{
    ingest_reader, line_protocol, pipeline_ingest, IngestConfig, RangeQuery, Selector,
    SeriesKey, ShardedConfig, ShardedDb, Tsdb, TsdbConfig,
};

const BLOCK_CAPACITY: usize = 4096;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One interleaved line-protocol document, sorted: `series` hosts ×
/// `points` samples, two fields per record, explicit timestamps.
fn build_sorted_doc(series: usize, points: usize) -> String {
    let mut doc = String::with_capacity(series * points * 48);
    for t in 0..points {
        for h in 0..series {
            doc.push_str(&format!(
                "req,host=h{h:02} rate={:.4},errors={} {t}\n",
                (std::f64::consts::TAU * t as f64 / 900.0).sin() + h as f64,
                (t % 17) as f64,
            ));
        }
    }
    doc
}

/// The same document with its lines displaced by a deterministic jitter
/// strictly below `lateness` — bounded disorder the reorder stage must
/// repair without drops.
fn shuffle_within(doc: &str, lateness: i64) -> String {
    let mut keyed: Vec<(i64, usize, &str)> = doc
        .lines()
        .enumerate()
        .map(|(i, line)| {
            let ts: i64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            (ts + (i as i64 * 13) % lateness, i, line)
        })
        .collect();
    keyed.sort_by_key(|&(key, i, _)| (key, i));
    let mut out = String::with_capacity(doc.len());
    for (_, _, line) in keyed {
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let points = env_usize("BENCH_STREAM_POINTS", 50_000);
    let series = env_usize("BENCH_STREAM_SERIES", 8);
    let runs = env_usize("BENCH_STREAM_RUNS", 3).max(1);
    let lateness = env_usize("BENCH_STREAM_LATENESS", 64).max(1) as i64;
    let sorted = build_sorted_doc(series, points);
    let shuffled = shuffle_within(&sorted, lateness);
    let total_points = series * points * 2;

    println!(
        "streaming ingest: {series} series x {points} records (x2 fields = {total_points} pts), \
         disorder window {lateness}, median of {runs} ({} host cpus)",
        std::thread::available_parallelism().map_or(0, usize::from)
    );

    // Serial baseline: parse + write the *sorted* document on one thread.
    let serial_secs = median(
        (0..runs)
            .map(|_| {
                let db = Tsdb::with_config(TsdbConfig {
                    block_capacity: BLOCK_CAPACITY,
                });
                let t = Instant::now();
                let n = line_protocol::ingest(&db, &sorted, 0).unwrap();
                let secs = t.elapsed().as_secs_f64();
                assert_eq!(n, total_points);
                secs
            })
            .collect(),
    );
    let serial_pts_per_sec = total_points as f64 / serial_secs;
    println!(
        "{:>7} {:>8} {:>14} {:>12}   (serial baseline, sorted input)",
        "-",
        "-",
        format!("{serial_pts_per_sec:.3e}"),
        format!("{:.1}", serial_secs * 1e3)
    );

    // The oracle every streamed store is checked against.
    let oracle = Tsdb::with_config(TsdbConfig {
        block_capacity: BLOCK_CAPACITY,
    });
    line_protocol::ingest(&oracle, &sorted, 0).unwrap();
    let oracle_out = oracle
        .query_selector(&Selector::any(), RangeQuery::raw(i64::MIN + 1, i64::MAX))
        .unwrap();

    // In-memory pipeline reference on the sorted document (no reorder
    // stage): what streaming overhead should be compared against.
    let pipeline_config = IngestConfig {
        parsers: 4,
        queue_depth: 8,
        chunk_lines: 1024,
        lateness: None,
        ..IngestConfig::default()
    };
    let pipeline_secs = median(
        (0..runs)
            .map(|_| {
                let db = ShardedDb::with_config(ShardedConfig::new(4, BLOCK_CAPACITY));
                let t = Instant::now();
                let report = pipeline_ingest(&db, &sorted, 0, &pipeline_config).unwrap();
                let secs = t.elapsed().as_secs_f64();
                assert!(report.is_clean(), "{report:?}");
                assert_eq!(report.points, total_points);
                secs
            })
            .collect(),
    );
    let pipeline_pts_per_sec = total_points as f64 / pipeline_secs;
    println!(
        "{:>7} {:>8} {:>14} {:>12}   (in-memory pipeline, sorted input, 4 shards)",
        "-",
        "-",
        format!("{pipeline_pts_per_sec:.3e}"),
        format!("{:.1}", pipeline_secs * 1e3)
    );

    println!(
        "{:>7} {:>8} {:>14} {:>12} {:>10} {:>10}",
        "shards", "parsers", "stream pts/s", "stream ms", "reordered", "vs serial"
    );
    let mut rows = Vec::new();
    for &(shards, parsers) in &[(1usize, 1usize), (1, 4), (2, 4), (4, 4), (8, 4), (8, 8)] {
        let config = IngestConfig {
            parsers,
            queue_depth: 8,
            chunk_lines: 1024,
            lateness: Some(lateness),
            ..IngestConfig::default()
        };
        let mut reordered = 0usize;
        let secs = median(
            (0..runs)
                .map(|_| {
                    let db = ShardedDb::with_config(ShardedConfig::new(shards, BLOCK_CAPACITY));
                    let t = Instant::now();
                    let report = ingest_reader(
                        &db,
                        std::io::Cursor::new(shuffled.as_bytes()),
                        0,
                        &config,
                    )
                    .unwrap();
                    let secs = t.elapsed().as_secs_f64();
                    assert!(report.is_clean(), "{report:?}");
                    assert_eq!(report.points, total_points);
                    assert_eq!(report.dropped_late, 0, "shuffle exceeded lateness");
                    reordered = report.reordered;
                    secs
                })
                .collect(),
        );
        // Correctness gate: the measured path must equal the oracle.
        let db = ShardedDb::with_config(ShardedConfig::new(shards, BLOCK_CAPACITY));
        ingest_reader(&db, std::io::Cursor::new(shuffled.as_bytes()), 0, &config).unwrap();
        assert_eq!(
            db.query_selector(&Selector::any(), RangeQuery::raw(i64::MIN + 1, i64::MAX))
                .unwrap(),
            oracle_out,
            "streamed output diverges from sorted serial oracle at shards={shards}"
        );
        // Spot-check one series is genuinely queryable through the bridge.
        let key = SeriesKey::metric("req.rate").with_tag("host", "h00");
        assert_eq!(
            db.query(&key, RangeQuery::raw(0, points as i64)).unwrap().len(),
            points
        );
        let pts_per_sec = total_points as f64 / secs;
        println!(
            "{:>7} {:>8} {:>14.3e} {:>12.1} {:>10} {:>10.2}",
            shards,
            parsers,
            pts_per_sec,
            secs * 1e3,
            reordered,
            pts_per_sec / serial_pts_per_sec
        );
        rows.push((shards, parsers, pts_per_sec, secs, reordered));
    }

    let best = rows
        .iter()
        .map(|&(_, _, p, _, _)| p)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "best streaming throughput vs sorted serial ingest: {:.2}x",
        best / serial_pts_per_sec
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"stream_ingest\",\n");
    json.push_str(
        "  \"note\": \"hand-timed wall clock (not the criterion shim); absolute numbers are \
         machine-relative, compare configurations within one run; the streamed store is \
         asserted identical to the sorted serial oracle before timing is trusted — the input \
         stream is lateness-shuffled, so every configuration also pays the reorder stage\",\n",
    );
    json.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, usize::from)
    ));
    json.push_str(&format!("  \"series\": {series},\n"));
    json.push_str(&format!("  \"records_per_series\": {points},\n"));
    json.push_str(&format!("  \"total_points\": {total_points},\n"));
    json.push_str(&format!("  \"disorder_window\": {lateness},\n"));
    json.push_str(&format!("  \"runs_per_config\": {runs},\n"));
    json.push_str(&format!(
        "  \"serial_baseline\": {{\"points_per_sec\": {serial_pts_per_sec:.0}, \"wall_ms\": {:.2}}},\n",
        serial_secs * 1e3
    ));
    json.push_str(&format!(
        "  \"in_memory_pipeline\": {{\"points_per_sec\": {pipeline_pts_per_sec:.0}, \"wall_ms\": {:.2}}},\n",
        pipeline_secs * 1e3
    ));
    json.push_str("  \"configs\": [\n");
    for (i, (shards, parsers, pts_per_sec, secs, reordered)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {shards}, \"parsers\": {parsers}, \"points_per_sec\": \
             {pts_per_sec:.0}, \"wall_ms\": {:.2}, \"reordered\": {reordered}, \
             \"speedup_vs_serial\": {:.3}}}{}\n",
            secs * 1e3,
            pts_per_sec / serial_pts_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let mut file = std::fs::File::create("BENCH_stream.json").expect("create BENCH_stream.json");
    file.write_all(json.as_bytes()).expect("write BENCH_stream.json");
    println!("wrote BENCH_stream.json");
}
