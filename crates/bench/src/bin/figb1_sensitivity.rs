//! Figure B.1: sensitivity of the simulated user study to the target
//! roughness (8×/4×/2×/½× ASAP's) and the kurtosis-preservation factor
//! (0.5×/1.5×/2×).
//!
//! Paper: rougher plots lower accuracy (61.5% at 8x, 55.8% at 4x vs
//! 78.6%/79.8% at 2x/½x); ASAP's own configuration achieves the best
//! accuracy and lowest time; kurtosis matters less than roughness.
//!
//! Run: `cargo run --release -p asap-bench --bin figb1_sensitivity`

use asap_eval::observer::{ObserverModel, REGIONS};
use asap_eval::sensitivity::{kurtosis_variants, roughness_variants};
use asap_eval::{Rendering, Table, Technique};

/// Renders a smoothed series the same way the study does (uniform stretch,
/// no ink spread — it is a single clean polyline).
fn rendering_of(smoothed: &[f64], columns: usize) -> Option<Rendering> {
    let z = asap_timeseries::zscore(smoothed).ok()?;
    let n = z.len();
    let mut level = vec![0.0f64; columns];
    let mut count = vec![0usize; columns];
    for (i, &v) in z.iter().enumerate() {
        let c = (i * columns / n).min(columns - 1);
        level[c] += v;
        count[c] += 1;
    }
    let mut last = 0.0;
    for c in 0..columns {
        if count[c] > 0 {
            last = level[c] / count[c] as f64;
        }
        level[c] = last;
    }
    Some(Rendering {
        level,
        spread: vec![0.0; columns],
    })
}

fn main() {
    println!("== Figure B.1: roughness & kurtosis sensitivity (simulated study) ==\n");
    let model = ObserverModel::default();
    let datasets = asap_data::user_study_datasets();

    let mut acc = Table::new(
        std::iter::once("Accuracy %".to_string())
            .chain(datasets.iter().map(|d| d.name.to_string()))
            .collect::<Vec<_>>(),
    );

    // Roughness ladder: ASAP, 8x, 4x, 2x, 0.5x.
    let multiples = [8.0, 4.0, 2.0, 0.5];
    let mut rows: Vec<Vec<String>> = vec![
        vec!["ASAP".into()],
        vec!["8x".into()],
        vec!["4x".into()],
        vec!["2x".into()],
        vec!["1/2x".into()],
    ];
    for d in &datasets {
        let series = d.generate();
        let correct = d.anomaly_region_index(REGIONS).expect("study dataset");
        let variants = roughness_variants(series.values(), 1200, &multiples)
            .expect("variants computable");
        for (i, v) in variants.iter().enumerate() {
            let result = rendering_of(&v.smoothed, 800)
                .map(|r| model.run_rendering(&r, correct, Technique::Asap));
            rows[i].push(
                result
                    .map(|r| format!("{:.0}", r.accuracy * 100.0))
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
    for r in rows {
        acc.row(r);
    }
    print!("{acc}");

    // Kurtosis ladder.
    println!("\n[kurtosis factors]");
    let mut kt = Table::new(
        std::iter::once("window @ factor".to_string())
            .chain(datasets.iter().map(|d| d.name.to_string()))
            .collect::<Vec<_>>(),
    );
    let factors = [0.5, 1.0, 1.5, 2.0];
    let mut krows: Vec<Vec<String>> =
        factors.iter().map(|f| vec![format!("k{f}")]).collect();
    for d in &datasets {
        let series = d.generate();
        let variants =
            kurtosis_variants(series.values(), 1200, &factors).expect("variants computable");
        for (i, v) in variants.iter().enumerate() {
            krows[i].push(v.window.to_string());
        }
    }
    for r in krows {
        kt.row(r);
    }
    print!("{kt}");
    println!("\npaper: accuracy 61.5% (8x), 55.8% (4x), 78.6% (2x), 79.8% (1/2x);");
    println!("for 3/5 datasets the kurtosis factor does not change the window.");
}
