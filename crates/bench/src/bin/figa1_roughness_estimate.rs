//! Figure A.1: accuracy of the Eq. 5 roughness estimate on the Temp
//! dataset — true roughness per window, and the relative estimation error.
//!
//! Paper: estimate within 1.2% of the truth across all window sizes, with
//! sharp roughness drops at windows that are multiples of the annual
//! period.
//!
//! Run: `cargo run --release -p asap-bench --bin figa1_roughness_estimate`

use asap_core::estimate::roughness_estimate;
use asap_dsp::autocorrelation;
use asap_timeseries::{roughness, sma, stddev};

fn main() {
    println!("== Figure A.1: Eq. 5 roughness estimate on Temp ==\n");
    let series = asap_data::temperature();
    let data = series.values();
    let n = data.len();
    let max_window = 140usize;
    let sigma = stddev(data).unwrap();
    let acf = autocorrelation(data, max_window).unwrap();

    println!("{:>7}{:>14}{:>14}{:>12}", "window", "true rough", "estimate", "err %");
    let mut worst: f64 = 0.0;
    let mut sum = 0.0;
    let mut count = 0usize;
    for w in (2..=max_window).step_by(2) {
        let truth = roughness(&sma(data, w).unwrap()).unwrap();
        let est = roughness_estimate(sigma, n, w, acf.at(w));
        let err = if truth > 1e-12 {
            (est - truth).abs() / truth * 100.0
        } else {
            0.0
        };
        worst = worst.max(err);
        sum += err;
        count += 1;
        if w % 12 == 0 || w % 10 == 2 {
            println!("{w:>7}{truth:>14.5}{est:>14.5}{err:>12.2}");
        }
    }
    println!(
        "\nmean relative error {:.2}% | worst {:.2}% over windows 2..={max_window}",
        sum / count as f64,
        worst
    );
    println!("paper: within 1.2% of the true value across all window sizes");
    println!("(roughness drops at multiples of the 12-month period, as in the figure)");
}
