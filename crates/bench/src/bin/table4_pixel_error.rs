//! Table 4 (Appendix B.1): pixel error of ASAP, M4, Visvalingam–Whyatt
//! line simplification and PAA800 against the raw rendering on the five
//! user-study datasets (800 px).
//!
//! Paper: ASAP ~0.92–0.94 (by design — it redraws the plot), M4 ~0–0.04,
//! line simplification 0–0.21, PAA800 0–0.61.
//!
//! Run: `cargo run --release -p asap-bench --bin table4_pixel_error`

use asap_eval::{report, technique_pixel_error, Table, Technique};

fn main() {
    println!("== Table 4: pixel error vs raw rendering (800 x 240 px) ==\n");
    let techniques = [
        Technique::Asap,
        Technique::M4,
        Technique::Simplify,
        Technique::Paa800,
    ];
    let mut table = Table::new(
        std::iter::once("Dataset".to_string())
            .chain(techniques.iter().map(|t| t.name().to_string()))
            .collect::<Vec<_>>(),
    );
    for info in asap_data::user_study_datasets() {
        let series = info.generate();
        let mut row = vec![info.name.to_string()];
        for &t in &techniques {
            let e = technique_pixel_error(t, series.values(), 800, 240)
                .unwrap_or(f64::NAN);
            row.push(report::f(e, 2));
        }
        table.row(row);
    }
    print!("{table}");
    println!("\npaper (ASAP / M4 / simp / PAA800):");
    println!("  Temp 0.94/0.02/0.06/0.36, Taxi 0.94/0.02/0.05/0.22,");
    println!("  EEG 0.92/0.02/0.21/0.61, Sine 0.93/0/0/0, Power 0.94/0.04/0.17/0.56");
    println!("ASAP trades pixel fidelity for attention by design (§6).");
}
