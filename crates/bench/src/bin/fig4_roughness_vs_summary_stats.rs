//! Figure 4: three series with identical mean (0) and standard deviation
//! (1) but visibly different smoothness — the motivation for the
//! roughness measure. The paper reports roughness 2.04, 0.4 and 0.
//!
//! Run: `cargo run --release -p asap-bench --bin fig4_roughness_vs_summary_stats`

use asap_bench::sparkline;
use asap_timeseries::{moments, roughness, zscore};

fn main() {
    println!("== Figure 4: summary statistics miss visual smoothness ==\n");

    let n = 60usize;
    // Series A: jagged line (alternating around the mean).
    let a: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    // Series B: slightly bent line (one slope change in the middle).
    let b_raw: Vec<f64> = (0..n)
        .map(|i| {
            let x = i as f64;
            if i < n / 2 {
                0.2 * x
            } else {
                0.2 * (n / 2) as f64 + 1.0 * (x - (n / 2) as f64)
            }
        })
        .collect();
    // Series C: straight line.
    let c_raw: Vec<f64> = (0..n).map(|i| i as f64).collect();

    // All three normalized to mean 0, stddev 1 (as in the figure).
    let b = zscore(&b_raw).unwrap();
    let c = zscore(&c_raw).unwrap();
    let a = zscore(&a).unwrap();

    println!(
        "{:<10}{:>8}{:>8}{:>12}   plot",
        "series", "mean", "stddev", "roughness"
    );
    for (name, s) in [("A jagged", &a), ("B bent", &b), ("C line", &c)] {
        let m = moments(s).unwrap();
        println!(
            "{:<10}{:>8.2}{:>8.2}{:>12.3}   {}",
            name,
            m.mean(),
            m.stddev(),
            roughness(s).unwrap(),
            sparkline(s, 40)
        );
    }
    println!("\npaper: roughness(A)=2.04, roughness(B)=0.4, roughness(C)=0");
    println!("(A and C match exactly; B depends on the bend geometry — the ordering");
    println!(" jagged > bent > straight is the reproduced property)");
}
