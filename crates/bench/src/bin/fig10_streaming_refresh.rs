//! Figure 10: streaming ASAP throughput vs refresh interval (log-log),
//! target resolution 2000 px, on the traffic and machine-temp datasets.
//!
//! Paper: throughput is linear in the refresh interval — refreshing half
//! as often doubles the points processed per second.
//!
//! Run: `cargo run --release -p asap-bench --bin fig10_streaming_refresh`

use asap_core::{StreamingAsap, StreamingConfig};
use asap_eval::{report, Table};
use std::time::Instant;

fn run(series_values: &[f64], resolution: usize, interval: usize) -> f64 {
    let config = StreamingConfig::new(series_values.len(), resolution, interval);
    let mut op = StreamingAsap::new(config);
    let start = Instant::now();
    for &v in series_values {
        let _ = std::hint::black_box(op.push(v));
    }
    series_values.len() as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    println!("== Figure 10: throughput vs refresh interval (2000 px) ==\n");
    let datasets = [asap_data::traffic_data(), asap_data::machine_temp()];
    // Refresh intervals in preaggregated points, converted to raw points by
    // the pane ratio (the figure's x-axis is "# points").
    let intervals = [1usize, 4, 16, 64, 256, 1024];

    let mut table = Table::new(
        std::iter::once("interval (agg pts)".to_string())
            .chain(datasets.iter().map(|d| d.name().to_string()))
            .collect::<Vec<_>>(),
    );
    let mut results: Vec<Vec<f64>> = Vec::new();
    for &iv in &intervals {
        let mut row = vec![iv.to_string()];
        let mut tps = Vec::new();
        for d in &datasets {
            let ratio = asap_core::point_to_pixel_ratio(d.len(), 2000);
            let tp = run(d.values(), 2000, iv * ratio.max(1));
            row.push(report::eng(tp));
            tps.push(tp);
        }
        results.push(tps);
        table.row(row);
    }
    print!("{table}");

    // Check log-log linearity: throughput(interval) ≈ c · interval.
    for (col, d) in datasets.iter().enumerate() {
        let first = results[0][col];
        let last = results[results.len() - 1][col];
        let interval_gain = intervals[intervals.len() - 1] as f64 / intervals[0] as f64;
        println!(
            "\n{}: {:.0}x interval -> {:.0}x throughput (linear slope ≈ {:.2})",
            d.name(),
            interval_gain,
            last / first,
            (last / first).ln() / interval_gain.ln()
        );
    }
    println!("\npaper: linear relationship between refresh interval and throughput");
    println!("(slope 1.0 in log-log space until non-search costs dominate)");
}
