//! Figure 5: normal vs Laplace samples with identical mean (0) and
//! variance (2) but different kurtosis (3 vs 6) — kurtosis captures the
//! tendency to produce outliers.
//!
//! Run: `cargo run --release -p asap-bench --bin fig5_kurtosis_distributions`

use asap_data::generators::{iid_laplace, iid_normal};
use asap_timeseries::moments;

fn histogram(data: &[f64], bins: usize, lo: f64, hi: f64) -> String {
    let mut counts = vec![0usize; bins];
    for &x in data {
        if x >= lo && x < hi {
            let b = ((x - lo) / (hi - lo) * bins as f64) as usize;
            counts[b.min(bins - 1)] += 1;
        }
    }
    let max = *counts.iter().max().unwrap_or(&1) as f64;
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    counts
        .iter()
        .map(|&c| BARS[((c as f64 / max * 7.0).round() as usize).min(7)])
        .collect()
}

fn main() {
    println!("== Figure 5: kurtosis separates normal from Laplace ==\n");
    let n = 500_000usize;
    let normal = iid_normal(n, 0.0, 2.0f64.sqrt(), 42);
    let laplace = iid_laplace(n, 0.0, 1.0, 42);

    println!(
        "{:<10}{:>10}{:>10}{:>10}   histogram (±6)",
        "series", "mean", "variance", "kurtosis"
    );
    for (name, s, expected) in [("normal", &normal, 3.0), ("laplace", &laplace, 6.0)] {
        let m = moments(s).unwrap();
        println!(
            "{:<10}{:>10.3}{:>10.3}{:>10.3}   {}  (paper: {expected})",
            name,
            m.mean(),
            m.variance(),
            m.kurtosis(),
            histogram(s, 48, -6.0, 6.0)
        );
    }
    println!("\nSame mean and variance; the Laplace's rare large deviations show up");
    println!("only in the fourth moment — the property ASAP's constraint preserves.");
}
