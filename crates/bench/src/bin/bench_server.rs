//! Server benchmark: concurrent TCP line-protocol ingest through
//! `asap-server` vs the in-process `ingest_reader` floor.
//!
//! Measures, per (clients, shards) configuration, the wall-clock
//! throughput of streaming a lateness-shuffled line-protocol document
//! over loopback TCP from N concurrent client threads (series
//! partitioned across clients, each connection running its own
//! `StreamIngestor` with a reorder stage) into a running `asap-server`,
//! against two references on the same data: the serial
//! `line_protocol::ingest` of the *sorted* document, and the in-process
//! `ingest_reader` of the whole shuffled stream (no sockets — the floor
//! that isolates the TCP + connection-fanout cost). Before any number
//! is trusted, the served store is asserted identical to the sorted
//! serial oracle. Results are written to `BENCH_server.json` (see
//! `EXPERIMENTS.md` for the recorded run).
//!
//! A second experiment records the connections-vs-throughput curve of
//! the event core: 16/64/256/1024 mostly-idle query connections held
//! open while a fixed set of active clients works through a `RANGE`
//! budget — the slope is the cost of sweeping an ever-larger readiness
//! registry. Every response is asserted byte-identical to the serial
//! oracle rendering before a row's timing is recorded.
//!
//! Hand-timed wall clock, median of `BENCH_SERVER_RUNS` runs — the
//! criterion shim's budgeted micro-timing is wrong for multi-threaded
//! phases.
//!
//! Knobs: `BENCH_SERVER_POINTS` (records per series, default 20_000),
//! `BENCH_SERVER_SERIES` (default 8), `BENCH_SERVER_RUNS` (default 3),
//! `BENCH_SERVER_LATENESS` (shuffle window, default 64).

use std::io::Write as _;
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use asap_server::{protocol, Server, ServerConfig};
use asap_tsdb::{
    ingest_reader, line_protocol, IngestConfig, RangeQuery, Selector, ShardedConfig, ShardedDb,
    Tsdb, TsdbConfig,
};

const BLOCK_CAPACITY: usize = 4096;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One interleaved sorted document: `series` hosts × `points` records.
fn build_sorted_doc(series: usize, points: usize) -> String {
    let mut doc = String::with_capacity(series * points * 40);
    for t in 0..points {
        for h in 0..series {
            doc.push_str(&format!(
                "req,host=h{h:02} rate={:.4} {t}\n",
                (std::f64::consts::TAU * t as f64 / 900.0).sin() + h as f64,
            ));
        }
    }
    doc
}

/// Displaces lines by a deterministic jitter strictly below `lateness`.
fn shuffle_within(lines: &[&str], lateness: i64) -> String {
    let mut keyed: Vec<(i64, usize, &str)> = lines
        .iter()
        .enumerate()
        .map(|(i, line)| {
            let ts: i64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            (ts + (i as i64 * 13) % lateness, i, *line)
        })
        .collect();
    keyed.sort_by_key(|&(key, i, _)| (key, i));
    let mut out = String::with_capacity(lines.len() * 40);
    for (_, _, line) in keyed {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// The host index of a record line.
fn line_host(line: &str) -> usize {
    line.split("host=h")
        .nth(1)
        .unwrap()
        .split(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let points = env_usize("BENCH_SERVER_POINTS", 20_000);
    let series = env_usize("BENCH_SERVER_SERIES", 8);
    let runs = env_usize("BENCH_SERVER_RUNS", 3).max(1);
    let lateness = env_usize("BENCH_SERVER_LATENESS", 64).max(1) as i64;
    let sorted = build_sorted_doc(series, points);
    let sorted_lines: Vec<&str> = sorted.lines().collect();
    let shuffled = shuffle_within(&sorted_lines, lateness);
    let total_points = series * points;
    let ingest_config = IngestConfig {
        lateness: Some(lateness),
        ..IngestConfig::default()
    };

    println!(
        "server ingest: {series} series x {points} records = {total_points} pts, \
         disorder window {lateness}, median of {runs} ({} host cpus)",
        std::thread::available_parallelism().map_or(0, usize::from)
    );

    // Serial baseline: parse + write the sorted document on one thread.
    let serial_secs = median(
        (0..runs)
            .map(|_| {
                let db = Tsdb::with_config(TsdbConfig {
                    block_capacity: BLOCK_CAPACITY,
                });
                let t = Instant::now();
                let n = line_protocol::ingest(&db, &sorted, 0).unwrap();
                assert_eq!(n, total_points);
                t.elapsed().as_secs_f64()
            })
            .collect(),
    );
    let serial_pts_per_sec = total_points as f64 / serial_secs;
    println!(
        "{:>7} {:>7} {:>14} {:>12}   (serial baseline, sorted input)",
        "-",
        "-",
        format!("{serial_pts_per_sec:.3e}"),
        format!("{:.1}", serial_secs * 1e3)
    );

    // In-process floor: the same shuffled stream through ingest_reader —
    // one pipeline, no sockets. The gap to the server rows is the cost
    // of TCP plus per-connection pipeline fan-out.
    let floor_secs = median(
        (0..runs)
            .map(|_| {
                let db = ShardedDb::with_config(ShardedConfig::new(4, BLOCK_CAPACITY));
                let t = Instant::now();
                let report = ingest_reader(
                    &db,
                    std::io::Cursor::new(shuffled.as_bytes()),
                    0,
                    &ingest_config,
                )
                .unwrap();
                assert!(report.is_clean(), "{report:?}");
                assert_eq!(report.points, total_points);
                t.elapsed().as_secs_f64()
            })
            .collect(),
    );
    let floor_pts_per_sec = total_points as f64 / floor_secs;
    println!(
        "{:>7} {:>7} {:>14} {:>12}   (in-process ingest_reader floor, shuffled input, 4 shards)",
        "-",
        "-",
        format!("{floor_pts_per_sec:.3e}"),
        format!("{:.1}", floor_secs * 1e3)
    );

    // The oracle every served store is checked against.
    let oracle = Tsdb::with_config(TsdbConfig {
        block_capacity: BLOCK_CAPACITY,
    });
    line_protocol::ingest(&oracle, &sorted, 0).unwrap();
    let oracle_out = oracle
        .query_selector(&Selector::any(), RangeQuery::raw(i64::MIN + 1, i64::MAX))
        .unwrap();

    println!(
        "{:>7} {:>7} {:>14} {:>12} {:>10}",
        "clients", "shards", "tcp pts/s", "tcp ms", "vs floor"
    );
    let mut rows = Vec::new();
    for &(clients, shards) in &[(1usize, 4usize), (2, 4), (4, 4), (4, 8)] {
        // Partition series across clients and pre-shuffle each stream.
        let client_docs: Vec<String> = (0..clients)
            .map(|c| {
                let mine: Vec<&str> = sorted_lines
                    .iter()
                    .copied()
                    .filter(|line| line_host(line) % clients == c)
                    .collect();
                shuffle_within(&mine, lateness)
            })
            .collect();
        let secs = median(
            (0..runs)
                .map(|_| {
                    let db = ShardedDb::with_config(ShardedConfig::new(shards, BLOCK_CAPACITY));
                    let server = Server::start(
                        db,
                        ServerConfig {
                            ingest: ingest_config.clone(),
                            ..ServerConfig::default()
                        },
                    )
                    .expect("server start");
                    let addr = server.ingest_addr();
                    let t = Instant::now();
                    std::thread::scope(|scope| {
                        for doc in &client_docs {
                            scope.spawn(move || {
                                let mut conn = TcpStream::connect(addr).expect("connect");
                                for piece in doc.as_bytes().chunks(64 * 1024) {
                                    conn.write_all(piece).expect("send");
                                }
                                conn.shutdown(Shutdown::Write).expect("half-close");
                                let mut report = String::new();
                                use std::io::Read as _;
                                conn.read_to_string(&mut report).expect("report");
                                assert!(report.contains("clean=true"), "{report}");
                            });
                        }
                    });
                    let secs = t.elapsed().as_secs_f64();
                    let report = server.shutdown();
                    assert_eq!(report.ingest.points, total_points);
                    assert_eq!(report.ingest.dropped_late, 0);
                    secs
                })
                .collect(),
        );
        // Correctness gate: the served store must equal the oracle.
        let db = ShardedDb::with_config(ShardedConfig::new(shards, BLOCK_CAPACITY));
        let server = Server::start(
            db.clone(),
            ServerConfig {
                ingest: ingest_config.clone(),
                ..ServerConfig::default()
            },
        )
        .expect("server start");
        let addr = server.ingest_addr();
        std::thread::scope(|scope| {
            for doc in &client_docs {
                scope.spawn(move || {
                    let mut conn = TcpStream::connect(addr).expect("connect");
                    conn.write_all(doc.as_bytes()).expect("send");
                    conn.shutdown(Shutdown::Write).expect("half-close");
                    use std::io::Read as _;
                    let mut report = String::new();
                    conn.read_to_string(&mut report).expect("report");
                });
            }
        });
        server.shutdown();
        assert_eq!(
            db.query_selector(&Selector::any(), RangeQuery::raw(i64::MIN + 1, i64::MAX))
                .unwrap(),
            oracle_out,
            "served store diverges from sorted serial oracle at clients={clients} shards={shards}"
        );
        let pts_per_sec = total_points as f64 / secs;
        println!(
            "{clients:>7} {shards:>7} {:>14.3e} {:>12.1} {:>10.2}",
            pts_per_sec,
            secs * 1e3,
            pts_per_sec / floor_pts_per_sec
        );
        rows.push((clients, shards, pts_per_sec, secs));
    }

    // Connections-vs-throughput curve: the event core holds N
    // mostly-idle query connections while a fixed set of active
    // clients works through a RANGE budget. The slope is what an
    // ever-larger readiness registry costs the same worker pool.
    // Every response is checked byte-identical against the serial
    // oracle rendering before the row's timing is trusted.
    const CURVE_SERIES: usize = 4;
    const CURVE_POINTS: usize = 2_000;
    const CURVE_WINDOW: i64 = 256;
    let active_clients = 8usize;
    let queries_per_client = env_usize("BENCH_SERVER_CURVE_QUERIES", 50);
    let curve_doc = build_sorted_doc(CURVE_SERIES, CURVE_POINTS);
    let curve_oracle = Tsdb::with_config(TsdbConfig {
        block_capacity: BLOCK_CAPACITY,
    });
    line_protocol::ingest(&curve_oracle, &curve_doc, 0).unwrap();
    // Line protocol keys series as `measurement.field` — and the
    // expectation must be a real payload, not a vacuous empty match.
    let expected = protocol::render_range(
        &curve_oracle
            .query_selector(&Selector::metric("req.rate"), RangeQuery::raw(0, CURVE_WINDOW))
            .unwrap(),
    );
    assert!(
        expected.contains("SERIES req.rate") && expected.len() > 1_000,
        "curve oracle expectation is trivial:\n{expected}"
    );
    let command = format!("RANGE req.rate 0 {CURVE_WINDOW}\n");
    println!(
        "{:>7} {:>7} {:>14} {:>12}   (mostly-idle connection curve, {active_clients} active \
         clients x {queries_per_client} RANGE each, event core)",
        "conns", "-", "queries/s", "wall ms"
    );
    let mut curve = Vec::new();
    for &connections in &[16usize, 64, 256, 1024] {
        let secs = median(
            (0..runs)
                .map(|_| {
                    let db = ShardedDb::with_config(ShardedConfig::new(4, BLOCK_CAPACITY));
                    let seeded =
                        asap_tsdb::pipeline_ingest(&db, &curve_doc, 0, &IngestConfig::default())
                            .unwrap();
                    assert_eq!(seeded.points, CURVE_SERIES * CURVE_POINTS);
                    let server = Server::start(
                        db,
                        ServerConfig {
                            max_query_connections: connections + 8,
                            poll_interval: Duration::from_millis(5),
                            ..ServerConfig::default()
                        },
                    )
                    .expect("server start");
                    let addr = server.query_addr();
                    let conns: Vec<TcpStream> = (0..connections)
                        .map(|_| {
                            let conn = TcpStream::connect(addr).expect("connect");
                            conn.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                            conn
                        })
                        .collect();
                    let t = Instant::now();
                    std::thread::scope(|scope| {
                        for conn in conns.iter().take(active_clients) {
                            scope.spawn(|| {
                                use std::io::Read as _;
                                let mut response = vec![0u8; expected.len()];
                                for _ in 0..queries_per_client {
                                    (&*conn).write_all(command.as_bytes()).expect("send query");
                                    (&*conn).read_exact(&mut response).expect("read response");
                                    assert_eq!(
                                        response,
                                        expected.as_bytes(),
                                        "response diverged from the serial oracle at \
                                         {connections} connections"
                                    );
                                }
                            });
                        }
                    });
                    let secs = t.elapsed().as_secs_f64();
                    drop(conns);
                    server.shutdown();
                    secs
                })
                .collect(),
        );
        let total_queries = active_clients * queries_per_client;
        let qps = total_queries as f64 / secs;
        println!(
            "{connections:>7} {:>7} {qps:>14.3e} {:>12.1}",
            "-",
            secs * 1e3
        );
        curve.push((connections, total_queries, qps, secs));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"server_ingest\",\n");
    json.push_str(
        "  \"note\": \"hand-timed wall clock (not the criterion shim); absolute numbers are \
         machine-relative, compare configurations within one run; the served store is asserted \
         identical to the sorted serial oracle; each client streams a lateness-shuffled \
         partition of the series over loopback TCP, so every row also pays the per-connection \
         reorder stage; vs_floor compares against the in-process ingest_reader on the same \
         shuffled data — the gap is TCP + connection fan-out cost\",\n",
    );
    json.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, usize::from)
    ));
    json.push_str(&format!("  \"series\": {series},\n"));
    json.push_str(&format!("  \"records_per_series\": {points},\n"));
    json.push_str(&format!("  \"total_points\": {total_points},\n"));
    json.push_str(&format!("  \"disorder_window\": {lateness},\n"));
    json.push_str(&format!("  \"runs_per_config\": {runs},\n"));
    json.push_str(&format!(
        "  \"serial_baseline\": {{\"points_per_sec\": {serial_pts_per_sec:.0}, \"wall_ms\": {:.2}}},\n",
        serial_secs * 1e3
    ));
    json.push_str(&format!(
        "  \"in_process_floor\": {{\"points_per_sec\": {floor_pts_per_sec:.0}, \"wall_ms\": {:.2}}},\n",
        floor_secs * 1e3
    ));
    json.push_str("  \"configs\": [\n");
    for (i, (clients, shards, pts_per_sec, secs)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {clients}, \"shards\": {shards}, \"points_per_sec\": \
             {pts_per_sec:.0}, \"wall_ms\": {:.2}, \"vs_floor\": {:.3}}}{}\n",
            secs * 1e3,
            pts_per_sec / floor_pts_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"idle_connection_curve\": {{\n    \"note\": \"event core; N mostly-idle query \
         connections held open while {active_clients} of them each issue {queries_per_client} \
         RANGE queries over a {CURVE_WINDOW}-point window; every response asserted \
         byte-identical to the serial oracle rendering before the timing is recorded\",\n    \
         \"active_clients\": {active_clients},\n    \"queries_per_client\": \
         {queries_per_client},\n    \"rows\": [\n",
    ));
    for (i, (connections, total_queries, qps, secs)) in curve.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"connections\": {connections}, \"queries\": {total_queries}, \
             \"queries_per_sec\": {qps:.0}, \"wall_ms\": {:.2}}}{}\n",
            secs * 1e3,
            if i + 1 < curve.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  }\n}\n");

    let mut file = std::fs::File::create("BENCH_server.json").expect("create BENCH_server.json");
    file.write_all(json.as_bytes()).expect("write BENCH_server.json");
    println!("wrote BENCH_server.json");
}
