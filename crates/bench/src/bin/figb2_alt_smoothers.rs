//! Figure B.2: achieved roughness of alternative smoothing functions —
//! FFT-low, FFT-dominant, SG1, SG4, minmax — relative to SMA, under the
//! same selection criterion (minimize roughness s.t. kurtosis
//! preservation), on the five user-study datasets.
//!
//! Paper (relative to SMA=1.0): FFT-dominant 31–316x and minmax 38–316x
//! (very rough); FFT-low 0.03–0.36x, SG1 0.6–8.3x, SG4 1.0–23.9x.
//!
//! Run: `cargo run --release -p asap-bench --bin figb2_alt_smoothers`

use asap_core::alt_smoothers::{select, SmootherKind};
use asap_core::{preaggregate, AsapConfig};
use asap_eval::{report, Table};

fn main() {
    println!("== Figure B.2: alternative smoothers, roughness relative to SMA ==\n");
    let kinds = [
        SmootherKind::FftLow,
        SmootherKind::FftDominant,
        SmootherKind::Sg1,
        SmootherKind::Sg4,
        SmootherKind::MinMax,
        SmootherKind::Wavelet,
        SmootherKind::Sma,
    ];
    let datasets = asap_data::user_study_datasets();
    let mut table = Table::new(
        std::iter::once("Smoother".to_string())
            .chain(datasets.iter().map(|d| d.name.to_string()))
            .collect::<Vec<_>>(),
    );

    let config = AsapConfig {
        resolution: 800,
        ..AsapConfig::default()
    };

    // Precompute the aggregated series and SMA references.
    let prepared: Vec<(Vec<f64>, f64)> = datasets
        .iter()
        .map(|d| {
            let series = d.generate();
            let (agg, _) = preaggregate(series.values(), 800);
            let sma = select(&agg, SmootherKind::Sma, &config).expect("selectable");
            (agg, sma.roughness.max(1e-12))
        })
        .collect();

    for kind in kinds {
        let mut row = vec![kind.name().to_string()];
        for (agg, sma_rough) in &prepared {
            match select(agg, kind, &config) {
                Ok(r) => row.push(format!("{}x", report::f(r.roughness / sma_rough, 2))),
                Err(_) => row.push("-".into()),
            }
        }
        table.row(row);
    }
    print!("{table}");
    println!("\npaper: FFT-dominant and minmax orders of magnitude rougher than SMA;");
    println!("FFT-low/SG1/SG4 competitive, occasionally smoother — but with more");
    println!("parameters to tune, which is why ASAP uses SMA (§3.3).");
}
