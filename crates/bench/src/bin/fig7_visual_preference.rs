//! Figure 7: simulated visual-preference study — which of four renderings
//! (Original, ASAP, PAA100, Oversmooth) best highlights the described
//! anomaly.
//!
//! Paper: users prefer ASAP 65% of the time overall (>70% on Taxi, EEG,
//! Power; 60% on Sine), but 70% prefer the oversmoothed plot on Temp,
//! whose anomaly is a multi-decade trend.
//!
//! Run: `cargo run --release -p asap-bench --bin fig7_visual_preference`

use asap_eval::{ObserverModel, Table, Technique};

fn main() {
    println!("== Figure 7: preference fractions (%), 50 simulated trials/dataset ==\n");
    let model = ObserverModel::default();
    let techniques = Technique::figure7();

    let mut table = Table::new(
        std::iter::once("Dataset".to_string())
            .chain(techniques.iter().map(|t| t.name().to_string()))
            .collect::<Vec<_>>(),
    );
    let mut mean = vec![0.0f64; techniques.len()];
    let datasets = asap_data::user_study_datasets();
    for d in &datasets {
        let prefs = model.preference(d, &techniques).expect("ground truth present");
        let mut row = vec![d.name.to_string()];
        for (i, p) in prefs.iter().enumerate() {
            row.push(format!("{:.0}", p * 100.0));
            mean[i] += p;
        }
        table.row(row);
    }
    let mut mean_row = vec!["mean".to_string()];
    for m in &mean {
        mean_row.push(format!("{:.0}", m / datasets.len() as f64 * 100.0));
    }
    table.row(mean_row);
    print!("{table}");
    println!("\npaper: ASAP preferred 65% on average (random = 25%); oversmooth wins Temp");
}
