//! Figure A.3: absolute runtime of ASAP vs the linear-time reducers PAA
//! and M4 on the ten smaller Table 2 datasets (1200 px).
//!
//! Paper: ASAP is up to 19.6× slower than PAA and 13.2× slower than M4,
//! completing in 72.9 ms on average vs 33.4 / 35.9 ms — same order of
//! magnitude despite doing a search instead of a single pass.
//!
//! Run: `cargo run --release -p asap-bench --bin figa3_runtime_vs_linear`

use asap_baselines::{m4::m4_aggregate, paa::paa};
use asap_core::Asap;
use asap_eval::{report, Table};
use std::time::Instant;

/// Minimum of `reps` timed runs (after one warmup), in milliseconds —
/// stabilizes sub-millisecond measurements against allocator/cache noise.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::MAX, f64::min)
}

fn main() {
    println!("== Figure A.3: runtime (ms) of ASAP vs PAA vs M4, 1200 px ==\n");
    let mut table = Table::new(vec!["Dataset", "ASAP", "PAA", "M4", "ASAP/PAA"]);
    let asap = Asap::builder().resolution(1200).build();

    let mut sums = [0.0f64; 3];
    let mut count = 0usize;
    for info in asap_bench::sweep_datasets() {
        let series = info.generate();
        let data = series.values();

        let reps = if data.len() > 1_000_000 { 2 } else { 5 };
        let t_asap = time_ms(reps, || asap.smooth(data));
        let t_paa = time_ms(reps, || paa(data, 1200));
        let t_m4 = time_ms(reps, || m4_aggregate(data, 1200));

        sums[0] += t_asap;
        sums[1] += t_paa;
        sums[2] += t_m4;
        count += 1;
        table.row(vec![
            info.name.to_string(),
            report::f(t_asap, 2),
            report::f(t_paa, 2),
            report::f(t_m4, 2),
            report::f(t_asap / t_paa.max(1e-6), 1),
        ]);
    }
    table.row(vec![
        "mean".to_string(),
        report::f(sums[0] / count as f64, 2),
        report::f(sums[1] / count as f64, 2),
        report::f(sums[2] / count as f64, 2),
        report::f(sums[0] / sums[1].max(1e-9), 1),
    ]);
    print!("{table}");
    println!("\npaper: means 72.9 / 33.4 / 35.9 ms; ASAP ≤ 19.6x PAA, ≤ 13.2x M4");
}
