//! Ingest-vs-query contention benchmark for the sharded engine.
//!
//! Measures, per shard count, the wall-clock throughput of concurrent
//! ingest (one writer thread per series, per-point writes — the contended
//! path) while smoothing readers race on the same store, plus the
//! parallel-vs-serial latency of a multi-series `smooth_query_selector`
//! after ingest quiesces. Results are written to `BENCH_shard.json`
//! (see `EXPERIMENTS.md` for the recorded run).
//!
//! Hand-timed wall clock, median of `BENCH_SHARD_RUNS` runs — the
//! criterion shim's budgeted micro-timing is wrong for multi-threaded
//! phases, which need one timed span per full ingest.
//!
//! Knobs: `BENCH_SHARD_POINTS` (points per writer, default 200_000),
//! `BENCH_SHARD_RUNS` (default 3).

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use asap_core::Asap;
use asap_tsdb::{DataPoint, SeriesKey, Selector, ShardedConfig, ShardedDb};

const WRITERS: usize = 8;
const READERS: usize = 4;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn series_key(w: usize) -> SeriesKey {
    SeriesKey::metric("req_rate").with_tag("host", format!("h{w:02}"))
}

fn value_at(w: usize, t: i64) -> f64 {
    (std::f64::consts::TAU * t as f64 / 900.0).sin() + w as f64
}

struct RunResult {
    ingest_wall_ms: f64,
    ingest_points_per_sec: f64,
    frames_during_ingest: u64,
    serial_smooth_ms: f64,
    parallel_smooth_ms: f64,
}

/// One timed contention run at the given shard count.
fn run_once(shards: usize, points_per_writer: i64) -> RunResult {
    let db = ShardedDb::with_config(ShardedConfig::new(shards, 4096));
    let writers_done = AtomicBool::new(false);
    let frames = AtomicU64::new(0);

    let start = Instant::now();
    let ingest_wall = std::thread::scope(|scope| {
        let mut writer_handles = Vec::new();
        for w in 0..WRITERS {
            let db = db.clone();
            writer_handles.push(scope.spawn(move || {
                let key = series_key(w);
                for t in 0..points_per_writer {
                    db.write(&key, DataPoint::new(t, value_at(w, t))).unwrap();
                }
            }));
        }
        for r in 0..READERS {
            let db = db.clone();
            let writers_done = &writers_done;
            let frames = &frames;
            scope.spawn(move || {
                let asap = Asap::builder().resolution(100).build();
                let mut round = r;
                while !writers_done.load(Ordering::Acquire) {
                    round += 1;
                    let key = series_key(round % WRITERS);
                    let end = points_per_writer.max(1_000);
                    if asap_tsdb::smooth_query(&db, &key, &asap, 0, end, end / 1_000)
                        .is_ok()
                    {
                        frames.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        for h in writer_handles {
            h.join().unwrap();
        }
        let wall = start.elapsed();
        writers_done.store(true, Ordering::Release);
        wall
    });

    // Quiescent multi-series smoothing: serial oracle pipeline vs the
    // shard-parallel fan-out on identical data.
    let asap = Asap::builder().resolution(400).build();
    let sel = Selector::metric("req_rate");
    let end = points_per_writer;
    let bucket = (end / 4_000).max(1);

    let t = Instant::now();
    let serial =
        asap_tsdb::smooth_query_selector(&db, &sel, &asap, 0, end, bucket).unwrap();
    let serial_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let parallel = db.smooth_query_selector(&sel, &asap, 0, end, bucket).unwrap();
    let parallel_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(serial, parallel, "fan-out must be byte-identical");

    let total_points = (WRITERS as i64 * points_per_writer) as f64;
    RunResult {
        ingest_wall_ms: ingest_wall.as_secs_f64() * 1e3,
        ingest_points_per_sec: total_points / ingest_wall.as_secs_f64(),
        frames_during_ingest: frames.load(Ordering::Relaxed),
        serial_smooth_ms: serial_ms,
        parallel_smooth_ms: parallel_ms,
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let points_per_writer = env_usize("BENCH_SHARD_POINTS", 200_000) as i64;
    let runs = env_usize("BENCH_SHARD_RUNS", 3).max(1);
    let shard_counts = [1usize, 2, 4, 8];

    println!(
        "shard contention: {WRITERS} writers x {points_per_writer} pts, {READERS} smoothing readers, median of {runs} ({} host cpus)",
        std::thread::available_parallelism().map_or(0, usize::from)
    );
    println!(
        "{:>7} {:>14} {:>12} {:>10} {:>12} {:>12}",
        "shards", "ingest pts/s", "ingest ms", "frames", "serial ms", "parallel ms"
    );

    let mut rows = Vec::new();
    for &shards in &shard_counts {
        let results: Vec<RunResult> = (0..runs)
            .map(|_| run_once(shards, points_per_writer))
            .collect();
        let row = RunResult {
            ingest_wall_ms: median(results.iter().map(|r| r.ingest_wall_ms).collect()),
            ingest_points_per_sec: median(
                results.iter().map(|r| r.ingest_points_per_sec).collect(),
            ),
            frames_during_ingest: results
                .iter()
                .map(|r| r.frames_during_ingest)
                .sum::<u64>()
                / runs as u64,
            serial_smooth_ms: median(results.iter().map(|r| r.serial_smooth_ms).collect()),
            parallel_smooth_ms: median(
                results.iter().map(|r| r.parallel_smooth_ms).collect(),
            ),
        };
        println!(
            "{:>7} {:>14.3e} {:>12.1} {:>10} {:>12.2} {:>12.2}",
            shards,
            row.ingest_points_per_sec,
            row.ingest_wall_ms,
            row.frames_during_ingest,
            row.serial_smooth_ms,
            row.parallel_smooth_ms
        );
        rows.push((shards, row));
    }

    let base = rows[0].1.ingest_points_per_sec;
    let best = rows
        .iter()
        .map(|(_, r)| r.ingest_points_per_sec)
        .fold(f64::NEG_INFINITY, f64::max);
    println!("best multi-shard ingest speedup over 1 shard: {:.2}x", best / base);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"shard_contention\",\n");
    json.push_str(
        "  \"note\": \"hand-timed wall clock (not the criterion shim); absolute numbers are machine-relative, compare configurations within one run\",\n",
    );
    json.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, usize::from)
    ));
    json.push_str(&format!("  \"writers\": {WRITERS},\n"));
    json.push_str(&format!("  \"smoothing_readers\": {READERS},\n"));
    json.push_str(&format!("  \"points_per_writer\": {points_per_writer},\n"));
    json.push_str(&format!("  \"runs_per_config\": {runs},\n"));
    json.push_str("  \"configs\": [\n");
    for (i, (shards, r)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {shards}, \"ingest_points_per_sec\": {:.0}, \"ingest_wall_ms\": {:.2}, \"ingest_speedup_vs_1_shard\": {:.3}, \"frames_during_ingest\": {}, \"serial_smooth_ms\": {:.2}, \"parallel_smooth_ms\": {:.2}}}{}\n",
            r.ingest_points_per_sec,
            r.ingest_wall_ms,
            r.ingest_points_per_sec / base,
            r.frames_during_ingest,
            r.serial_smooth_ms,
            r.parallel_smooth_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = "BENCH_shard.json";
    let mut f = std::fs::File::create(path).expect("create BENCH_shard.json");
    f.write_all(json.as_bytes()).expect("write BENCH_shard.json");
    println!("wrote {path}");
}
