//! WAL overhead benchmark: ingest throughput per fsync policy vs the
//! no-WAL floor.
//!
//! Measures, per [`asap_tsdb::FsyncPolicy`], the wall-clock throughput
//! of draining a lateness-shuffled line-protocol document through
//! `pipeline_ingest` with the write-ahead log enabled, against the same
//! pipeline with no WAL (the floor — the price of durability is the gap
//! to it). Before any number is trusted, the log is sealed and replayed
//! into a fresh store which is asserted identical to the sorted serial
//! oracle — each measured configuration therefore also proves its
//! recovery set is complete. Results are written to `BENCH_wal.json`
//! (see `EXPERIMENTS.md` for the recorded run).
//!
//! Hand-timed wall clock, median of `BENCH_WAL_RUNS` runs — the
//! criterion shim's budgeted micro-timing is wrong for multi-threaded
//! phases.
//!
//! Knobs: `BENCH_WAL_POINTS` (records per series, default 20_000),
//! `BENCH_WAL_SERIES` (default 8), `BENCH_WAL_RUNS` (default 3),
//! `BENCH_WAL_LATENESS` (shuffle window, default 64).

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use asap_tsdb::{
    line_protocol, pipeline_ingest, FsyncPolicy, IngestConfig, RangeQuery, Selector,
    ShardedConfig, ShardedDb, Tsdb, TsdbConfig, Wal,
};

const BLOCK_CAPACITY: usize = 4096;
const SHARDS: usize = 4;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One interleaved sorted document: `series` hosts × `points` records.
fn build_sorted_doc(series: usize, points: usize) -> String {
    let mut doc = String::with_capacity(series * points * 40);
    for t in 0..points {
        for h in 0..series {
            doc.push_str(&format!(
                "req,host=h{h:02} rate={:.4} {t}\n",
                (std::f64::consts::TAU * t as f64 / 900.0).sin() + h as f64,
            ));
        }
    }
    doc
}

/// Displaces lines by a deterministic jitter strictly below `lateness`.
fn shuffle_within(doc: &str, lateness: i64) -> String {
    let mut keyed: Vec<(i64, usize, &str)> = doc
        .lines()
        .enumerate()
        .map(|(i, line)| {
            let ts: i64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            (ts + (i as i64 * 13) % lateness, i, line)
        })
        .collect();
    keyed.sort_by_key(|&(key, i, _)| (key, i));
    let mut out = String::with_capacity(doc.len());
    for (_, _, line) in keyed {
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn temp_wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asap-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let points = env_usize("BENCH_WAL_POINTS", 20_000);
    let series = env_usize("BENCH_WAL_SERIES", 8);
    let runs = env_usize("BENCH_WAL_RUNS", 3).max(1);
    let lateness = env_usize("BENCH_WAL_LATENESS", 64).max(1) as i64;
    let sorted = build_sorted_doc(series, points);
    let shuffled = shuffle_within(&sorted, lateness);
    let total_points = series * points;
    let base_config = IngestConfig {
        lateness: Some(lateness),
        ..IngestConfig::default()
    };

    println!(
        "WAL overhead: {series} series x {points} records = {total_points} pts, \
         disorder window {lateness}, {SHARDS} shards, median of {runs} ({} host cpus)",
        std::thread::available_parallelism().map_or(0, usize::from)
    );

    // The oracle every measured store (and every replayed log) is
    // checked against.
    let oracle = Tsdb::with_config(TsdbConfig {
        block_capacity: BLOCK_CAPACITY,
    });
    line_protocol::ingest(&oracle, &sorted, 0).unwrap();
    let oracle_out = oracle
        .query_selector(&Selector::any(), RangeQuery::raw(i64::MIN + 1, i64::MAX))
        .unwrap();

    // The floor: the same pipeline, no WAL — durability's price is the
    // gap between every row below and this number.
    let floor_secs = median(
        (0..runs)
            .map(|_| {
                let db = ShardedDb::with_config(ShardedConfig::new(SHARDS, BLOCK_CAPACITY));
                let t = Instant::now();
                let report = pipeline_ingest(&db, &shuffled, 0, &base_config).unwrap();
                let secs = t.elapsed().as_secs_f64();
                assert!(report.is_clean(), "{report:?}");
                assert_eq!(report.points, total_points);
                secs
            })
            .collect(),
    );
    let floor_pts_per_sec = total_points as f64 / floor_secs;
    println!(
        "{:>16} {:>14} {:>12} {:>10} {:>12}   (no WAL — the floor)",
        "-",
        format!("{floor_pts_per_sec:.3e}"),
        format!("{:.1}", floor_secs * 1e3),
        "-",
        "-"
    );

    println!(
        "{:>16} {:>14} {:>12} {:>10} {:>12}",
        "fsync policy", "pts/s", "wall ms", "vs no-WAL", "fsyncs"
    );
    let policies = [
        FsyncPolicy::EveryN(1 << 20), // sync only at seal: pure append cost
        FsyncPolicy::EveryN(256),
        FsyncPolicy::EveryN(64),
        FsyncPolicy::Interval(std::time::Duration::from_millis(100)),
        FsyncPolicy::Always,
    ];
    let mut rows = Vec::new();
    for policy in policies {
        let tag = policy.to_string().replace(['=', '-'], "_");
        let mut fsyncs = 0u64;
        let mut wal_bytes = 0u64;
        let secs = median(
            (0..runs)
                .map(|_| {
                    let dir = temp_wal_dir(&tag);
                    let db = ShardedDb::with_config(ShardedConfig::new(SHARDS, BLOCK_CAPACITY));
                    let wal = Wal::open(&dir, SHARDS, policy).unwrap();
                    let config = IngestConfig {
                        wal: Some(wal.clone()),
                        ..base_config.clone()
                    };
                    let t = Instant::now();
                    let report = pipeline_ingest(&db, &shuffled, 0, &config).unwrap();
                    wal.seal().unwrap();
                    let secs = t.elapsed().as_secs_f64();
                    assert!(report.is_clean(), "{report:?}");
                    assert_eq!(report.points, total_points);
                    let stats = wal.stats();
                    assert_eq!(stats.records, total_points as u64);
                    fsyncs = stats.fsyncs;
                    wal_bytes = stats.bytes;

                    // Correctness gate: the sealed log alone rebuilds the
                    // oracle — the recovery set is complete.
                    let recovered =
                        ShardedDb::with_config(ShardedConfig::new(SHARDS, BLOCK_CAPACITY));
                    let replay = asap_tsdb::wal::replay(&dir, &recovered).unwrap();
                    assert_eq!(replay.applied, total_points as u64);
                    assert_eq!(replay.damaged, 0);
                    assert_eq!(
                        recovered
                            .query_selector(&Selector::any(), RangeQuery::raw(i64::MIN + 1, i64::MAX))
                            .unwrap(),
                        oracle_out,
                        "replayed store diverges from oracle under fsync={policy}"
                    );
                    std::fs::remove_dir_all(&dir).ok();
                    secs
                })
                .collect(),
        );
        let pts_per_sec = total_points as f64 / secs;
        println!(
            "{:>16} {:>14.3e} {:>12.1} {:>10.2} {:>12}",
            policy.to_string(),
            pts_per_sec,
            secs * 1e3,
            pts_per_sec / floor_pts_per_sec,
            fsyncs
        );
        rows.push((policy.to_string(), pts_per_sec, secs, fsyncs, wal_bytes));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"wal_overhead\",\n");
    json.push_str(
        "  \"note\": \"hand-timed wall clock (not the criterion shim); absolute numbers are \
         machine-relative, compare configurations within one run; each row ingests a \
         lateness-shuffled document through pipeline_ingest with the WAL enabled, seals the \
         log, replays it into a fresh store, and asserts the replayed store identical to the \
         sorted serial oracle before the timing is trusted; vs_no_wal is the price of \
         durability at that fsync cadence\",\n",
    );
    json.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, usize::from)
    ));
    json.push_str(&format!("  \"series\": {series},\n"));
    json.push_str(&format!("  \"records_per_series\": {points},\n"));
    json.push_str(&format!("  \"total_points\": {total_points},\n"));
    json.push_str(&format!("  \"disorder_window\": {lateness},\n"));
    json.push_str(&format!("  \"shards\": {SHARDS},\n"));
    json.push_str(&format!("  \"runs_per_config\": {runs},\n"));
    json.push_str(&format!(
        "  \"no_wal_floor\": {{\"points_per_sec\": {floor_pts_per_sec:.0}, \"wall_ms\": {:.2}}},\n",
        floor_secs * 1e3
    ));
    json.push_str("  \"configs\": [\n");
    for (i, (policy, pts_per_sec, secs, fsyncs, wal_bytes)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"fsync\": \"{policy}\", \"points_per_sec\": {pts_per_sec:.0}, \
             \"wall_ms\": {:.2}, \"vs_no_wal\": {:.3}, \"fsyncs\": {fsyncs}, \
             \"wal_bytes\": {wal_bytes}}}{}\n",
            secs * 1e3,
            pts_per_sec / floor_pts_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let mut file = std::fs::File::create("BENCH_wal.json").expect("create BENCH_wal.json");
    file.write_all(json.as_bytes()).expect("write BENCH_wal.json");
    println!("wrote BENCH_wal.json");
}
