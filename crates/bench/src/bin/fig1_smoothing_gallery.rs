//! Figures 1–3 and C.1–C.3: the raw-vs-ASAP smoothing gallery.
//!
//! For every evaluation dataset, prints the raw and ASAP-smoothed
//! sparklines with the chosen window (in points and natural time units),
//! plus the roughness/kurtosis before and after — the numbers behind the
//! case-study plots.
//!
//! Run: `cargo run --release -p asap-bench --bin fig1_smoothing_gallery`

use asap_bench::sparkline;
use asap_core::Asap;
use asap_timeseries::{kurtosis, roughness};

fn human_duration(secs: f64) -> String {
    if secs >= 365.25 * 86_400.0 {
        format!("{:.1} years", secs / (365.25 * 86_400.0))
    } else if secs >= 86_400.0 {
        format!("{:.1} days", secs / 86_400.0)
    } else if secs >= 3_600.0 {
        format!("{:.1} hours", secs / 3_600.0)
    } else if secs >= 60.0 {
        format!("{:.1} minutes", secs / 60.0)
    } else {
        format!("{secs:.2} seconds")
    }
}

fn main() {
    println!("== Figures 1-3 & C.1-C.3: raw vs ASAP gallery (1200 px targets) ==\n");
    let asap = Asap::builder().resolution(1200).build();
    let mut datasets = asap_bench::sweep_datasets();
    // Include the Figure 2 case study.
    let cpu = asap_data::cpu_cluster();

    for info in datasets.drain(..) {
        let series = info.generate();
        gallery_entry(series.name(), series.values(), series.period_secs(), &asap);
    }
    gallery_entry("cpu_util (Fig 2)", cpu.values(), cpu.period_secs(), &asap);
}

fn gallery_entry(name: &str, values: &[f64], period_secs: f64, asap: &Asap) {
    let result = match asap.smooth(values) {
        Ok(r) => r,
        Err(e) => {
            println!("{name}: skipped ({e})\n");
            return;
        }
    };
    let window_secs = result.window_raw_points as f64 * period_secs;
    println!(
        "{name}: {} pts | window {} agg pts = {} raw pts ≈ {} | candidates {}",
        values.len(),
        result.window,
        result.window_raw_points,
        human_duration(window_secs),
        result.candidates_checked,
    );
    println!(
        "  roughness {:.4} -> {:.4} | kurtosis {:.2} -> {:.2}{}",
        roughness(values).unwrap_or(0.0),
        result.roughness,
        kurtosis(values).unwrap_or(f64::NAN),
        result.kurtosis,
        if result.is_unsmoothed() {
            "  [left unsmoothed: high-kurtosis spikes]"
        } else {
            ""
        }
    );
    println!("  raw  {}", sparkline(values, 72));
    println!("  ASAP {}\n", sparkline(&result.smoothed, 72));
}
