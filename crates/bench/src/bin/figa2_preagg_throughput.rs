//! Figure A.2: throughput of exhaustive search and ASAP on machine_temp
//! and traffic_data, with and without pixel-aware preaggregation, at a
//! 1200-pixel target.
//!
//! Paper: Exhaustive 57/26, ASAP-no-agg 18K/5K, Grid1(agg) 233K/336K,
//! ASAP(agg) 5.9M/4.7M points/sec — i.e. preaggregated ASAP is ~5 orders
//! of magnitude above raw exhaustive.
//!
//! Run: `cargo run --release -p asap-bench --bin figa2_preagg_throughput`

use asap_core::{preaggregate, AsapConfig, SearchStrategy};
use asap_eval::{perf, report, Table};
use std::time::{Duration, Instant};

fn main() {
    println!("== Figure A.2: preaggregation throughput, 1200 px ==\n");
    let datasets = [asap_data::machine_temp(), asap_data::traffic_data()];
    let mut table = Table::new(
        std::iter::once("Throughput (pts/s)".to_string())
            .chain(datasets.iter().map(|d| d.name().to_string()))
            .collect::<Vec<_>>(),
    );

    let mut rows: Vec<Vec<String>> = vec![
        vec!["Exhaustive".into()],
        vec!["ASAP no-agg".into()],
        vec!["Grid1 (agg)".into()],
        vec!["ASAP (agg)".into()],
    ];

    for d in &datasets {
        let raw = d.values();
        let n = raw.len();
        let config = AsapConfig::default();

        // Exhaustive on raw (budgeted).
        let (t, ex) = perf::measure_raw_exhaustive_budgeted(raw, &config, Duration::from_secs(6));
        rows[0].push(format!(
            "{}{}",
            report::eng(n as f64 / t.as_secs_f64()),
            if ex { "*" } else { "" }
        ));

        // ASAP on raw.
        let start = Instant::now();
        let _ = std::hint::black_box(SearchStrategy::Asap.search(raw, &config));
        rows[1].push(report::eng(n as f64 / start.elapsed().as_secs_f64().max(1e-9)));

        // Preaggregated variants (search cost charged to all raw points).
        let (agg, _) = preaggregate(raw, 1200);
        let cfg = AsapConfig {
            resolution: 1200,
            ..AsapConfig::default()
        };
        for (i, strat) in [(2usize, SearchStrategy::Exhaustive), (3, SearchStrategy::Asap)] {
            let m = perf::measure(&agg, strat, &cfg).unwrap();
            rows[i].push(report::eng(m.throughput(n)));
        }
    }
    for r in rows {
        table.row(r);
    }
    print!("{table}");
    println!("\n* = extrapolated under budget");
    println!("paper (machine_temp / traffic_data): 57/26, 18K/5K, 233K/336K, 5.9M/4.7M");
}
