//! Line-protocol ingest-pipeline benchmark for the sharded engine.
//!
//! Measures, per (shards, parsers) configuration, the wall-clock
//! throughput of the concurrent ingest pipeline (`tsdb::ingest`:
//! parser workers → per-shard bounded channels → per-shard writers)
//! against the serial `line_protocol::ingest` baseline on the same
//! document, and asserts the resulting stores are observationally
//! identical before trusting any number. Results are written to
//! `BENCH_ingest.json` (see `EXPERIMENTS.md` for the recorded run).
//!
//! Hand-timed wall clock, median of `BENCH_INGEST_RUNS` runs — the
//! criterion shim's budgeted micro-timing is wrong for multi-threaded
//! phases, which need one timed span per full ingest.
//!
//! Knobs: `BENCH_INGEST_POINTS` (points per series, default 100_000),
//! `BENCH_INGEST_SERIES` (default 8), `BENCH_INGEST_RUNS` (default 3).

use std::io::Write as _;
use std::time::Instant;

use asap_tsdb::{
    line_protocol, pipeline_ingest, IngestConfig, IngestMetrics, ObsRegistry, RangeQuery,
    Selector, ShardedConfig, ShardedDb, Tsdb, TsdbConfig,
};

const BLOCK_CAPACITY: usize = 4096;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One interleaved line-protocol document: `series` hosts × `points`
/// samples, two fields per record.
fn build_doc(series: usize, points: usize) -> String {
    let mut doc = String::with_capacity(series * points * 48);
    for t in 0..points {
        for h in 0..series {
            doc.push_str(&format!(
                "req,host=h{h:02} rate={:.4},errors={} {t}\n",
                (std::f64::consts::TAU * t as f64 / 900.0).sin() + h as f64,
                (t % 17) as f64,
            ));
        }
    }
    doc
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let points = env_usize("BENCH_INGEST_POINTS", 100_000);
    let series = env_usize("BENCH_INGEST_SERIES", 8);
    let runs = env_usize("BENCH_INGEST_RUNS", 3).max(1);
    let doc = build_doc(series, points);
    let total_points = series * points * 2;

    println!(
        "ingest pipeline: {series} series x {points} records (x2 fields = {total_points} pts), median of {runs} ({} host cpus)",
        std::thread::available_parallelism().map_or(0, usize::from)
    );

    // Serial baseline: parse + write on one thread, fresh store per run.
    let serial_secs = median(
        (0..runs)
            .map(|_| {
                let db = Tsdb::with_config(TsdbConfig {
                    block_capacity: BLOCK_CAPACITY,
                });
                let t = Instant::now();
                let n = line_protocol::ingest(&db, &doc, 0).unwrap();
                let secs = t.elapsed().as_secs_f64();
                assert_eq!(n, total_points);
                secs
            })
            .collect(),
    );
    let serial_pts_per_sec = total_points as f64 / serial_secs;
    println!(
        "{:>7} {:>8} {:>14} {:>12}   (serial baseline)",
        "-", "-", format!("{serial_pts_per_sec:.3e}"), format!("{:.1}", serial_secs * 1e3)
    );

    // The oracle the pipeline output is checked against.
    let oracle = Tsdb::with_config(TsdbConfig {
        block_capacity: BLOCK_CAPACITY,
    });
    line_protocol::ingest(&oracle, &doc, 0).unwrap();
    let oracle_out = oracle
        .query_selector(&Selector::any(), RangeQuery::raw(i64::MIN + 1, i64::MAX))
        .unwrap();

    println!(
        "{:>7} {:>8} {:>14} {:>12} {:>10}",
        "shards", "parsers", "ingest pts/s", "ingest ms", "speedup"
    );
    let mut rows = Vec::new();
    for &(shards, parsers) in &[(1usize, 1usize), (1, 4), (2, 4), (4, 4), (8, 4), (8, 8)] {
        let config = IngestConfig {
            parsers,
            queue_depth: 8,
            chunk_lines: 1024,
            lateness: None,
            ..IngestConfig::default()
        };
        let secs = median(
            (0..runs)
                .map(|_| {
                    let db = ShardedDb::with_config(ShardedConfig::new(shards, BLOCK_CAPACITY));
                    let t = Instant::now();
                    let report = pipeline_ingest(&db, &doc, 0, &config).unwrap();
                    let secs = t.elapsed().as_secs_f64();
                    assert!(report.is_clean(), "{report:?}");
                    assert_eq!(report.points, total_points);
                    secs
                })
                .collect(),
        );
        // Correctness gate: the measured path must equal the oracle.
        let db = ShardedDb::with_config(ShardedConfig::new(shards, BLOCK_CAPACITY));
        pipeline_ingest(&db, &doc, 0, &config).unwrap();
        assert_eq!(
            db.query_selector(&Selector::any(), RangeQuery::raw(i64::MIN + 1, i64::MAX))
                .unwrap(),
            oracle_out,
            "pipeline output diverges from serial oracle at shards={shards}"
        );
        let pts_per_sec = total_points as f64 / secs;
        println!(
            "{:>7} {:>8} {:>14.3e} {:>12.1} {:>10.2}",
            shards,
            parsers,
            pts_per_sec,
            secs * 1e3,
            pts_per_sec / serial_pts_per_sec
        );
        rows.push((shards, parsers, pts_per_sec, secs));
    }

    let best = rows.iter().map(|&(_, _, p, _)| p).fold(f64::NEG_INFINITY, f64::max);
    println!(
        "best pipeline speedup over serial ingest: {:.2}x",
        best / serial_pts_per_sec
    );

    // Observability overhead: the same pipeline config timed with and
    // without `IngestMetrics` attached (the server always attaches it),
    // interleaved per run so drift hits both arms equally. Stage timing
    // is per batch, so the delta should be noise (budget: <= 3%).
    let obs_shards = 4usize;
    let obs_parsers = 4usize;
    let registry = ObsRegistry::new();
    let time_one = |metrics: Option<IngestMetrics>| {
        let config = IngestConfig {
            parsers: obs_parsers,
            queue_depth: 8,
            chunk_lines: 1024,
            lateness: None,
            metrics,
            ..IngestConfig::default()
        };
        let db = ShardedDb::with_config(ShardedConfig::new(obs_shards, BLOCK_CAPACITY));
        let t = Instant::now();
        let report = pipeline_ingest(&db, &doc, 0, &config).unwrap();
        let secs = t.elapsed().as_secs_f64();
        assert!(report.is_clean(), "{report:?}");
        secs
    };
    let mut plain_runs = Vec::new();
    let mut instrumented_runs = Vec::new();
    for _ in 0..runs {
        plain_runs.push(time_one(None));
        instrumented_runs.push(time_one(Some(IngestMetrics::new(&registry))));
    }
    let plain = total_points as f64 / median(plain_runs);
    let instrumented = total_points as f64 / median(instrumented_runs);
    let overhead_pct = (plain / instrumented - 1.0) * 100.0;
    println!(
        "observability overhead at shards={obs_shards} parsers={obs_parsers}: \
         {plain:.3e} -> {instrumented:.3e} pts/s ({overhead_pct:+.2}%)"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"ingest_pipeline\",\n");
    json.push_str(
        "  \"note\": \"hand-timed wall clock (not the criterion shim); absolute numbers are machine-relative, compare configurations within one run; output checked byte-identical to the serial oracle before timing is trusted\",\n",
    );
    json.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, usize::from)
    ));
    json.push_str(&format!("  \"series\": {series},\n"));
    json.push_str(&format!("  \"records_per_series\": {points},\n"));
    json.push_str(&format!("  \"total_points\": {total_points},\n"));
    json.push_str(&format!("  \"runs_per_config\": {runs},\n"));
    json.push_str(&format!(
        "  \"serial_baseline\": {{\"points_per_sec\": {serial_pts_per_sec:.0}, \"wall_ms\": {:.2}}},\n",
        serial_secs * 1e3
    ));
    json.push_str("  \"configs\": [\n");
    for (i, (shards, parsers, pts_per_sec, secs)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {shards}, \"parsers\": {parsers}, \"points_per_sec\": {pts_per_sec:.0}, \"wall_ms\": {:.2}, \"speedup_vs_serial\": {:.3}}}{}\n",
            secs * 1e3,
            pts_per_sec / serial_pts_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"observability_overhead\": {{\"shards\": {obs_shards}, \"parsers\": {obs_parsers}, \
         \"uninstrumented_points_per_sec\": {plain:.0}, \
         \"instrumented_points_per_sec\": {instrumented:.0}, \
         \"overhead_pct\": {overhead_pct:.2}}}\n"
    ));
    json.push_str("}\n");

    let path = "BENCH_ingest.json";
    let mut f = std::fs::File::create(path).expect("create BENCH_ingest.json");
    f.write_all(json.as_bytes()).expect("write BENCH_ingest.json");
    println!("wrote {path}");
}
