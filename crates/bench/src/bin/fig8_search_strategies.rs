//! Figure 8: throughput and quality of ASAP, grid search (step 2 / 10) and
//! binary search relative to exhaustive search over preaggregated series,
//! for target resolutions 1000–5000.
//!
//! Paper: ASAP gets up to 60× exhaustive's speed with near-identical
//! roughness; binary search is comparable in speed but up to 7.5× rougher;
//! Grid2 matches quality but doesn't scale; Grid10 is worst overall.
//!
//! Run: `cargo run --release -p asap-bench --bin fig8_search_strategies`
//! (averages over the 7 largest datasets; ASAP_FAST=1 skips gas_sensor)

use asap_core::SearchStrategy;
use asap_eval::{perf, report, Table};

fn main() {
    println!("== Figure 8: search strategies vs exhaustive (preaggregated) ==\n");
    let strategies = [
        SearchStrategy::Grid { step: 2 },
        SearchStrategy::Grid { step: 10 },
        SearchStrategy::Binary,
        SearchStrategy::Asap,
    ];
    let datasets: Vec<_> = asap_bench::seven_largest()
        .into_iter()
        .filter(|d| std::env::var("ASAP_FAST").is_err() || d.n_points <= 100_000)
        .collect();
    let resolutions = [1000usize, 2000, 3000, 4000, 5000];

    let mut speed = Table::new(
        std::iter::once("Speed-up".to_string())
            .chain(resolutions.iter().map(|r| r.to_string()))
            .collect::<Vec<_>>(),
    );
    let mut rough = Table::new(
        std::iter::once("Roughness ratio".to_string())
            .chain(resolutions.iter().map(|r| r.to_string()))
            .collect::<Vec<_>>(),
    );

    // Pre-generate the raw series once.
    let raw: Vec<(String, Vec<f64>)> = datasets
        .iter()
        .map(|d| (d.name.to_string(), d.generate().into_values()))
        .collect();

    let mut per_strategy: Vec<(String, Vec<f64>, Vec<f64>)> = strategies
        .iter()
        .map(|s| (s.name(), Vec::new(), Vec::new()))
        .collect();

    for &res in &resolutions {
        // Average over datasets, repeating the timing a few times for
        // stability at small aggregate sizes.
        let mut sums = vec![(0.0f64, 0.0f64); strategies.len()];
        for (_name, data) in &raw {
            const REPS: usize = 3;
            let mut best: Vec<perf::ComparisonRow> = Vec::new();
            for _ in 0..REPS {
                let rows = perf::compare_at_resolution(data, res, &strategies)
                    .expect("comparable dataset");
                if best.is_empty() {
                    best = rows;
                } else {
                    for (b, r) in best.iter_mut().zip(rows) {
                        b.speedup = b.speedup.max(r.speedup);
                    }
                }
            }
            for (i, row) in best.iter().enumerate() {
                sums[i].0 += row.speedup;
                sums[i].1 += row.roughness_ratio;
            }
        }
        for (i, (s, r)) in sums.iter().enumerate() {
            per_strategy[i].1.push(s / raw.len() as f64);
            per_strategy[i].2.push(r / raw.len() as f64);
        }
    }

    for (name, speedups, ratios) in &per_strategy {
        speed.row(
            std::iter::once(name.clone())
                .chain(speedups.iter().map(|s| report::f(*s, 1)))
                .collect::<Vec<_>>(),
        );
        rough.row(
            std::iter::once(name.clone())
                .chain(ratios.iter().map(|r| report::f(*r, 2)))
                .collect::<Vec<_>>(),
        );
    }
    print!("{speed}");
    println!();
    print!("{rough}");
    println!("\npaper: ASAP up to 60x faster than exhaustive with ~1.0 roughness ratio;");
    println!("binary similar speed but up to 7.5x rougher; Grid10 worst quality.");
}
