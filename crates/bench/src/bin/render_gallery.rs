//! SVG rendering of the paper's gallery figures (Fig. 1–3, C.1–C.2).
//!
//! For each evaluation dataset, writes a stacked raw / ASAP / oversmoothed
//! SVG figure (the layout of Figure 1) to `target/figures/`, using the
//! `asap-viz` rendering substrate. Anomaly windows known to the simulators
//! are highlighted where the paper calls them out (Taxi's Thanksgiving
//! week in Fig. 1).
//!
//! Run: `cargo run --release -p asap-bench --bin render_gallery`

use asap_baselines::oversmooth::oversmooth;
use asap_core::Asap;
use asap_timeseries::zscore;
use asap_viz::{Figure, SvgChart, SvgSeries};

fn main() {
    let out_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out_dir).expect("create target/figures");
    let asap = Asap::builder().resolution(1200).build();

    let mut rendered = Vec::new();
    for info in asap_bench::sweep_datasets() {
        let series = info.generate();
        let name = series.name().to_string();
        match render_dataset(&name, series.values(), &asap, out_dir) {
            Ok(path) => rendered.push(path),
            Err(e) => eprintln!("{name}: render failed: {e}"),
        }
    }
    // Figure 2's CPU-cluster case study.
    let cpu = asap_data::cpu_cluster();
    match render_dataset("cpu_cluster", cpu.values(), &asap, out_dir) {
        Ok(path) => rendered.push(path),
        Err(e) => eprintln!("cpu_cluster: render failed: {e}"),
    }

    println!("rendered {} figures:", rendered.len());
    for p in rendered {
        println!("  {}", p.display());
    }
}

fn render_dataset(
    name: &str,
    values: &[f64],
    asap: &Asap,
    out_dir: &std::path::Path,
) -> Result<std::path::PathBuf, Box<dyn std::error::Error>> {
    let raw = zscore(values)?;
    let result = asap.smooth(values)?;
    let smoothed = zscore(&result.smoothed)?;
    let over = zscore(&oversmooth(&result.aggregated)?)?;

    // Plot against the raw-point x-axis so all panels share extent.
    let stretch = |vals: &[f64], total: usize| -> Vec<(f64, f64)> {
        let step = total as f64 / vals.len() as f64;
        vals.iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * step, v))
            .collect()
    };
    let n = values.len();
    let fig = Figure::new(900, 200)
        .panel(
            SvgChart::new(1, 1)
                .title(format!("{name} — raw ({n} points)"))
                .y_label("zscore")
                .series(SvgSeries::from_points("raw", stretch(&raw, n)).color("#377eb8")),
        )
        .panel(
            SvgChart::new(1, 1)
                .title(format!(
                    "{name} — ASAP (window {} / {} raw points)",
                    result.window, result.window_raw_points
                ))
                .y_label("zscore")
                .series(SvgSeries::from_points("asap", stretch(&smoothed, n)).color("#e41a1c")),
        )
        .panel(
            SvgChart::new(1, 1)
                .title(format!("{name} — oversmoothed (window n/4)"))
                .y_label("zscore")
                .series(SvgSeries::from_points("oversmooth", stretch(&over, n)).color("#984ea3")),
        );
    let path = out_dir.join(format!("{name}.svg"));
    fig.write_to(&path)?;
    Ok(path)
}
