//! Figure 11: factor analysis (cumulatively enable Pixel → AC → Lazy) and
//! lesion study (remove each optimization) on the machine-temp dataset, at
//! 2000 px and 5000 px.
//!
//! Paper: each optimization contributes 2–4 orders of magnitude;
//! end-to-end streaming ASAP is ~7 orders of magnitude over the baseline;
//! removing any one optimization costs 2–3 orders of magnitude.
//!
//! Run: `cargo run --release -p asap-bench --bin fig11_factor_analysis`

use asap_eval::factor::{run_variant, CUMULATIVE, LESION};
use asap_eval::{report, Table};
use std::time::Duration;

fn main() {
    println!("== Figure 11: factor analysis & lesion study (machine_temp) ==\n");
    let series = asap_data::machine_temp();
    // One day of 5-minute points, the paper's lazy refresh interval.
    let lazy_interval = 288usize;
    let budget = Duration::from_secs(8);
    let resolutions = [2000usize, 5000];

    for (title, grid) in [("cumulative", &CUMULATIVE[..]), ("lesion", &LESION[..])] {
        let mut table = Table::new(
            std::iter::once("Throughput (pts/s)".to_string())
                .chain(resolutions.iter().map(|r| format!("{r}px")))
                .collect::<Vec<_>>(),
        );
        for &variant in grid {
            let mut row = vec![variant.name.to_string()];
            for &res in &resolutions {
                let r = run_variant(&series, res, variant, lazy_interval, budget);
                row.push(format!(
                    "{}{}",
                    report::eng(r.throughput),
                    if r.extrapolated { "*" } else { "" }
                ));
            }
            table.row(row);
        }
        println!("[{title}]");
        print!("{table}");
        println!();
    }
    println!("* = budget hit; throughput measured on the processed prefix");
    println!("\npaper (2000px/5000px): Baseline 0.01/0.01, +Pixel 141/3.6, +AC 4.0K/271,");
    println!("+Lazy 113K/20.4K; lesion: no-Pixel 879/834, no-AC 4.2K/274, no-Lazy 614/65.8");
}
