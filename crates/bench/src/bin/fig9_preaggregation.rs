//! Figure 9: impact of pixel-aware preaggregation — throughput and quality
//! of ASAP and exhaustive search, with and without preaggregation,
//! relative to the baseline (exhaustive on the raw series).
//!
//! Paper: preaggregated ASAP is ~4–5 orders of magnitude faster than the
//! baseline while keeping roughness within 1.2× (sometimes better, because
//! preaggregation lowers the initial kurtosis). Quality is compared
//! *as rendered*: every variant's smoothed output is reduced to the same
//! target resolution before measuring roughness.
//!
//! Run: `cargo run --release -p asap-bench --bin fig9_preaggregation`
//! (uses gas_sensor, 4.2M points; ASAP_FAST=1 switches to machine_temp)

use asap_core::{preaggregate, AsapConfig, SearchStrategy};
use asap_eval::{perf, report, Table};
use asap_timeseries::{roughness, sma};
use std::time::{Duration, Instant};

/// Roughness of a smoothed series as it would be rendered at `resolution`.
fn rendered_roughness(smoothed: &[f64], resolution: usize) -> f64 {
    let (view, _) = preaggregate(smoothed, resolution);
    roughness(&view).unwrap_or(f64::NAN)
}

fn main() {
    println!("== Figure 9: preaggregation on/off vs raw-exhaustive baseline ==\n");
    let series = if std::env::var("ASAP_FAST").is_ok() {
        asap_data::machine_temp()
    } else {
        asap_data::gas_sensor()
    };
    let raw = series.values();
    println!("dataset: {} ({} points)", series.name(), raw.len());
    let resolutions = [1000usize, 2000, 3000, 4000, 5000];

    let config = AsapConfig::default();
    // Baseline: exhaustive over the raw series (budgeted + extrapolated).
    let (baseline_time, extrapolated) =
        perf::measure_raw_exhaustive_budgeted(raw, &config, Duration::from_secs(8));
    println!(
        "baseline (exhaustive on raw): {:.1}s{}\n",
        baseline_time.as_secs_f64(),
        if extrapolated { " (extrapolated)" } else { "" }
    );

    // ASAP on raw data: its answer doubles as the quality reference (on
    // every Table 2 dataset ASAP matches the exhaustive window, and the
    // true raw-exhaustive optimum is unaffordable at this scale). On
    // multi-million-point series the raw ACF carries thousands of spurious
    // ripple peaks, so — like the paper, which reports ASAP-no-agg in the
    // thousands of points/sec — we measure a 500k-point prefix and scale.
    const RAW_CAP: usize = 500_000;
    let (probe, scale) = if raw.len() > RAW_CAP {
        (&raw[..RAW_CAP], raw.len() as f64 / RAW_CAP as f64)
    } else {
        (raw, 1.0)
    };
    let start = Instant::now();
    let asap_raw = SearchStrategy::Asap.search(probe, &config).expect("searchable");
    let asap_raw_time = start.elapsed().mul_f64(scale);
    if scale > 1.0 {
        println!(
            "ASAP(raw) measured on a {RAW_CAP}-point prefix, scaled x{scale:.1}\n"
        );
    }
    let raw_window = (asap_raw.window as f64 * scale) as usize;
    let baseline_smoothed = if raw_window <= 1 {
        raw.to_vec()
    } else {
        sma(raw, raw_window.min(raw.len() - 1)).expect("window fits")
    };

    let mut speed = Table::new(
        std::iter::once("Speed-up vs baseline".to_string())
            .chain(resolutions.iter().map(|r| r.to_string()))
            .collect::<Vec<_>>(),
    );
    let mut rough = Table::new(
        std::iter::once("Roughness ratio".to_string())
            .chain(resolutions.iter().map(|r| r.to_string()))
            .collect::<Vec<_>>(),
    );

    let mut rows: Vec<(String, Vec<String>, Vec<String>)> = vec![
        ("Exhaustive(raw)".into(), vec!["1".into(); 5], vec!["1.00".into(); 5]),
        (
            "ASAP(raw)".into(),
            vec![report::eng(baseline_time.as_secs_f64() / asap_raw_time.as_secs_f64().max(1e-9)); 5],
            Vec::new(),
        ),
        ("Grid1(agg)".into(), Vec::new(), Vec::new()),
        ("ASAP(agg)".into(), Vec::new(), Vec::new()),
    ];

    for &res in &resolutions {
        // Quality reference at this resolution: the raw-searched smoothed
        // series, rendered down to `res` points.
        let ref_rough = rendered_roughness(&baseline_smoothed, res).max(1e-12);
        rows[1].2.push(report::f(
            rendered_roughness(&baseline_smoothed, res) / ref_rough,
            2,
        ));

        let (agg, _) = preaggregate(raw, res);
        let cfg = AsapConfig {
            resolution: res,
            ..AsapConfig::default()
        };
        for (idx, strat) in [(2usize, SearchStrategy::Exhaustive), (3, SearchStrategy::Asap)] {
            let m = perf::measure(&agg, strat, &cfg).expect("agg searchable");
            rows[idx].1.push(report::eng(
                baseline_time.as_secs_f64() / m.elapsed.as_secs_f64().max(1e-9),
            ));
            let smoothed = if m.outcome.window <= 1 {
                agg.clone()
            } else {
                sma(&agg, m.outcome.window).expect("window fits")
            };
            rows[idx]
                .2
                .push(report::f(rendered_roughness(&smoothed, res) / ref_rough, 2));
        }
    }

    for (name, speedups, ratios) in &rows {
        speed.row(std::iter::once(name.clone()).chain(speedups.clone()).collect::<Vec<_>>());
        rough.row(std::iter::once(name.clone()).chain(ratios.clone()).collect::<Vec<_>>());
    }
    print!("{speed}");
    println!();
    print!("{rough}");
    println!("\npaper: preaggregation buys ~5 (vs raw exhaustive) and ~2.5 (vs raw ASAP)");
    println!("orders of magnitude while keeping rendered roughness within ~1.2x.");
}
