//! Figure 6: simulated anomaly-identification study — accuracy and
//! response time for seven visualization techniques on the five user-study
//! datasets.
//!
//! This reproduces the *shape* of the MTurk study through the observer
//! model documented in `asap_eval::observer` (the substitution is recorded
//! in DESIGN.md): ASAP leads on accuracy and response time except on Temp,
//! where the oversmoothed plot best shows the decades-long warming trend.
//!
//! Run: `cargo run --release -p asap-bench --bin fig6_user_study_accuracy`

use asap_eval::{ObserverModel, Table, Technique};

fn main() {
    println!("== Figure 6: accuracy (%) and response time (s), 50 simulated trials/cell ==\n");
    let model = ObserverModel::default();
    let datasets = asap_data::user_study_datasets();
    let techniques = Technique::figure6();

    let mut acc = Table::new(
        std::iter::once("Accuracy %".to_string())
            .chain(datasets.iter().map(|d| d.name.to_string()))
            .chain(["mean".to_string()])
            .collect::<Vec<_>>(),
    );
    let mut time = Table::new(
        std::iter::once("Time (s)".to_string())
            .chain(datasets.iter().map(|d| d.name.to_string()))
            .chain(["mean".to_string()])
            .collect::<Vec<_>>(),
    );

    let mut summary: Vec<(String, f64, f64)> = Vec::new();
    for t in techniques {
        let mut acc_row = vec![t.name().to_string()];
        let mut time_row = vec![t.name().to_string()];
        let mut mean_acc = 0.0;
        let mut mean_time = 0.0;
        for d in &datasets {
            let r = model.run_cell(d, t).expect("user-study dataset has ground truth");
            acc_row.push(format!("{:.0}", r.accuracy * 100.0));
            time_row.push(format!("{:.1}", r.response_time));
            mean_acc += r.accuracy;
            mean_time += r.response_time;
        }
        mean_acc /= datasets.len() as f64;
        mean_time /= datasets.len() as f64;
        acc_row.push(format!("{:.1}", mean_acc * 100.0));
        time_row.push(format!("{:.1}", mean_time));
        acc.row(acc_row);
        time.row(time_row);
        summary.push((t.name().to_string(), mean_acc, mean_time));
    }
    print!("{acc}");
    println!();
    print!("{time}");

    let asap = summary.iter().find(|s| s.0 == "ASAP").unwrap().clone();
    let orig = summary.iter().find(|s| s.0 == "Original").unwrap().clone();
    println!(
        "\nASAP vs Original: accuracy {:+.1}%, response time {:+.1}%",
        (asap.1 - orig.1) / orig.1 * 100.0,
        (asap.2 - orig.2) / orig.2 * 100.0
    );
    println!("paper: +21.3% accuracy, −23.9% time vs original; +35.0% / −29.8% vs all others");
    println!("note: simulated observer — orderings transfer, absolute numbers do not");
}
