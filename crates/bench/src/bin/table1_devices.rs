//! Table 1: device resolutions and the search-space reduction pixel-aware
//! preaggregation achieves on a 1M-point series.
//!
//! Run: `cargo run --release -p asap-bench --bin table1_devices`

use asap_core::DEVICES;
use asap_eval::Table;

fn main() {
    println!("== Table 1: pixel-aware preaggregation, 1M-point series ==\n");
    let mut table = Table::new(vec!["Device", "Resolution", "Reduction on 1M pts"]);
    const N: usize = 1_000_000;
    for d in DEVICES {
        table.row(vec![
            d.name.to_string(),
            format!("{} x {}", d.horizontal, d.vertical),
            format!("{:.0}x", d.reduction_on(N)),
        ]);
    }
    print!("{table}");
    println!("\npaper: 3676x / 694x / 434x / 291x / 195x");
}
