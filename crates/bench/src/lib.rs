//! Shared glue for the benchmark binaries that regenerate the paper's
//! tables and figures. See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use asap_data::DatasetInfo;

/// The "seven largest datasets" of Figure 8 (Table 2 rows 1–7).
pub fn seven_largest() -> Vec<DatasetInfo> {
    asap_data::all_datasets().into_iter().take(7).collect()
}

/// Datasets small enough for quick sweeps (excludes the 4.2M-point gas
/// sensor when `fast` is set via the ASAP_FAST env var).
pub fn sweep_datasets() -> Vec<DatasetInfo> {
    let fast = std::env::var("ASAP_FAST").is_ok();
    asap_data::all_datasets()
        .into_iter()
        .filter(move |d| !fast || d.n_points <= 100_000)
        .collect()
}

/// Unicode sparkline used by the gallery figures.
pub fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let span = (max - min).max(1e-12);
    let step = (values.len() as f64 / width as f64).max(1.0);
    (0..width.min(values.len()))
        .map(|c| {
            let i = ((c as f64) * step) as usize;
            BARS[(((values[i] - min) / span * 7.0).round() as usize).min(7)]
        })
        .collect()
}
