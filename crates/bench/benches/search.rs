//! Criterion microbench: the four window-search strategies over one
//! preaggregated series — the machinery behind Figure 8.

use asap_core::{preaggregate, AsapConfig, SearchStrategy};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_strategies(c: &mut Criterion) {
    let series = asap_data::machine_temp();
    let (agg, _) = preaggregate(series.values(), 1200);
    let config = AsapConfig {
        resolution: 1200,
        ..AsapConfig::default()
    };

    let mut group = c.benchmark_group("search_machine_temp_1200px");
    for strat in [
        SearchStrategy::Exhaustive,
        SearchStrategy::Grid { step: 2 },
        SearchStrategy::Grid { step: 10 },
        SearchStrategy::Binary,
        SearchStrategy::Asap,
    ] {
        group.bench_function(strat.name(), |b| {
            b.iter(|| strat.search(black_box(&agg), &config).unwrap())
        });
    }
    group.finish();
}

fn bench_seeded_search(c: &mut Criterion) {
    // Streaming's warm-start: the seed should make re-search cheaper.
    let series = asap_data::taxi();
    let (agg, _) = preaggregate(series.values(), 1200);
    let config = AsapConfig {
        resolution: 1200,
        ..AsapConfig::default()
    };
    let cold = asap_core::search::asap::search(&agg, &config).unwrap();

    let mut group = c.benchmark_group("seeded_search_taxi");
    group.bench_function("cold", |b| {
        b.iter(|| asap_core::search::asap::search(black_box(&agg), &config).unwrap())
    });
    group.bench_function("seeded", |b| {
        b.iter(|| {
            asap_core::search::asap::search_seeded(black_box(&agg), &config, Some(cold.window))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_seeded_search);
criterion_main!(benches);
