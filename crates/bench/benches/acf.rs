//! Criterion microbench: autocorrelation — the FFT path ASAP uses vs the
//! brute-force estimator it replaces (§4.3.3's O(n log n) vs O(n²)).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn data(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (std::f64::consts::TAU * i as f64 / 48.0).sin()
            + ((i as u64 * 2654435761) % 1000) as f64 / 1000.0)
        .collect()
}

fn bench_acf(c: &mut Criterion) {
    let mut group = c.benchmark_group("acf");
    for &n in &[1_000usize, 5_000] {
        let series = data(n);
        let max_lag = n / 10;
        group.bench_with_input(BenchmarkId::new("fft", n), &series, |b, s| {
            b.iter(|| asap_dsp::autocorrelation(black_box(s), max_lag).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("brute_force", n), &series, |b, s| {
            b.iter(|| asap_dsp::acf_brute_force(black_box(s), max_lag).unwrap())
        });
    }
    group.finish();
}

fn bench_peaks(c: &mut Criterion) {
    let series = data(5_000);
    let acf = asap_dsp::autocorrelation(&series, 500).unwrap();
    c.bench_function("find_peaks_5000", |b| {
        b.iter(|| asap_dsp::find_peaks(black_box(&acf), asap_dsp::PeakConfig::default()))
    });
}

criterion_group!(benches, bench_acf, bench_peaks);
criterion_main!(benches);
