//! Incremental vs from-scratch metric maintenance (§4.5 ablation).
//!
//! Streaming ASAP re-checks roughness and kurtosis at every refresh. This
//! bench quantifies the win of the O(1)-amortized sliding sketches
//! (`asap-core::incremental`) over recomputing the batch statistics on the
//! window tail at every point — the trade the paper's on-demand-update
//! optimization navigates.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use asap_core::{SlidingMoments, SlidingRoughness};
use asap_timeseries::{kurtosis, roughness};

fn stream(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            (i as f64 / 60.0).sin()
                + 0.3 * ((((i as u64).wrapping_mul(2654435761)) % 1000) as f64 / 1000.0 - 0.5)
        })
        .collect()
}

fn bench_moments(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_kurtosis");
    let data = stream(20_000);
    for window in [64usize, 1024] {
        group.throughput(Throughput::Elements(data.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("sliding_sketch", window),
            &window,
            |b, &w| {
                b.iter(|| {
                    let mut sk = SlidingMoments::new(w).unwrap();
                    let mut acc = 0.0;
                    for &x in &data {
                        sk.push(x);
                        if let Some(k) = sk.kurtosis() {
                            acc += k;
                        }
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batch_recompute", window),
            &window,
            |b, &w| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for i in 0..data.len() {
                        let lo = (i + 1).saturating_sub(w);
                        if i + 1 - lo >= 2 {
                            if let Ok(k) = kurtosis(&data[lo..=i]) {
                                acc += k;
                            }
                        }
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

fn bench_roughness(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_roughness");
    let data = stream(20_000);
    let window = 512usize;
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("sliding_sketch", |b| {
        b.iter(|| {
            let mut sr = SlidingRoughness::new(window).unwrap();
            let mut acc = 0.0;
            for &x in &data {
                sr.push(x);
                if let Some(r) = sr.roughness() {
                    acc += r;
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("batch_recompute", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..data.len() {
                let lo = (i + 1).saturating_sub(window);
                if i + 1 - lo >= 3 {
                    if let Ok(r) = roughness(&data[lo..=i]) {
                        acc += r;
                    }
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_moments, bench_roughness);
criterion_main!(benches);
