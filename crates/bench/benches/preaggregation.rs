//! Criterion microbench: pixel-aware preaggregation at Table 1's device
//! resolutions on a 1M-point series.

use asap_core::preaggregate;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_preaggregation(c: &mut Criterion) {
    let data: Vec<f64> = (0..1_000_000)
        .map(|i| (i as f64 * 0.0011).sin() + ((i as u64 * 2654435761) % 1000) as f64 / 1000.0)
        .collect();
    let mut group = c.benchmark_group("preaggregate_1M");
    group.throughput(Throughput::Elements(1_000_000));
    for device in asap_core::DEVICES {
        group.bench_with_input(
            BenchmarkId::new("device", device.horizontal),
            &(device.horizontal as usize),
            |b, &res| b.iter(|| preaggregate(black_box(&data), res)),
        );
    }
    group.finish();
}

fn bench_end_to_end_smooth(c: &mut Criterion) {
    // Full facade on 1M points: the "sub-second vs hours" §4.4 claim.
    let data: Vec<f64> = (0..1_000_000)
        .map(|i| {
            (std::f64::consts::TAU * i as f64 / 86_400.0).sin()
                + ((i as u64 * 2654435761) % 1000) as f64 / 1000.0
        })
        .collect();
    let asap = asap_core::Asap::builder().resolution(1200).build();
    c.bench_function("asap_end_to_end_1M_1200px", |b| {
        b.iter(|| asap.smooth(black_box(&data)).unwrap().window)
    });
}

criterion_group!(benches, bench_preaggregation, bench_end_to_end_smooth);
criterion_main!(benches);
