//! Criterion microbench: the SMA smoothing kernel (naive vs running-sum vs
//! prefix-sum), the hot inner loop of every candidate evaluation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn data(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.013).sin() + ((i as u64 * 2654435761) % 1000) as f64 / 1000.0)
        .collect()
}

fn bench_sma(c: &mut Criterion) {
    let mut group = c.benchmark_group("sma");
    for &n in &[10_000usize, 100_000] {
        let series = data(n);
        let window = n / 100;
        group.bench_with_input(BenchmarkId::new("naive", n), &series, |b, s| {
            b.iter(|| asap_timeseries::sma_naive(black_box(s), window).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("running_sum", n), &series, |b, s| {
            b.iter(|| asap_timeseries::sma(black_box(s), window).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("prefix_sum", n), &series, |b, s| {
            let ps = asap_timeseries::PrefixSum::new(s);
            b.iter(|| ps.sma(black_box(window)).unwrap())
        });
    }
    group.finish();
}

fn bench_candidate_evaluation(c: &mut Criterion) {
    // The zero-allocation evaluator behind every search probe.
    let series = data(5_000);
    let ev = asap_core::metrics::CandidateEvaluator::new(&series).unwrap();
    c.bench_function("candidate_evaluate_w50", |b| {
        b.iter(|| ev.evaluate(black_box(50)).unwrap())
    });
}

criterion_group!(benches, bench_sma, bench_candidate_evaluation);
criterion_main!(benches);
