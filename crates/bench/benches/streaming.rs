//! Criterion microbench: streaming ASAP ingestion at different refresh
//! intervals — the per-point cost behind Figure 10.

use asap_core::{StreamingAsap, StreamingConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn telemetry(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            (std::f64::consts::TAU * i as f64 / 288.0).sin()
                + ((i as u64 * 2654435761) % 1000) as f64 / 1000.0
        })
        .collect()
}

fn bench_streaming(c: &mut Criterion) {
    let data = telemetry(50_000);
    let mut group = c.benchmark_group("streaming_ingest_50k");
    group.throughput(Throughput::Elements(data.len() as u64));
    for &interval in &[1_000usize, 10_000, 50_000] {
        group.bench_with_input(
            BenchmarkId::new("refresh_interval", interval),
            &interval,
            |b, &iv| {
                b.iter(|| {
                    let mut op =
                        StreamingAsap::new(StreamingConfig::new(25_000, 500, iv));
                    for &v in &data {
                        let _ = black_box(op.push(v).unwrap());
                    }
                    op.searches_run()
                })
            },
        );
    }
    group.finish();
}

fn bench_pane_ingest(c: &mut Criterion) {
    // Pure pane aggregation: the floor cost of ingestion.
    let data = telemetry(100_000);
    c.bench_function("pane_ingest_100k", |b| {
        b.iter(|| {
            let mut agg = asap_stream::PaneAggregator::new(50);
            let mut window = asap_stream::SlidingWindow::new(2_000);
            for &v in &data {
                if let Some(p) = agg.push(black_box(v)) {
                    window.push(p);
                }
            }
            window.point_count()
        })
    });
}

criterion_group!(benches, bench_streaming, bench_pane_ingest);
criterion_main!(benches);
