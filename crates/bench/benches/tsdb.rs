//! Microbenchmarks for the storage substrate: Gorilla codec throughput,
//! the write path (memtable + seal), and the query path (scan + bucketed
//! aggregation) that feeds ASAP's preaggregation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use asap_tsdb::{
    Aggregator, DataPoint, GorillaEncoder, RangeQuery, SeriesKey, Tsdb, TsdbConfig,
};

/// Realistic telemetry: fixed cadence, smooth value with bounded jitter.
fn telemetry(n: usize) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            let v = 50.0 + 10.0 * (i as f64 / 300.0).sin()
                + (((i as u64).wrapping_mul(2654435761) >> 16) % 100) as f64 / 100.0;
            DataPoint::new(1_600_000_000 + i as i64 * 15, v)
        })
        .collect()
}

fn bench_gorilla(c: &mut Criterion) {
    let mut group = c.benchmark_group("gorilla");
    for n in [1_000usize, 100_000] {
        let points = telemetry(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("encode", n), &points, |b, pts| {
            b.iter(|| {
                let mut enc = GorillaEncoder::new();
                for &p in pts {
                    enc.append(p);
                }
                black_box(enc.finish())
            })
        });
        let chunk = {
            let mut enc = GorillaEncoder::new();
            for &p in &points {
                enc.append(p);
            }
            enc.finish()
        };
        group.bench_with_input(BenchmarkId::new("decode", n), &chunk, |b, chunk| {
            b.iter(|| black_box(chunk.decode().unwrap()))
        });
    }
    group.finish();
}

fn bench_write_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsdb_write");
    let n = 100_000usize;
    let points = telemetry(n);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("write_batch_100k", |b| {
        b.iter(|| {
            let db = Tsdb::with_config(TsdbConfig {
                block_capacity: 4096,
            });
            let key = SeriesKey::metric("cpu").with_tag("host", "a");
            db.write_batch(&key, &points).unwrap();
            black_box(db.series_count())
        })
    });
    group.finish();
}

fn bench_query_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsdb_query");
    let n = 100_000usize;
    let db = Tsdb::with_config(TsdbConfig {
        block_capacity: 4096,
    });
    let key = SeriesKey::metric("cpu").with_tag("host", "a");
    db.write_batch(&key, &telemetry(n)).unwrap();
    db.flush().unwrap();
    let (t0, t1) = (1_600_000_000, 1_600_000_000 + n as i64 * 15);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("raw_scan_100k", |b| {
        b.iter(|| black_box(db.query(&key, RangeQuery::raw(t0, t1)).unwrap()))
    });
    group.bench_function("bucketed_mean_100k_to_1200", |b| {
        let bucket = (t1 - t0) / 1200;
        b.iter(|| {
            black_box(
                db.query(
                    &key,
                    RangeQuery::bucketed(t0, t1, bucket).aggregate(Aggregator::Mean),
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gorilla, bench_write_path, bench_query_path);
criterion_main!(benches);
