//! Pane-based sliding-window stream-processing runtime.
//!
//! §4.5 of the ASAP paper executes ASAP as a streaming operator (the mode
//! MacroBase adopts): incoming points are **sub-aggregated into disjoint
//! panes** ("no pane, no gain", Li et al. 2005) sized by the GCD of window
//! and slide, a linked list of sub-aggregates covers the visualized
//! interval, and the search routine re-runs only at a human-perceptible
//! refresh interval.
//!
//! This crate supplies that substrate, independent of ASAP itself:
//!
//! * [`pane`] — fixed-size pane aggregation (sum/count/min/max) with O(1)
//!   point ingestion;
//! * [`window`] — a sliding window over panes with incremental eviction and
//!   O(1) windowed mean;
//! * [`operator`] — the `Operator` trait and basic combinators, the
//!   interface through which ASAP plugs into an operator graph;
//! * [`runtime`] — single-threaded pipeline driver plus a threaded driver
//!   built on crossbeam channels;
//! * [`clock`] — the on-demand refresh clock (fires every N points),
//!   implementing the paper's "refresh at timescales perceptible to
//!   humans" optimization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod operator;
pub mod pane;
pub mod runtime;
pub mod window;

pub use clock::RefreshClock;
pub use operator::{FnOperator, Operator};
pub use pane::{Pane, PaneAggregator};
pub use runtime::{run_pipeline, run_threaded};
pub use window::SlidingWindow;

/// Greatest common divisor, used to size panes: panes of
/// `gcd(window, slide)` points allow both window and slide boundaries to
/// fall on pane boundaries (Li et al.'s pane optimization, cited in §4.5).
pub fn gcd(a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::gcd;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(36, 36), 36);
    }
}
