//! On-demand refresh clock (§4.5, "Optimization: On-demand updates").
//!
//! Refreshing a plot for every arriving point is wasteful: humans perceive
//! at most ~60 events/second, so ASAP re-runs its search only every
//! `interval` points (Figure 10 sweeps this interval and finds throughput
//! linear in it). [`RefreshClock`] counts arrivals and fires at the
//! configured cadence.

/// Counts arriving items and signals when a refresh is due.
#[derive(Debug, Clone)]
pub struct RefreshClock {
    interval: usize,
    since_last: usize,
    total: u64,
    refreshes: u64,
}

impl RefreshClock {
    /// Creates a clock firing once every `interval` arrivals.
    ///
    /// # Panics
    /// Panics if `interval == 0`.
    pub fn new(interval: usize) -> Self {
        assert!(interval > 0, "refresh interval must be positive");
        RefreshClock {
            interval,
            since_last: 0,
            total: 0,
            refreshes: 0,
        }
    }

    /// Registers one arrival; returns `true` when a refresh is due.
    #[inline]
    pub fn tick(&mut self) -> bool {
        self.total += 1;
        self.since_last += 1;
        if self.since_last >= self.interval {
            self.since_last = 0;
            self.refreshes += 1;
            true
        } else {
            false
        }
    }

    /// Configured interval in arrivals.
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Total arrivals observed.
    pub fn total_ticks(&self) -> u64 {
        self.total
    }

    /// Number of refreshes fired.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Reconfigures the interval (takes effect for the current cycle).
    pub fn set_interval(&mut self, interval: usize) {
        assert!(interval > 0, "refresh interval must be positive");
        self.interval = interval;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_every_interval() {
        let mut c = RefreshClock::new(3);
        let fired: Vec<bool> = (0..9).map(|_| c.tick()).collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(c.refreshes(), 3);
        assert_eq!(c.total_ticks(), 9);
    }

    #[test]
    fn interval_one_fires_always() {
        let mut c = RefreshClock::new(1);
        assert!(c.tick());
        assert!(c.tick());
        assert_eq!(c.refreshes(), 2);
    }

    #[test]
    fn refresh_count_is_inverse_in_interval() {
        // The linear relationship behind Figure 10: doubling the interval
        // halves the number of search invocations.
        let n = 10_000;
        let count = |interval: usize| {
            let mut c = RefreshClock::new(interval);
            (0..n).filter(|_| c.tick()).count()
        };
        assert_eq!(count(10), 1000);
        assert_eq!(count(20), 500);
        assert_eq!(count(100), 100);
    }

    #[test]
    fn set_interval_applies_mid_stream() {
        let mut c = RefreshClock::new(100);
        for _ in 0..5 {
            c.tick();
        }
        c.set_interval(6);
        assert!(c.tick()); // 6th arrival since last refresh
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        RefreshClock::new(0);
    }
}
