//! Pipeline drivers: run an [`Operator`] over an input stream, either
//! inline (single-threaded, for client-side rendering) or on a worker
//! thread connected by channels (server-side mode, where ASAP smooths on
//! behalf of many visualization consumers, §2).

use crate::operator::Operator;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::thread;

/// Runs `op` over `input` inline and returns all emitted outputs.
pub fn run_pipeline<I, O, Op>(mut op: Op, input: impl IntoIterator<Item = I>) -> Vec<O>
where
    Op: Operator<I, O>,
{
    let mut out = Vec::new();
    for item in input {
        op.process(item, &mut out);
    }
    op.finish(&mut out);
    out
}

/// Handle to a threaded pipeline stage.
pub struct StageHandle<I, O> {
    tx: Sender<I>,
    rx: Receiver<O>,
    join: thread::JoinHandle<()>,
}

impl<I, O> StageHandle<I, O> {
    /// Sends one input item to the stage. Returns `false` when the stage
    /// has shut down.
    pub fn send(&self, item: I) -> bool {
        self.tx.send(item).is_ok()
    }

    /// Receives all currently available outputs without blocking.
    pub fn drain(&self) -> Vec<O> {
        self.rx.try_iter().collect()
    }

    /// Signals end-of-stream and collects all remaining outputs.
    pub fn close(self) -> Vec<O> {
        drop(self.tx);
        let out: Vec<O> = self.rx.iter().collect();
        self.join.join().expect("pipeline stage panicked");
        out
    }
}

/// Spawns `op` on a worker thread with bounded channels of the given
/// capacity; returns a handle for feeding inputs and draining outputs.
pub fn run_threaded<I, O, Op>(mut op: Op, channel_capacity: usize) -> StageHandle<I, O>
where
    I: Send + 'static,
    O: Send + 'static,
    Op: Operator<I, O> + Send + 'static,
{
    let (in_tx, in_rx) = bounded::<I>(channel_capacity);
    let (out_tx, out_rx) = bounded::<O>(channel_capacity.max(1024));
    let join = thread::spawn(move || {
        let mut buf = Vec::new();
        for item in in_rx.iter() {
            op.process(item, &mut buf);
            for o in buf.drain(..) {
                if out_tx.send(o).is_err() {
                    return;
                }
            }
        }
        op.finish(&mut buf);
        for o in buf.drain(..) {
            if out_tx.send(o).is_err() {
                return;
            }
        }
    });
    StageHandle {
        tx: in_tx,
        rx: out_rx,
        join,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Batcher, FnOperator};

    #[test]
    fn inline_pipeline_runs_to_completion() {
        let out = run_pipeline(FnOperator::new(|x: i32| x + 1), 0..5);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn inline_pipeline_flushes_on_finish() {
        let out = run_pipeline(Batcher::new(2), 0..5);
        assert_eq!(out, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn threaded_stage_matches_inline() {
        let stage = run_threaded(FnOperator::new(|x: u64| x * x), 16);
        for i in 0..100u64 {
            assert!(stage.send(i));
        }
        let out = stage.close();
        let expected: Vec<u64> = (0..100).map(|i| i * i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn threaded_stage_flushes_operator_state() {
        let stage = run_threaded(Batcher::new(3), 4);
        for i in 0..7 {
            stage.send(i);
        }
        let out = stage.close();
        assert_eq!(out, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]);
    }

    #[test]
    fn drain_is_nonblocking() {
        let stage = run_threaded(FnOperator::new(|x: i32| x), 4);
        // Nothing sent yet: drain returns empty instead of blocking.
        assert!(stage.drain().is_empty());
        stage.send(1);
        let out = stage.close();
        assert_eq!(out, vec![1]);
    }
}
