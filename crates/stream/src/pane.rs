//! Fixed-size pane sub-aggregation.
//!
//! A *pane* is a disjoint segment of the input stream reduced to constant
//! size (sum, count, min, max). Sliding-window aggregates are then computed
//! over panes instead of raw points, which is how ASAP ingests
//! million-point-per-second streams (§4.5): with a pane per point-to-pixel
//! group, downstream work depends on the display resolution, not the data
//! rate.

/// Constant-size summary of one disjoint segment of the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pane {
    /// Sum of the points in the pane.
    pub sum: f64,
    /// Number of points aggregated.
    pub count: usize,
    /// Minimum point value.
    pub min: f64,
    /// Maximum point value.
    pub max: f64,
}

impl Pane {
    /// The pane's mean value — the value ASAP's preaggregation emits.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

/// Accumulates raw points into fixed-size panes, emitting each pane as it
/// completes.
#[derive(Debug, Clone)]
pub struct PaneAggregator {
    pane_size: usize,
    sum: f64,
    count: usize,
    min: f64,
    max: f64,
    emitted: u64,
}

impl PaneAggregator {
    /// Creates an aggregator producing one pane per `pane_size` points.
    ///
    /// # Panics
    /// Panics if `pane_size == 0`.
    pub fn new(pane_size: usize) -> Self {
        assert!(pane_size > 0, "pane size must be positive");
        PaneAggregator {
            pane_size,
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            emitted: 0,
        }
    }

    /// Pane size in points.
    pub fn pane_size(&self) -> usize {
        self.pane_size
    }

    /// Number of panes emitted so far.
    pub fn panes_emitted(&self) -> u64 {
        self.emitted
    }

    /// Number of points buffered in the current (incomplete) pane.
    pub fn pending_points(&self) -> usize {
        self.count
    }

    /// Ingests one point; returns the completed pane when this point filled
    /// it.
    #[inline]
    pub fn push(&mut self, value: f64) -> Option<Pane> {
        self.sum += value;
        self.count += 1;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        if self.count == self.pane_size {
            Some(self.take())
        } else {
            None
        }
    }

    /// Flushes the current partial pane, if any points are buffered.
    pub fn flush(&mut self) -> Option<Pane> {
        if self.count == 0 {
            None
        } else {
            Some(self.take())
        }
    }

    fn take(&mut self) -> Pane {
        let pane = Pane {
            sum: self.sum,
            count: self.count,
            min: self.min,
            max: self.max,
        };
        self.sum = 0.0;
        self.count = 0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        self.emitted += 1;
        pane
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_exactly_on_fill() {
        let mut agg = PaneAggregator::new(3);
        assert!(agg.push(1.0).is_none());
        assert!(agg.push(2.0).is_none());
        let pane = agg.push(6.0).unwrap();
        assert_eq!(pane.sum, 9.0);
        assert_eq!(pane.count, 3);
        assert_eq!(pane.min, 1.0);
        assert_eq!(pane.max, 6.0);
        assert!((pane.mean() - 3.0).abs() < 1e-12);
        assert_eq!(agg.panes_emitted(), 1);
    }

    #[test]
    fn state_resets_between_panes() {
        let mut agg = PaneAggregator::new(2);
        agg.push(10.0);
        agg.push(20.0);
        agg.push(-5.0);
        let pane = agg.push(-1.0).unwrap();
        assert_eq!(pane.min, -5.0);
        assert_eq!(pane.max, -1.0);
        assert_eq!(pane.sum, -6.0);
    }

    #[test]
    fn flush_emits_partial_pane() {
        let mut agg = PaneAggregator::new(4);
        agg.push(1.0);
        agg.push(3.0);
        let pane = agg.flush().unwrap();
        assert_eq!(pane.count, 2);
        assert!((pane.mean() - 2.0).abs() < 1e-12);
        assert!(agg.flush().is_none());
        assert_eq!(agg.pending_points(), 0);
    }

    #[test]
    fn pane_size_one_passes_points_through() {
        let mut agg = PaneAggregator::new(1);
        for i in 0..5 {
            let pane = agg.push(i as f64).unwrap();
            assert_eq!(pane.mean(), i as f64);
        }
        assert_eq!(agg.panes_emitted(), 5);
    }

    #[test]
    #[should_panic(expected = "pane size")]
    fn zero_pane_size_panics() {
        PaneAggregator::new(0);
    }

    #[test]
    fn pane_means_match_batch_tumbling_aggregation() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut agg = PaneAggregator::new(7);
        let mut streamed = Vec::new();
        for &x in &data {
            if let Some(p) = agg.push(x) {
                streamed.push(p.mean());
            }
        }
        let batch = asap_timeseries::sma_strided(&data, 7, 7).unwrap();
        assert_eq!(streamed.len(), batch.len());
        for (a, b) in streamed.iter().zip(&batch) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
