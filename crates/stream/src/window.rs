//! Sliding window over panes with incremental eviction.
//!
//! ASAP "maintains a linked list of all subaggregations in the window" and
//! removes outdated points as data transits the visualized interval (§4.5).
//! [`SlidingWindow`] is that structure: a deque of [`Pane`]s bounded by a
//! capacity in panes, with O(1) amortized insertion/eviction and O(1)
//! windowed mean via a maintained running sum.

use crate::pane::Pane;
use std::collections::VecDeque;

/// A bounded deque of panes covering the most recent stretch of the stream.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    panes: VecDeque<Pane>,
    capacity: usize,
    sum: f64,
    count: usize,
}

impl SlidingWindow {
    /// Creates a window holding at most `capacity` panes.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            panes: VecDeque::with_capacity(capacity + 1),
            capacity,
            sum: 0.0,
            count: 0,
        }
    }

    /// Inserts a completed pane, evicting the oldest when full. Returns the
    /// evicted pane, if any.
    pub fn push(&mut self, pane: Pane) -> Option<Pane> {
        self.panes.push_back(pane);
        self.sum += pane.sum;
        self.count += pane.count;
        if self.panes.len() > self.capacity {
            let evicted = self.panes.pop_front().expect("non-empty after push");
            self.sum -= evicted.sum;
            self.count -= evicted.count;
            Some(evicted)
        } else {
            None
        }
    }

    /// Number of panes currently held.
    pub fn len(&self) -> usize {
        self.panes.len()
    }

    /// True when no panes are held.
    pub fn is_empty(&self) -> bool {
        self.panes.is_empty()
    }

    /// True when the window holds `capacity` panes.
    pub fn is_full(&self) -> bool {
        self.panes.len() == self.capacity
    }

    /// Mean over all points covered by the window (O(1)).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Total number of raw points covered.
    pub fn point_count(&self) -> usize {
        self.count
    }

    /// The per-pane mean values, oldest first — the preaggregated series
    /// ASAP's search runs over.
    pub fn pane_means(&self) -> Vec<f64> {
        self.panes.iter().map(Pane::mean).collect()
    }

    /// Iterates over the held panes, oldest first.
    pub fn panes(&self) -> impl Iterator<Item = &Pane> {
        self.panes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pane(v: f64) -> Pane {
        Pane {
            sum: v,
            count: 1,
            min: v,
            max: v,
        }
    }

    #[test]
    fn eviction_keeps_capacity() {
        let mut w = SlidingWindow::new(3);
        assert!(w.push(pane(1.0)).is_none());
        assert!(w.push(pane(2.0)).is_none());
        assert!(w.push(pane(3.0)).is_none());
        assert!(w.is_full());
        let evicted = w.push(pane(4.0)).unwrap();
        assert_eq!(evicted.sum, 1.0);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pane_means(), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn running_mean_tracks_contents() {
        let mut w = SlidingWindow::new(2);
        assert_eq!(w.mean(), None);
        w.push(pane(10.0));
        assert_eq!(w.mean(), Some(10.0));
        w.push(pane(20.0));
        assert_eq!(w.mean(), Some(15.0));
        w.push(pane(40.0)); // evicts 10
        assert_eq!(w.mean(), Some(30.0));
    }

    #[test]
    fn point_count_uses_pane_counts() {
        let mut w = SlidingWindow::new(4);
        w.push(Pane {
            sum: 6.0,
            count: 3,
            min: 1.0,
            max: 3.0,
        });
        w.push(Pane {
            sum: 4.0,
            count: 2,
            min: 2.0,
            max: 2.0,
        });
        assert_eq!(w.point_count(), 5);
        assert_eq!(w.mean(), Some(2.0));
    }

    #[test]
    fn long_stream_mean_does_not_drift() {
        let mut w = SlidingWindow::new(100);
        for i in 0..100_000 {
            w.push(pane((i % 7) as f64));
        }
        // Window holds panes for i in 99_900..100_000.
        let expected: f64 =
            (99_900..100_000).map(|i| (i % 7) as f64).sum::<f64>() / 100.0;
        assert!((w.mean().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        SlidingWindow::new(0);
    }
}
