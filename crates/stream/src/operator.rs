//! The streaming-operator interface.
//!
//! ASAP is "implemented as a time series explanation operator in the
//! MacroBase fast data engine ... portable to existing stream processing
//! engines" (§2). [`Operator`] is the minimal portable contract: consume
//! one input item, emit zero or more outputs. Operators compose into
//! pipelines via [`crate::runtime`].

/// A streaming transformation from items of type `I` to items of type `O`.
///
/// `process` is called once per input item and may emit any number of
/// outputs (0 for filters/aggregators mid-window, >1 for flat-maps);
/// `finish` is called once at end-of-stream to flush buffered state.
pub trait Operator<I, O> {
    /// Processes one input item, appending outputs to `out`.
    fn process(&mut self, input: I, out: &mut Vec<O>);

    /// Flushes any buffered outputs at end-of-stream.
    fn finish(&mut self, _out: &mut Vec<O>) {}
}

/// Wraps a closure as a stateless 1-to-1 operator.
pub struct FnOperator<F> {
    f: F,
}

impl<F> FnOperator<F> {
    /// Creates the operator from a mapping closure.
    pub fn new(f: F) -> Self {
        FnOperator { f }
    }
}

impl<I, O, F: FnMut(I) -> O> Operator<I, O> for FnOperator<F> {
    fn process(&mut self, input: I, out: &mut Vec<O>) {
        out.push((self.f)(input));
    }
}

/// A batching operator that groups every `n` consecutive items into a
/// `Vec<I>` (used to build refresh batches in tests and examples).
pub struct Batcher<I> {
    n: usize,
    buf: Vec<I>,
}

impl<I> Batcher<I> {
    /// Creates a batcher of size `n` (must be positive).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "batch size must be positive");
        Batcher {
            n,
            buf: Vec::with_capacity(n),
        }
    }
}

impl<I> Operator<I, Vec<I>> for Batcher<I> {
    fn process(&mut self, input: I, out: &mut Vec<Vec<I>>) {
        self.buf.push(input);
        if self.buf.len() == self.n {
            out.push(std::mem::replace(&mut self.buf, Vec::with_capacity(self.n)));
        }
    }

    fn finish(&mut self, out: &mut Vec<Vec<I>>) {
        if !self.buf.is_empty() {
            out.push(std::mem::take(&mut self.buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_operator_maps_one_to_one() {
        let mut op = FnOperator::new(|x: f64| x * 2.0);
        let mut out = Vec::new();
        op.process(3.0, &mut out);
        op.process(4.0, &mut out);
        assert_eq!(out, vec![6.0, 8.0]);
    }

    #[test]
    fn batcher_groups_and_flushes() {
        let mut op = Batcher::new(3);
        let mut out = Vec::new();
        for i in 0..7 {
            op.process(i, &mut out);
        }
        assert_eq!(out, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        op.finish(&mut out);
        assert_eq!(out.last().unwrap(), &vec![6]);
    }

    #[test]
    fn batcher_finish_is_noop_when_aligned() {
        let mut op = Batcher::new(2);
        let mut out = Vec::new();
        for i in 0..4 {
            op.process(i, &mut out);
        }
        let len_before = out.len();
        op.finish(&mut out);
        assert_eq!(out.len(), len_before);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_panics() {
        Batcher::<i32>::new(0);
    }
}
