//! Machine-readable catalog of the evaluation datasets.
//!
//! Benchmarks and the simulated user study iterate over this catalog rather
//! than hard-coding dataset lists: Table 2 runs over [`all_datasets`], the
//! user studies (Figures 6, 7, B.1 and Table 4) over
//! [`user_study_datasets`].

use crate::datasets;
use asap_timeseries::TimeSeries;

/// Metadata for one evaluation dataset.
#[derive(Debug, Clone)]
pub struct DatasetInfo {
    /// Dataset name as used in Table 2.
    pub name: &'static str,
    /// One-line description (matches Table 2's wording).
    pub description: &'static str,
    /// Number of points.
    pub n_points: usize,
    /// Dominant seasonal period in points, when the data is periodic.
    pub dominant_period: Option<usize>,
    /// Ground-truth anomaly span `[start, end)` in point indices, for the
    /// user-study datasets.
    pub anomaly_region: Option<(usize, usize)>,
    /// Generator function.
    generate: fn() -> TimeSeries,
}

impl DatasetInfo {
    /// Materializes the dataset.
    pub fn generate(&self) -> TimeSeries {
        (self.generate)()
    }

    /// The 0-based index (out of `regions` equal slices) containing the
    /// center of the anomaly — the answer key for the identification task
    /// of §5.1.1.
    pub fn anomaly_region_index(&self, regions: usize) -> Option<usize> {
        self.anomaly_region.map(|(s, e)| {
            let center = (s + e) / 2;
            ((center * regions) / self.n_points).min(regions - 1)
        })
    }
}

/// All 11 Table 2 datasets, largest first (Table 2 order).
pub fn all_datasets() -> Vec<DatasetInfo> {
    vec![
        DatasetInfo {
            name: "gas_sensor",
            description: "Recording of a chemical sensor exposed to a gas mixture",
            n_points: 4_208_261,
            dominant_period: Some(91_180),
            anomaly_region: None,
            generate: datasets::gas_sensor,
        },
        DatasetInfo {
            name: "EEG",
            description: "Excerpt of electrocardiogram",
            n_points: 45_000,
            dominant_period: Some(200),
            anomaly_region: Some((24_000, 24_800)),
            generate: datasets::eeg,
        },
        DatasetInfo {
            name: "Power",
            description: "Power consumption for a Dutch research facility in 1997",
            n_points: 35_040,
            dominant_period: Some(96),
            anomaly_region: Some((12_288, 12_672)),
            generate: datasets::power,
        },
        DatasetInfo {
            name: "traffic_data",
            description: "Vehicle traffic observed between two points for 4 months",
            n_points: 32_075,
            dominant_period: Some(267),
            anomaly_region: Some((21_000, 22_600)),
            generate: datasets::traffic_data,
        },
        DatasetInfo {
            name: "machine_temp",
            description: "Temperature of an internal component of an industrial machine",
            n_points: 22_695,
            dominant_period: Some(288),
            anomaly_region: Some((17_000, 17_700)),
            generate: datasets::machine_temp,
        },
        DatasetInfo {
            name: "Twitter_AAPL",
            description: "A collection of Twitter mentions of Apple",
            n_points: 15_902,
            dominant_period: Some(288),
            anomaly_region: Some((9_100, 9_130)),
            generate: datasets::twitter_aapl,
        },
        DatasetInfo {
            name: "ramp_traffic",
            description: "Car count on a freeway ramp in Los Angeles",
            n_points: 8_640,
            dominant_period: Some(288),
            anomaly_region: None,
            generate: datasets::ramp_traffic,
        },
        DatasetInfo {
            name: "sim_daily",
            description: "Simulated two week data with one abnormal day",
            n_points: 4_033,
            dominant_period: Some(288),
            anomaly_region: Some((2_304, 2_592)),
            generate: datasets::sim_daily,
        },
        DatasetInfo {
            name: "Taxi",
            description: "Number of NYC taxi passengers in 30 min bucket",
            n_points: 3_600,
            dominant_period: Some(48),
            anomaly_region: Some((2_600, 2_936)),
            generate: datasets::taxi,
        },
        DatasetInfo {
            name: "Temp",
            description: "Monthly temperature in England from 1723 to 1970",
            n_points: 2_976,
            dominant_period: Some(12),
            anomaly_region: Some((2_124, 2_976)),
            generate: datasets::temperature,
        },
        DatasetInfo {
            name: "Sine",
            description: "Noisy sine wave with an anomaly that is half the usual period",
            n_points: 800,
            dominant_period: Some(32),
            anomaly_region: Some((320, 384)),
            generate: datasets::sine,
        },
    ]
}

/// The five user-study datasets of §5.1 (Taxi, Power, Sine, EEG, Temp), in
/// the order Figure 6 plots them.
pub fn user_study_datasets() -> Vec<DatasetInfo> {
    let names = ["Taxi", "Power", "Sine", "EEG", "Temp"];
    let all = all_datasets();
    names
        .iter()
        .map(|n| {
            all.iter()
                .find(|d| &d.name == n)
                .expect("user-study dataset present in catalog")
                .clone()
        })
        .collect()
}

/// Looks a dataset up by its Table 2 name (case-sensitive).
pub fn by_name(name: &str) -> Option<DatasetInfo> {
    all_datasets().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_eleven_datasets() {
        assert_eq!(all_datasets().len(), 11);
    }

    #[test]
    fn catalog_sizes_match_generated_series() {
        for info in all_datasets() {
            if info.n_points > 100_000 {
                continue; // skip the 4.2M-point gas sensor in unit tests
            }
            let ts = info.generate();
            assert_eq!(ts.len(), info.n_points, "{}", info.name);
            assert_eq!(ts.name(), info.name);
        }
    }

    #[test]
    fn user_study_selection_and_order() {
        let names: Vec<&str> = user_study_datasets().iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["Taxi", "Power", "Sine", "EEG", "Temp"]);
    }

    #[test]
    fn anomaly_region_indices_are_sane() {
        // Taxi anomaly centers at (2600+2936)/2 = 2768 of 3600 -> region 3
        // of 5 (0-based).
        let taxi = by_name("Taxi").unwrap();
        assert_eq!(taxi.anomaly_region_index(5), Some(3));
        // Sine anomaly centers at 352 of 800 -> region 2 of 5.
        let sine = by_name("Sine").unwrap();
        assert_eq!(sine.anomaly_region_index(5), Some(2));
        // Non-anomalous dataset yields None.
        let ramp = by_name("ramp_traffic").unwrap();
        assert_eq!(ramp.anomaly_region_index(5), None);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("Power").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn region_index_clamps_to_last_region() {
        // Temp's anomaly (warming ramp) runs to the end of the series; the
        // center must still map to a valid region.
        let temp = by_name("Temp").unwrap();
        let idx = temp.anomaly_region_index(5).unwrap();
        assert!(idx < 5);
        assert_eq!(idx, 4);
    }
}
