//! Synthetic equivalents of the paper's evaluation datasets (Table 2).
//!
//! Each simulator reproduces the properties ASAP's search actually depends
//! on — length, sampling period, periodic structure, moment structure, and
//! anomaly placement — as documented per-dataset below. Absolute values are
//! arbitrary; the paper z-scores every plot anyway.

use crate::generators::{Anomaly, SeasonalSeries};
use asap_timeseries::TimeSeries;

const MINUTE: f64 = 60.0;
const HOUR: f64 = 3600.0;
const DAY: f64 = 86_400.0;

/// NYC taxi passenger counts (NAB): 3 600 half-hour buckets over 75 days.
///
/// Daily (48-point) and weekly (336-point) seasonality with a sustained dip
/// during the week of Thanksgiving (Figure 1's running example; user-study
/// ground truth region 4 of 5).
pub fn taxi() -> TimeSeries {
    let values = SeasonalSeries::new(3_600, 0xA51)
        .base(15.0)
        .component(48.0, 4.0)
        .component_with_phase(336.0, 1.5, 0.7)
        .component(24.0, 0.8)
        .noise(0.6)
        .anomaly(Anomaly::LevelShift {
            start: 2_600,
            end: 2_936, // one week of 30-minute buckets
            delta: -6.0,
        })
        .build();
    TimeSeries::new("Taxi", values, 30.0 * MINUTE)
}

/// Power consumption of a Dutch research facility in 1997 (Keogh):
/// 35 040 fifteen-minute readings.
///
/// Strong daily (96-point) and weekly (672-point) load shape; demand dips
/// during the Ascension-Thursday holiday (user-study ground truth).
pub fn power() -> TimeSeries {
    let values = SeasonalSeries::new(35_040, 0x90E)
        .base(600.0)
        .component(96.0, 120.0)
        .component_with_phase(672.0, 60.0, 1.1)
        .noise(18.0)
        .anomaly(Anomaly::LevelShift {
            start: 12_288, // ~May 8th, Ascension Thursday 1997
            end: 12_672,   // four days including the bridge weekend
            delta: -190.0,
        })
        .build();
    TimeSeries::new("Power", values, 15.0 * MINUTE)
}

/// Electrocardiogram excerpt (HOT SAX): 45 000 points at 250 Hz (180 s).
///
/// Quasi-periodic beats (~200-point period with a 100-point harmonic); a
/// premature-ventricular-contraction-like morphology change around 96–100 s.
pub fn eeg() -> TimeSeries {
    let values = SeasonalSeries::new(45_000, 0xEE6)
        .base(0.0)
        .component(200.0, 1.0)
        .component_with_phase(100.0, 0.35, 0.4)
        .noise(0.22)
        .anomaly(Anomaly::AmplitudeChange {
            start: 24_000,
            end: 24_800,
            factor: 2.0,
        })
        .anomaly(Anomaly::LevelShift {
            start: 24_000,
            end: 24_800,
            delta: -0.4,
        })
        .build();
    TimeSeries::new("EEG", values, 1.0 / 250.0)
}

/// Monthly temperature in England, 1723–1970 (Hyndman TSDL): 2 976 points.
///
/// Annual (12-point) seasonality plus a gradual warming ramp through the
/// 1900s — the long-term trend the oversmoothed plot highlights best in the
/// user study (Figure B.3).
pub fn temperature() -> TimeSeries {
    let values = SeasonalSeries::new(2_976, 0x7E3)
        .base(9.2)
        .component(12.0, 5.6)
        // Multi-decadal natural variability (~40-year oscillation): ASAP's
        // ~24-year window preserves much of it, the 62-year oversmoothing
        // window removes it — which is why the oversmoothed plot highlights
        // the secular warming trend best (Figures 6/7, Temp column).
        .component_with_phase(480.0, 1.3, 2.0)
        .noise(1.1)
        .anomaly(Anomaly::TrendRamp {
            start: 2_124, // ~year 1900
            end: 2_976,
            delta: 1.0,
        })
        .build();
    TimeSeries::new("Temp", values, 30.44 * DAY)
}

/// Noisy sine wave with a period-halving anomaly (Keogh's surprising
/// patterns): 800 points, base period 32, anomaly over points 320–384.
pub fn sine() -> TimeSeries {
    let values = SeasonalSeries::new(800, 0x51E)
        .component(32.0, 1.0)
        .noise(0.18)
        .anomaly(Anomaly::PeriodHalving {
            start: 320,
            end: 384,
        })
        .build();
    TimeSeries::new("Sine", values, 1.0)
}

/// Chemical (gas) sensor exposed to a gas mixture (UCI): 4 208 261 points
/// over 12 hours — the paper's largest dataset.
///
/// Slow response-drift plus a long-period (~91 000-point) stimulus cycle so
/// that the dominant ACF peak of the 1200-pixel preaggregated series sits
/// near the paper's reported window (26 aggregated points).
pub fn gas_sensor() -> TimeSeries {
    let values = SeasonalSeries::new(4_208_261, 0x6A5)
        .base(420.0)
        .trend(-1.2e-5)
        .component(91_180.0, 35.0)
        .component_with_phase(45_590.0, 8.0, 0.9)
        .noise(6.0)
        .build();
    TimeSeries::new("gas_sensor", values, 12.0 * HOUR / 4_208_261.0)
}

/// Vehicle traffic between two points over 4 months (CityBench): 32 075
/// readings (~5.4-minute spacing), daily and weekly rhythm plus a
/// several-day construction-closure dip.
pub fn traffic_data() -> TimeSeries {
    let values = SeasonalSeries::new(32_075, 0x7AF)
        .base(45.0)
        .component(267.0, 14.0)
        .component_with_phase(1_869.0, 6.0, 0.5)
        .noise(3.0)
        .anomaly(Anomaly::LevelShift {
            start: 21_000,
            end: 22_600,
            delta: -18.0,
        })
        .build();
    TimeSeries::new("traffic_data", values, 4.0 * 30.0 * DAY / 32_075.0)
}

/// Internal temperature of an industrial machine (NAB): 22 695 five-minute
/// readings (~79 days), daily cycle, with a pre-failure cooling anomaly and
/// a terminal spike.
pub fn machine_temp() -> TimeSeries {
    let values = SeasonalSeries::new(22_695, 0x3A7)
        .base(85.0)
        .component(288.0, 3.5)
        .component_with_phase(2_016.0, 1.2, 0.3)
        .noise(1.4)
        .anomaly(Anomaly::LevelShift {
            start: 17_000,
            end: 17_700,
            delta: -22.0,
        })
        .anomaly(Anomaly::Spike {
            start: 21_800,
            end: 22_100,
            magnitude: 14.0,
        })
        .build();
    TimeSeries::new("machine_temp", values, 5.0 * MINUTE)
}

/// Twitter mentions of Apple (NAB): 15 902 five-minute buckets over two
/// months.
///
/// A smooth low-noise baseline punctuated by a few extreme mention storms —
/// the storms give the raw series very high kurtosis, so ASAP (like the
/// exhaustive search) leaves this series **unsmoothed** (window 1, Table 2 /
/// Figure C.1): any averaging would dilute the most important deviations.
pub fn twitter_aapl() -> TimeSeries {
    let values = SeasonalSeries::new(15_902, 0x7417)
        .base(300.0)
        .component(288.0, 18.0)
        .component_with_phase(2_016.0, 9.0, 0.4)
        .noise(2.0)
        .anomaly(Anomaly::Spike {
            start: 4_400,
            end: 4_460,
            magnitude: 4_000.0,
        })
        .anomaly(Anomaly::Spike {
            start: 9_100,
            end: 9_130,
            magnitude: 5_500.0,
        })
        .anomaly(Anomaly::Spike {
            start: 13_050,
            end: 13_090,
            magnitude: 3_200.0,
        })
        .build();
    TimeSeries::new("Twitter_AAPL", values, 2.0 * 30.0 * DAY / 15_902.0)
}

/// Car count on a Los Angeles freeway on-ramp (UCI): 8 640 five-minute
/// readings over one month with a strong commute cycle.
pub fn ramp_traffic() -> TimeSeries {
    let values = SeasonalSeries::new(8_640, 0x4A3)
        .base(28.0)
        .component(288.0, 12.0)
        .component_with_phase(2_016.0, 1.5, 1.3)
        .component(144.0, 3.0)
        .noise(2.5)
        .build();
    TimeSeries::new("ramp_traffic", values, 5.0 * MINUTE)
}

/// Simulated two-week series with one abnormal day (NAB "art daily"):
/// 4 033 five-minute points; day 9 loses its daily peak.
pub fn sim_daily() -> TimeSeries {
    let values = SeasonalSeries::new(4_033, 0x5D1)
        .base(40.0)
        .component(288.0, 10.0)
        .noise(1.0)
        .anomaly(Anomaly::LevelShift {
            start: 2_304, // start of day 9
            end: 2_592,
            delta: -14.0,
        })
        .build();
    TimeSeries::new("sim_daily", values, 5.0 * MINUTE)
}

/// Cluster CPU utilization (Figure 2's case study): ten days of 5-minute
/// averages whose terminal usage spike is obscured by heavy fluctuation in
/// the raw plot.
pub fn cpu_cluster() -> TimeSeries {
    let values = SeasonalSeries::new(2_880, 0xC09)
        .base(35.0)
        .component(288.0, 4.0)
        .noise(6.0)
        .anomaly(Anomaly::TrendRamp {
            start: 2_620,
            end: 2_820,
            delta: 30.0,
        })
        .build();
    TimeSeries::new("cpu_util", values, 5.0 * MINUTE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_timeseries::kurtosis;

    #[test]
    fn table2_point_counts_match_paper() {
        assert_eq!(gas_sensor().len(), 4_208_261);
        assert_eq!(eeg().len(), 45_000);
        assert_eq!(power().len(), 35_040);
        assert_eq!(traffic_data().len(), 32_075);
        assert_eq!(machine_temp().len(), 22_695);
        assert_eq!(twitter_aapl().len(), 15_902);
        assert_eq!(ramp_traffic().len(), 8_640);
        assert_eq!(sim_daily().len(), 4_033);
        assert_eq!(taxi().len(), 3_600);
        assert_eq!(temperature().len(), 2_976);
        assert_eq!(sine().len(), 800);
    }

    #[test]
    fn durations_are_close_to_table2() {
        // Taxi: 75 days of 30-minute buckets.
        let t = taxi();
        assert!((t.duration_secs() / DAY - 75.0).abs() < 1.0);
        // EEG: 180 seconds.
        assert!((eeg().duration_secs() - 180.0).abs() < 1.0);
        // Temp: ~248 years.
        let yrs = temperature().duration_secs() / (365.25 * DAY);
        assert!((yrs - 248.0).abs() < 2.0, "{yrs} years");
    }

    #[test]
    fn twitter_has_much_higher_kurtosis_than_taxi() {
        // The property that makes exhaustive search (and ASAP) leave
        // Twitter_AAPL unsmoothed.
        let kt = kurtosis(twitter_aapl().values()).unwrap();
        let kx = kurtosis(taxi().values()).unwrap();
        assert!(kt > 20.0, "twitter kurtosis {kt}");
        assert!(kx < 5.0, "taxi kurtosis {kx}");
    }

    #[test]
    fn taxi_dip_is_visible_in_weekly_averages() {
        let t = taxi();
        let weekly = asap_timeseries::sma(t.values(), 336).unwrap();
        let min = weekly.iter().cloned().fold(f64::MAX, f64::min);
        let min_idx = weekly.iter().position(|&v| v == min).unwrap();
        // The minimum weekly average should fall inside the Thanksgiving
        // window (accounting for the window looking forward).
        assert!(
            (2_300..2_936).contains(&min_idx),
            "weekly minimum at {min_idx}"
        );
    }

    #[test]
    fn sine_region_has_halved_period() {
        let s = sine();
        let v = s.values();
        // Compare zero-crossing counts inside vs outside the anomaly.
        let crossings = |slice: &[f64]| {
            slice
                .windows(2)
                .filter(|w| (w[0] > 0.0) != (w[1] > 0.0))
                .count()
        };
        let normal = crossings(&v[0..64]);
        let anomalous = crossings(&v[320..384]);
        assert!(
            anomalous > normal + 2,
            "anomalous {anomalous} vs normal {normal}"
        );
    }

    #[test]
    fn datasets_are_deterministic() {
        assert_eq!(taxi().values(), taxi().values());
        assert_eq!(sine().values(), sine().values());
    }

    #[test]
    fn cpu_cluster_ends_with_elevated_usage() {
        let c = cpu_cluster();
        let v = c.values();
        let head_mean: f64 = v[..2000].iter().sum::<f64>() / 2000.0;
        let tail_mean: f64 = v[2820..].iter().sum::<f64>() / (v.len() - 2820) as f64;
        assert!(tail_mean > head_mean + 20.0);
    }
}
