//! Minimal timestamp/value CSV I/O.
//!
//! ASAP "can ingest and process raw data from time series databases such as
//! InfluxDB" (§2); the common denominator export format is a two-column
//! CSV. This module reads and writes `timestamp,value` files so the
//! examples and benchmarks can operate on user-provided telemetry.

use asap_timeseries::{TimeSeries, TimeSeriesError};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from CSV parsing and I/O.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A structural problem with the parsed series.
    Series(TimeSeriesError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
            CsvError::Series(e) => write!(f, "series error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes `series` as `timestamp,value` lines (with a header row).
pub fn write_csv(path: &Path, series: &TimeSeries) -> Result<(), CsvError> {
    let mut out = BufWriter::new(File::create(path)?);
    writeln!(out, "timestamp,value")?;
    for (i, v) in series.values().iter().enumerate() {
        writeln!(out, "{},{}", series.timestamp(i), v)?;
    }
    out.flush()?;
    Ok(())
}

/// Reads a `timestamp,value` CSV into a [`TimeSeries`].
///
/// The sampling period is inferred from the first two timestamps (ASAP
/// assumes equi-spaced data; gaps are the caller's responsibility). A
/// header row is skipped when the first field does not parse as a number.
pub fn read_csv(path: &Path, name: &str) -> Result<TimeSeries, CsvError> {
    let reader = BufReader::new(File::open(path)?);
    let mut timestamps: Vec<f64> = Vec::new();
    let mut values: Vec<f64> = Vec::new();

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut parts = trimmed.splitn(2, ',');
        let ts_field = parts.next().unwrap_or("");
        let val_field = parts.next().ok_or(CsvError::Parse {
            line: lineno + 1,
            message: "expected two comma-separated fields".into(),
        })?;
        let ts: f64 = match ts_field.trim().parse() {
            Ok(t) => t,
            Err(_) if lineno == 0 => continue, // header row
            Err(e) => {
                return Err(CsvError::Parse {
                    line: lineno + 1,
                    message: format!("bad timestamp: {e}"),
                })
            }
        };
        let v: f64 = val_field.trim().parse().map_err(|e| CsvError::Parse {
            line: lineno + 1,
            message: format!("bad value: {e}"),
        })?;
        timestamps.push(ts);
        values.push(v);
    }

    if values.is_empty() {
        return Err(CsvError::Series(TimeSeriesError::Empty));
    }
    let period = if timestamps.len() >= 2 {
        timestamps[1] - timestamps[0]
    } else {
        1.0
    };
    let start = timestamps[0];
    Ok(TimeSeries::new(name, values, period).with_start_epoch(start))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("asap_csv_test_{name}_{}.csv", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_values_and_period() {
        let path = tmp("roundtrip");
        let series = TimeSeries::new("t", vec![1.0, 2.5, -3.0, 4.25], 30.0)
            .with_start_epoch(1_700_000_000.0);
        write_csv(&path, &series).unwrap();
        let back = read_csv(&path, "t").unwrap();
        assert_eq!(back.values(), series.values());
        assert_eq!(back.period_secs(), 30.0);
        assert_eq!(back.start_epoch_secs(), 1_700_000_000.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_row_is_skipped() {
        let path = tmp("header");
        std::fs::write(&path, "timestamp,value\n0,1.0\n10,2.0\n").unwrap();
        let ts = read_csv(&path, "h").unwrap();
        assert_eq!(ts.values(), &[1.0, 2.0]);
        assert_eq!(ts.period_secs(), 10.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let path = tmp("bad");
        std::fs::write(&path, "0,1.0\n5,not_a_number\n").unwrap();
        let err = read_csv(&path, "b").unwrap_err();
        match err {
            CsvError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_errors() {
        let path = tmp("empty");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            read_csv(&path, "e"),
            Err(CsvError::Series(TimeSeriesError::Empty))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_field_errors() {
        let path = tmp("onefield");
        std::fs::write(&path, "0,1\njustonefield\n").unwrap();
        assert!(matches!(
            read_csv(&path, "m"),
            Err(CsvError::Parse { line: 2, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blank_lines_are_ignored() {
        let path = tmp("blank");
        std::fs::write(&path, "0,1.0\n\n1,2.0\n\n").unwrap();
        let ts = read_csv(&path, "b").unwrap();
        assert_eq!(ts.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
