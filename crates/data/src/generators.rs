//! Building blocks for the dataset simulators: seeded IID samplers, random
//! walks, and a composite seasonal-series builder with anomaly injection.
//!
//! §4.2 of the paper analyzes ASAP on IID data, Figure 5 contrasts normal
//! and Laplace samples, and every evaluation dataset is (to ASAP's search) a
//! combination of trend + periodic components + noise + localized anomalies.
//! These generators produce exactly those ingredients, deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn normal_sample<R: Rng>(rng: &mut R) -> f64 {
    // Avoid u == 0 so ln is finite.
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let v: f64 = rng.gen_range(0.0..(2.0 * PI));
    (-2.0 * u.ln()).sqrt() * v.cos()
}

/// Draws one Laplace(0, scale) sample via inverse-CDF.
///
/// The Laplace distribution has kurtosis 6 — the paper's heavy-tailed
/// reference (Figure 5); with `scale = 1` its variance is 2.
pub fn laplace_sample<R: Rng>(rng: &mut R, scale: f64) -> f64 {
    let u: f64 = rng.gen_range(-0.5..0.5);
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// `n` IID standard-normal samples with the given seed (Figure 5, left;
/// variance 2 when `sd = √2`).
pub fn iid_normal(n: usize, mean: f64, sd: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| mean + sd * normal_sample(&mut rng)).collect()
}

/// `n` IID Laplace samples (Figure 5, right; variance `2·scale²`).
pub fn iid_laplace(n: usize, mean: f64, scale: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| mean + laplace_sample(&mut rng, scale)).collect()
}

/// `n` IID Uniform(lo, hi) samples (kurtosis 1.8, the paper's light-tailed
/// reference).
pub fn iid_uniform(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A Gaussian random walk: `x₀ = start`, `x_{t+1} = x_t + N(drift, sd²)`.
pub fn random_walk(n: usize, start: f64, drift: f64, sd: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut x = start;
    for _ in 0..n {
        out.push(x);
        x += drift + sd * normal_sample(&mut rng);
    }
    out
}

/// One periodic component of a composite series.
#[derive(Debug, Clone, Copy)]
pub struct Component {
    /// Period in points.
    pub period: f64,
    /// Amplitude.
    pub amplitude: f64,
    /// Phase offset in radians.
    pub phase: f64,
}

impl Component {
    /// A component with zero phase.
    pub fn new(period: f64, amplitude: f64) -> Self {
        Component {
            period,
            amplitude,
            phase: 0.0,
        }
    }
}

/// Localized structural anomalies, matching the kinds present in the paper's
/// evaluation datasets.
#[derive(Debug, Clone, Copy)]
pub enum Anomaly {
    /// Additive level shift over `[start, end)` — e.g. the Thanksgiving taxi
    /// dip or the Ascension-day power dip.
    LevelShift {
        /// First affected index.
        start: usize,
        /// One past the last affected index.
        end: usize,
        /// Additive offset applied over the region.
        delta: f64,
    },
    /// A short multiplicative burst of spikes over `[start, end)` — e.g.
    /// Twitter mention storms.
    Spike {
        /// First affected index.
        start: usize,
        /// One past the last affected index.
        end: usize,
        /// Additive spike magnitude.
        magnitude: f64,
    },
    /// Halves the period of all components over `[start, end)` — the Sine
    /// dataset's anomaly ("half the usual period").
    PeriodHalving {
        /// First affected index.
        start: usize,
        /// One past the last affected index.
        end: usize,
    },
    /// Linear ramp adding 0 at `start` up to `delta` at `end` and holding
    /// thereafter — e.g. the 20th-century warming trend.
    TrendRamp {
        /// First affected index.
        start: usize,
        /// Index at which the full `delta` is reached.
        end: usize,
        /// Total level change across the ramp.
        delta: f64,
    },
    /// Amplifies the seasonal amplitude by `factor` over `[start, end)` —
    /// e.g. a taller-than-usual peak.
    AmplitudeChange {
        /// First affected index.
        start: usize,
        /// One past the last affected index.
        end: usize,
        /// Multiplicative amplitude factor over the region.
        factor: f64,
    },
}

/// Declarative builder for composite seasonal series.
#[derive(Debug, Clone)]
pub struct SeasonalSeries {
    /// Number of points.
    pub n: usize,
    /// Constant offset.
    pub base: f64,
    /// Linear trend per point.
    pub trend_per_point: f64,
    /// Periodic components (summed).
    pub components: Vec<Component>,
    /// Standard deviation of additive Gaussian noise.
    pub noise_sd: f64,
    /// Injected anomalies, applied in order.
    pub anomalies: Vec<Anomaly>,
    /// RNG seed.
    pub seed: u64,
}

impl SeasonalSeries {
    /// Creates a builder with no components, noise, or anomalies.
    pub fn new(n: usize, seed: u64) -> Self {
        SeasonalSeries {
            n,
            base: 0.0,
            trend_per_point: 0.0,
            components: Vec::new(),
            noise_sd: 0.0,
            anomalies: Vec::new(),
            seed,
        }
    }

    /// Sets the constant offset.
    pub fn base(mut self, base: f64) -> Self {
        self.base = base;
        self
    }

    /// Sets the per-point linear trend.
    pub fn trend(mut self, per_point: f64) -> Self {
        self.trend_per_point = per_point;
        self
    }

    /// Adds a periodic component.
    pub fn component(mut self, period: f64, amplitude: f64) -> Self {
        self.components.push(Component::new(period, amplitude));
        self
    }

    /// Adds a phase-shifted periodic component.
    pub fn component_with_phase(mut self, period: f64, amplitude: f64, phase: f64) -> Self {
        self.components.push(Component {
            period,
            amplitude,
            phase,
        });
        self
    }

    /// Sets the additive Gaussian noise level.
    pub fn noise(mut self, sd: f64) -> Self {
        self.noise_sd = sd;
        self
    }

    /// Injects an anomaly.
    pub fn anomaly(mut self, a: Anomaly) -> Self {
        self.anomalies.push(a);
        self
    }

    /// Materializes the series.
    pub fn build(&self) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(self.n);
        for t in 0..self.n {
            let mut period_scale = 1.0f64;
            let mut amp_scale = 1.0f64;
            for a in &self.anomalies {
                match *a {
                    Anomaly::PeriodHalving { start, end } if t >= start && t < end => {
                        period_scale *= 0.5;
                    }
                    Anomaly::AmplitudeChange { start, end, factor } if t >= start && t < end => {
                        amp_scale *= factor;
                    }
                    _ => {}
                }
            }
            let tf = t as f64;
            let mut v = self.base + self.trend_per_point * tf;
            for c in &self.components {
                v += amp_scale * c.amplitude * (2.0 * PI * tf / (c.period * period_scale) + c.phase).sin();
            }
            if self.noise_sd > 0.0 {
                v += self.noise_sd * normal_sample(&mut rng);
            }
            for a in &self.anomalies {
                match *a {
                    Anomaly::LevelShift { start, end, delta } if t >= start && t < end => {
                        v += delta;
                    }
                    Anomaly::Spike { start, end, magnitude } if t >= start && t < end
                        // Deterministic pseudo-random spikes within the burst.
                        && (t * 2654435761) % 7 == 0 => {
                            v += magnitude;
                        }
                    Anomaly::TrendRamp { start, end, delta } => {
                        if t >= end {
                            v += delta;
                        } else if t >= start {
                            v += delta * (t - start) as f64 / (end - start) as f64;
                        }
                    }
                    _ => {}
                }
            }
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_timeseries::{kurtosis, moments};

    #[test]
    fn iid_normal_has_expected_moments() {
        let data = iid_normal(200_000, 0.0, 2.0f64.sqrt(), 42);
        let m = moments(&data).unwrap();
        assert!(m.mean().abs() < 0.02, "mean {}", m.mean());
        assert!((m.variance() - 2.0).abs() < 0.05, "var {}", m.variance());
        // Figure 5: normal kurtosis = 3.
        assert!((m.kurtosis() - 3.0).abs() < 0.1, "kurt {}", m.kurtosis());
    }

    #[test]
    fn iid_laplace_has_kurtosis_six() {
        let data = iid_laplace(300_000, 0.0, 1.0, 7);
        let m = moments(&data).unwrap();
        assert!((m.variance() - 2.0).abs() < 0.05, "var {}", m.variance());
        // Figure 5: Laplace kurtosis = 6 (heavier tails, same variance).
        assert!((m.kurtosis() - 6.0).abs() < 0.25, "kurt {}", m.kurtosis());
    }

    #[test]
    fn iid_uniform_has_kurtosis_1_8() {
        let data = iid_uniform(200_000, -1.0, 1.0, 11);
        let k = kurtosis(&data).unwrap();
        assert!((k - 1.8).abs() < 0.05, "kurt {k}");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(iid_normal(100, 0.0, 1.0, 5), iid_normal(100, 0.0, 1.0, 5));
        assert_ne!(iid_normal(100, 0.0, 1.0, 5), iid_normal(100, 0.0, 1.0, 6));
    }

    #[test]
    fn random_walk_starts_at_start() {
        let w = random_walk(10, 3.5, 0.0, 1.0, 1);
        assert_eq!(w[0], 3.5);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn seasonal_series_is_periodic() {
        let s = SeasonalSeries::new(1000, 1).component(50.0, 1.0).build();
        // Noise-free: exact periodicity.
        for t in 0..900 {
            assert!((s[t] - s[t + 50]).abs() < 1e-9);
        }
    }

    #[test]
    fn level_shift_moves_the_region_mean() {
        let s = SeasonalSeries::new(300, 1)
            .base(10.0)
            .anomaly(Anomaly::LevelShift {
                start: 100,
                end: 150,
                delta: -5.0,
            })
            .build();
        assert_eq!(s[99], 10.0);
        assert_eq!(s[100], 5.0);
        assert_eq!(s[149], 5.0);
        assert_eq!(s[150], 10.0);
    }

    #[test]
    fn period_halving_halves_the_local_period() {
        let s = SeasonalSeries::new(640, 1)
            .component(32.0, 1.0)
            .anomaly(Anomaly::PeriodHalving {
                start: 320,
                end: 384,
            })
            .build();
        // Inside the anomalous region the signal repeats every 16 points.
        for t in 330..360 {
            assert!((s[t] - s[t + 16]).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn trend_ramp_holds_after_end() {
        let s = SeasonalSeries::new(100, 1)
            .anomaly(Anomaly::TrendRamp {
                start: 20,
                end: 40,
                delta: 10.0,
            })
            .build();
        assert_eq!(s[19], 0.0);
        assert!((s[30] - 5.0).abs() < 1e-9);
        assert_eq!(s[40], 10.0);
        assert_eq!(s[99], 10.0);
    }

    #[test]
    fn spikes_raise_kurtosis() {
        let plain = SeasonalSeries::new(5000, 3).noise(1.0).build();
        let spiky = SeasonalSeries::new(5000, 3)
            .noise(1.0)
            .anomaly(Anomaly::Spike {
                start: 2000,
                end: 2100,
                magnitude: 30.0,
            })
            .build();
        let k_plain = kurtosis(&plain).unwrap();
        let k_spiky = kurtosis(&spiky).unwrap();
        assert!(k_spiky > 2.0 * k_plain, "{k_plain} -> {k_spiky}");
    }

    #[test]
    fn amplitude_change_scales_components() {
        let s = SeasonalSeries::new(200, 1)
            .component(20.0, 1.0)
            .anomaly(Anomaly::AmplitudeChange {
                start: 100,
                end: 140,
                factor: 3.0,
            })
            .build();
        let max_before: f64 = s[..100].iter().cloned().fold(f64::MIN, f64::max);
        let max_during: f64 = s[100..140].iter().cloned().fold(f64::MIN, f64::max);
        assert!(max_during > 2.5 * max_before);
    }
}
