//! Dataset simulators and I/O for the ASAP evaluation suite.
//!
//! The paper evaluates ASAP on 11 publicly available datasets (Table 2) and
//! five of them in two user studies (§5.1). The original files are not
//! redistributable here, so this crate builds **synthetic equivalents**:
//! each simulator matches the original's length, sampling period,
//! periodicity structure, anomaly type, and anomaly placement — the only
//! properties ASAP's window search and the user-study observer model depend
//! on. The substitution table lives in `DESIGN.md`.
//!
//! * [`generators`] — building blocks: seeded IID samplers (normal,
//!   Laplace, uniform), random walks, and a composite seasonal-series
//!   builder with anomaly injection;
//! * [`datasets`] — one module per evaluation dataset (`taxi`, `power`,
//!   `eeg`, `temp`, `sine`, `gas_sensor`, `traffic`, `machine_temp`,
//!   `twitter`, `ramp`, `sim_daily`, plus the `cpu_cluster` case study of
//!   Figure 2);
//! * [`catalog`] — machine-readable metadata for every dataset: size,
//!   duration, dominant period, and the ground-truth anomaly region used by
//!   the simulated user study;
//! * [`csv`] — minimal timestamp/value CSV reading and writing so users can
//!   run the library against their own telemetry exports.
//!
//! All simulators are deterministic (fixed seeds) so experiments are
//! reproducible run-to-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod csv;
pub mod datasets;
pub mod generators;

pub use catalog::{all_datasets, by_name, user_study_datasets, DatasetInfo};
pub use csv::{read_csv, write_csv, CsvError};
pub use datasets::{
    cpu_cluster, eeg, gas_sensor, machine_temp, power, ramp_traffic, sim_daily, sine, taxi,
    temperature, traffic_data, twitter_aapl,
};
