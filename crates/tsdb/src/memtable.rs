//! The mutable head of a series: an append buffer that seals into blocks.

use crate::block::Block;
use crate::error::TsdbError;
use crate::point::DataPoint;

/// Append buffer holding the newest, still-uncompressed points of a series.
///
/// Enforces the two ingestion invariants the rest of the engine relies on:
/// strictly increasing timestamps and finite values. When the buffer
/// reaches its capacity the owner seals it into a [`Block`].
#[derive(Debug)]
pub struct MemTable {
    points: Vec<DataPoint>,
    capacity: usize,
}

impl MemTable {
    /// Creates an empty memtable that signals "full" at `capacity` points.
    pub fn new(capacity: usize) -> Self {
        Self {
            points: Vec::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
        }
    }

    /// Number of buffered points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// True when the buffer has reached its seal threshold.
    pub fn is_full(&self) -> bool {
        self.points.len() >= self.capacity
    }

    /// Timestamp of the newest buffered point, if any.
    pub fn last_timestamp(&self) -> Option<i64> {
        self.points.last().map(|p| p.timestamp)
    }

    /// Buffered points, oldest first.
    pub fn points(&self) -> &[DataPoint] {
        &self.points
    }

    /// Appends one point, validating ordering and finiteness.
    ///
    /// Ordering is validated against the memtable's own newest point; the
    /// owning series additionally checks against its sealed blocks when the
    /// memtable is empty.
    pub fn append(&mut self, point: DataPoint) -> Result<(), TsdbError> {
        if !point.value.is_finite() {
            return Err(TsdbError::NonFiniteValue {
                timestamp: point.timestamp,
            });
        }
        if let Some(last) = self.last_timestamp() {
            if point.timestamp <= last {
                return Err(TsdbError::OutOfOrder {
                    last,
                    got: point.timestamp,
                });
            }
        }
        self.points.push(point);
        Ok(())
    }

    /// Points with timestamps in `[start, end)`, oldest first.
    pub fn range(&self, start: i64, end: i64) -> &[DataPoint] {
        let lo = self.points.partition_point(|p| p.timestamp < start);
        let hi = self.points.partition_point(|p| p.timestamp < end);
        &self.points[lo..hi]
    }

    /// Seals the buffered points into a block and clears the buffer.
    ///
    /// Returns `None` when the buffer is empty.
    pub fn seal(&mut self) -> Option<Result<Block, TsdbError>> {
        if self.points.is_empty() {
            return None;
        }
        let block = Block::seal(&self.points);
        self.points.clear();
        Some(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_enforces_strict_ordering() {
        let mut m = MemTable::new(16);
        m.append(DataPoint::new(10, 1.0)).unwrap();
        assert_eq!(
            m.append(DataPoint::new(10, 2.0)),
            Err(TsdbError::OutOfOrder { last: 10, got: 10 }),
            "duplicate timestamps rejected"
        );
        assert_eq!(
            m.append(DataPoint::new(5, 2.0)),
            Err(TsdbError::OutOfOrder { last: 10, got: 5 })
        );
        m.append(DataPoint::new(11, 2.0)).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn append_rejects_non_finite() {
        let mut m = MemTable::new(16);
        assert_eq!(
            m.append(DataPoint::new(1, f64::NAN)),
            Err(TsdbError::NonFiniteValue { timestamp: 1 })
        );
        assert_eq!(
            m.append(DataPoint::new(2, f64::INFINITY)),
            Err(TsdbError::NonFiniteValue { timestamp: 2 })
        );
        assert!(m.is_empty(), "rejected writes leave no residue");
    }

    #[test]
    fn is_full_at_capacity() {
        let mut m = MemTable::new(3);
        for i in 0..3 {
            assert!(!m.is_full());
            m.append(DataPoint::new(i, 0.0)).unwrap();
        }
        assert!(m.is_full());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut m = MemTable::new(0);
        assert!(!m.is_full());
        m.append(DataPoint::new(0, 0.0)).unwrap();
        assert!(m.is_full());
    }

    #[test]
    fn range_is_half_open_binary_searched() {
        let mut m = MemTable::new(64);
        for i in 0..10 {
            m.append(DataPoint::new(i * 10, i as f64)).unwrap();
        }
        let r = m.range(20, 50);
        let ts: Vec<_> = r.iter().map(|p| p.timestamp).collect();
        assert_eq!(ts, vec![20, 30, 40]);
        assert!(m.range(100, 200).is_empty());
        assert_eq!(m.range(i64::MIN, i64::MAX).len(), 10);
    }

    #[test]
    fn seal_drains_and_round_trips() {
        let mut m = MemTable::new(8);
        for i in 0..5 {
            m.append(DataPoint::new(i, i as f64 * 2.0)).unwrap();
        }
        let block = m.seal().unwrap().unwrap();
        assert!(m.is_empty());
        assert_eq!(block.len(), 5);
        assert_eq!(block.decode().unwrap()[3], DataPoint::new(3, 6.0));
        assert!(m.seal().is_none(), "sealing an empty memtable yields None");
    }
}
