//! InfluxDB-style line-protocol ingestion.
//!
//! The ASAP paper (§2) positions the operator downstream of time-series
//! databases "such as InfluxDB"; this module implements the ingestion
//! format those systems speak so the substrate can be fed real exports:
//!
//! ```text
//! measurement[,tag=value...] field=value[,field2=value2...] [timestamp]
//! ```
//!
//! Supported subset: unquoted tag values, float/integer field values, `#`
//! comments, blank lines. Each `(measurement, tags, field)` triple maps to
//! one series, keyed as `measurement.field` with the record's tags.

use crate::db::Tsdb;
use crate::error::TsdbError;
use crate::point::DataPoint;
use crate::tags::SeriesKey;

/// One parsed line-protocol record (one field ⇒ one [`ParsedPoint`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedPoint {
    /// Destination series (measurement.field plus the record tags).
    pub key: SeriesKey,
    /// The sample.
    pub point: DataPoint,
}

/// Parses a line-protocol document into points.
///
/// Records missing a timestamp take `default_ts` plus the 0-based line
/// index (so repeated calls with increasing bases stay ordered). The sum
/// saturates at `i64::MAX` rather than overflowing for absurd bases.
pub fn parse(text: &str, default_ts: i64) -> Result<Vec<ParsedPoint>, TsdbError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.extend(parse_line(line, line_no, fallback_ts(default_ts, idx))?);
    }
    Ok(out)
}

/// The timestamp a record on 0-based line `idx` falls back to when it
/// carries none: `default_ts + idx`, saturating instead of overflowing.
pub(crate) fn fallback_ts(default_ts: i64, idx: usize) -> i64 {
    default_ts.saturating_add(i64::try_from(idx).unwrap_or(i64::MAX))
}

/// Reassembles complete lines out of an arbitrary byte stream.
///
/// The streaming ingest pipeline ([`mod@crate::ingest`]) receives the
/// document as raw reader chunks that may split anywhere — mid-float,
/// mid-escape, even mid-UTF-8 code point. This accumulator buffers bytes
/// until a `\n` completes a line, reproducing `str::lines` semantics
/// exactly so a streamed document tokenizes identically to an in-memory
/// one:
///
/// * lines are terminated by `\n`; a `\r` immediately before the `\n` is
///   stripped (a `\r` anywhere else is line content);
/// * a trailing line without a final `\n` is emitted by
///   [`LineAssembler::finish`]; a document ending in `\n` yields no extra
///   empty line;
/// * completed lines are decoded with `String::from_utf8_lossy` — for
///   valid UTF-8 input (any document that ever existed as a `&str`) this
///   is exact, and chunk boundaries inside a multi-byte code point cannot
///   corrupt it because decoding happens only on complete lines.
#[derive(Debug, Default)]
pub(crate) struct LineAssembler {
    partial: Vec<u8>,
}

impl LineAssembler {
    /// Creates an empty assembler.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Feeds bytes, appending every newly completed line to `out`.
    pub(crate) fn push(&mut self, bytes: &[u8], out: &mut Vec<String>) {
        let mut rest = bytes;
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(pos);
            rest = &tail[1..]; // skip the newline itself
            let line = if self.partial.is_empty() {
                strip_cr(head).to_vec()
            } else {
                self.partial.extend_from_slice(head);
                let mut line = std::mem::take(&mut self.partial);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                line
            };
            out.push(String::from_utf8_lossy(&line).into_owned());
        }
        self.partial.extend_from_slice(rest);
    }

    /// Emits the trailing unterminated line, if any bytes are pending.
    pub(crate) fn finish(&mut self, out: &mut Vec<String>) {
        if !self.partial.is_empty() {
            let line = std::mem::take(&mut self.partial);
            // No trailing `\n`, so a final `\r` is content (as in
            // `str::lines`).
            out.push(String::from_utf8_lossy(&line).into_owned());
        }
    }
}

/// Strips one `\r` from the end of a `\n`-terminated line body.
fn strip_cr(line: &[u8]) -> &[u8] {
    match line {
        [head @ .., b'\r'] => head,
        _ => line,
    }
}

/// Parses a document and writes every point into `db`.
///
/// Returns the number of points written. Writes are per-series ordered
/// only if the input is; ordering violations surface as
/// [`TsdbError::OutOfOrder`].
pub fn ingest(db: &Tsdb, text: &str, default_ts: i64) -> Result<usize, TsdbError> {
    let points = parse(text, default_ts)?;
    for p in &points {
        db.write(&p.key, p.point)?;
    }
    Ok(points.len())
}

/// Parses one pre-trimmed, non-comment record; `line_no` is the 1-based
/// line number carried into any [`TsdbError::Parse`]. Shared by the serial
/// [`parse`] loop and the concurrent [`crate::ingest`] parser workers.
pub(crate) fn parse_line(
    line: &str,
    line_no: usize,
    fallback_ts: i64,
) -> Result<Vec<ParsedPoint>, TsdbError> {
    let err = |reason: &'static str| TsdbError::Parse {
        line: line_no,
        reason,
    };
    let mut sections = line.split_whitespace();
    let head = sections.next().ok_or_else(|| err("empty record"))?;
    let fields = sections.next().ok_or_else(|| err("missing field set"))?;
    let ts = match sections.next() {
        Some(t) => t
            .parse::<i64>()
            .map_err(|_| err("timestamp is not an integer"))?,
        None => fallback_ts,
    };
    if sections.next().is_some() {
        return Err(err("trailing tokens after timestamp"));
    }

    // Head: measurement[,tag=value...]
    let mut head_parts = head.split(',');
    let measurement = head_parts.next().filter(|m| !m.is_empty()).ok_or_else(|| err("empty measurement name"))?;
    let mut tags = Vec::new();
    for pair in head_parts {
        let (k, v) = pair.split_once('=').ok_or_else(|| err("malformed tag pair"))?;
        if k.is_empty() || v.is_empty() {
            return Err(err("empty tag key or value"));
        }
        tags.push((k, v));
    }

    // Fields: name=value[,name=value...]
    let mut out = Vec::new();
    for pair in fields.split(',') {
        let (name, raw) = pair.split_once('=').ok_or_else(|| err("malformed field pair"))?;
        if name.is_empty() {
            return Err(err("empty field name"));
        }
        // Accept Influx's integer suffix `i` as well as plain floats.
        let raw = raw.strip_suffix('i').unwrap_or(raw);
        let value: f64 = raw.parse().map_err(|_| err("field value is not numeric"))?;
        let mut key = SeriesKey::metric(format!("{measurement}.{name}"));
        for &(k, v) in &tags {
            key = key.with_tag(k, v);
        }
        out.push(ParsedPoint {
            key,
            point: DataPoint::new(ts, value),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_record_parses() {
        let pts = parse("cpu,host=a,dc=west usage=42.5,idle=57.5 1600000000", 0).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].key.metric_name(), "cpu.usage");
        assert_eq!(pts[0].key.tag("host"), Some("a"));
        assert_eq!(pts[0].key.tag("dc"), Some("west"));
        assert_eq!(pts[0].point, DataPoint::new(1_600_000_000, 42.5));
        assert_eq!(pts[1].key.metric_name(), "cpu.idle");
        assert_eq!(pts[1].point.value, 57.5);
    }

    #[test]
    fn tagless_and_timestampless_records_parse() {
        let pts = parse("load value=1.5", 99).unwrap();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].key.metric_name(), "load.value");
        assert!(pts[0].key.tags().is_empty());
        assert_eq!(pts[0].point.timestamp, 99, "fallback timestamp applied");
    }

    #[test]
    fn fallback_timestamps_increase_with_line_index() {
        let pts = parse("a v=1\na v=2\na v=3", 100).unwrap();
        let ts: Vec<_> = pts.iter().map(|p| p.point.timestamp).collect();
        assert_eq!(ts, vec![100, 101, 102]);
    }

    #[test]
    fn integer_suffix_accepted() {
        let pts = parse("net bytes=1024i 5", 0).unwrap();
        assert_eq!(pts[0].point.value, 1024.0);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let pts = parse("# header\n\ncpu v=1 10\n  \n# trailing", 0).unwrap();
        assert_eq!(pts.len(), 1);
    }

    #[test]
    fn malformed_records_report_line_numbers() {
        let cases = [
            ("cpu", "missing field set"),
            ("cpu v=abc 5", "field value is not numeric"),
            ("cpu v=1 notatime", "timestamp is not an integer"),
            ("cpu,host v=1 5", "malformed tag pair"),
            ("cpu,host= v=1 5", "empty tag key or value"),
            ("cpu =1 5", "empty field name"),
            ("cpu v=1 5 extra", "trailing tokens after timestamp"),
            (",host=a v=1 5", "empty measurement name"),
        ];
        for (text, want) in cases {
            let doc = format!("# comment\n{text}");
            match parse(&doc, 0) {
                Err(TsdbError::Parse { line, reason }) => {
                    assert_eq!(line, 2, "line number for {text:?}");
                    assert_eq!(reason, want, "reason for {text:?}");
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn ingest_writes_into_db() {
        let db = Tsdb::new();
        let n = ingest(
            &db,
            "cpu,host=a usage=10 1\ncpu,host=a usage=20 2\ncpu,host=b usage=5 1",
            0,
        )
        .unwrap();
        assert_eq!(n, 3);
        assert_eq!(db.series_count(), 2);
        let key = SeriesKey::metric("cpu.usage").with_tag("host", "a");
        let out = db
            .query(&key, crate::query::RangeQuery::raw(0, 10))
            .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn ingest_surfaces_out_of_order() {
        let db = Tsdb::new();
        let err = ingest(&db, "cpu v=1 10\ncpu v=2 5", 0).unwrap_err();
        assert!(matches!(err, TsdbError::OutOfOrder { last: 10, got: 5 }));
    }

    #[test]
    fn duplicate_tags_last_value_wins() {
        // SeriesKey::with_tag replaces on duplicate keys, so the record's
        // rightmost duplicate determines the series — never two tags with
        // the same key, never a panic.
        let pts = parse("cpu,host=a,host=b v=1 5", 0).unwrap();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].key.tag("host"), Some("b"));
        assert_eq!(pts[0].key.tags().len(), 1);
    }

    #[test]
    fn out_of_range_timestamps_error_with_line_number() {
        // Larger than i64::MAX: not representable, must be a parse error
        // on the right line, not a panic.
        let doc = "ok v=1 5\ncpu v=1 99999999999999999999999999";
        match parse(doc, 0) {
            Err(TsdbError::Parse { line: 2, reason }) => {
                assert_eq!(reason, "timestamp is not an integer");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Extremes that *are* representable parse fine.
        let pts = parse(&format!("cpu v=1 {}\n", i64::MAX), 0).unwrap();
        assert_eq!(pts[0].point.timestamp, i64::MAX);
        let pts = parse(&format!("cpu v=1 {}\n", i64::MIN), 0).unwrap();
        assert_eq!(pts[0].point.timestamp, i64::MIN);
    }

    #[test]
    fn fallback_timestamp_saturates_instead_of_overflowing() {
        // default_ts near i64::MAX plus a line index must not overflow
        // (debug builds would panic on `+`).
        let pts = parse("a v=1\nb v=2\nc v=3", i64::MAX - 1).unwrap();
        assert_eq!(pts[0].point.timestamp, i64::MAX - 1);
        assert_eq!(pts[1].point.timestamp, i64::MAX);
        assert_eq!(pts[2].point.timestamp, i64::MAX, "saturated, not wrapped");
    }

    #[test]
    fn comments_mid_document_keep_line_numbers_honest() {
        let doc = "cpu v=1 1\n# interlude\n  # indented comment\ncpu v=oops 2";
        match parse(doc, 0) {
            Err(TsdbError::Parse { line, reason }) => {
                assert_eq!(line, 4, "comment lines still count");
                assert_eq!(reason, "field value is not numeric");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_field_sets_are_errors_not_panics() {
        for doc in [
            "cpu",              // nothing after measurement
            "cpu 1234",         // timestamp where the field set belongs
            "cpu ,",            // empty field pair
            "cpu v=",           // field with empty value
            "cpu v= 5",         // ditto, with timestamp
            "cpu =5 5",         // missing field name
            "cpu,host=a",       // tags but no fields
        ] {
            match parse(doc, 0) {
                Err(TsdbError::Parse { line: 1, .. }) => {}
                other => panic!("expected line-1 parse error for {doc:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn escaped_junk_never_panics() {
        // The supported subset has no escaping; backslashes, quotes and
        // other junk must surface as clean per-line errors (or parse as
        // literal token bytes), never a panic.
        for doc in [
            "m,t=a\\ b v=1",
            "m \"v\"=1",
            "m,t=\"x y\" v=1 5",
            "m v=1\\n2",
            "\\",
            "m,=x v=1",
            "m,t== v=1",
            "m v==1",
            "\u{0}weird\u{7f} v=1",
            "m,t=\u{1f600} v=1 5",
        ] {
            let _ = parse(doc, 0); // Ok or Err both fine; panics are not.
        }
        // A tag value that is itself junk-free parses as literal bytes.
        let pts = parse("m,t=\u{1f600} v=1 5", 0).unwrap();
        assert_eq!(pts[0].key.tag("t"), Some("\u{1f600}"));
    }

    /// Collects the assembler's output for one split of `doc` into
    /// byte pieces.
    fn assemble(doc: &[u8], piece: usize) -> Vec<String> {
        let mut asm = LineAssembler::new();
        let mut out = Vec::new();
        for chunk in doc.chunks(piece.max(1)) {
            asm.push(chunk, &mut out);
        }
        asm.finish(&mut out);
        out
    }

    #[test]
    fn line_assembler_matches_str_lines_at_any_split() {
        let docs = [
            "cpu v=1 1\ncpu v=2 2\n",
            "no trailing newline",
            "",
            "\n",
            "\r\n",
            "a\r\nb\nc\r",          // CRLF, LF, and a content \r at EOF
            "mid\rline\n",          // \r not before \n is content
            "m,t=\u{1f600} v=1 5\n# comment \u{00e9}\u{6f22}\n", // multi-byte
            "a\n\n\nb",
        ];
        for doc in docs {
            let want: Vec<String> = doc.lines().map(str::to_owned).collect();
            // Every piece size, down to one byte — splits land mid-UTF-8.
            for piece in 1..=doc.len().max(1) {
                assert_eq!(
                    assemble(doc.as_bytes(), piece),
                    want,
                    "doc {doc:?} split every {piece} bytes"
                );
            }
        }
    }

    #[test]
    fn line_assembler_finish_is_idempotent_and_final_cr_is_content() {
        let mut asm = LineAssembler::new();
        let mut out = Vec::new();
        asm.push(b"tail\r", &mut out);
        assert!(out.is_empty(), "no newline yet");
        asm.finish(&mut out);
        assert_eq!(out, vec!["tail\r".to_owned()], "EOF \\r is content");
        asm.finish(&mut out);
        assert_eq!(out.len(), 1, "second finish emits nothing");
    }

    use proptest::prelude::*;

    /// Checks totality on one document: parse must return `Ok` or a
    /// line-numbered `Parse` error inside the document — nothing else,
    /// and never a panic.
    fn assert_total(doc: &str, base: i64) -> proptest::TestCaseResult {
        match parse(doc, base) {
            Ok(_) => {}
            Err(TsdbError::Parse { line, .. }) => {
                prop_assert!(line >= 1);
                prop_assert!(line <= doc.lines().count());
            }
            Err(other) => {
                return Err(proptest::TestCaseError::fail(format!(
                    "non-parse error from parse(): {other:?}"
                )))
            }
        }
        Ok(())
    }

    proptest! {
        /// The parser is total over arbitrary byte soup (lossily decoded
        /// to UTF-8): any input either parses or reports a line-numbered
        /// error — it never panics.
        #[test]
        fn parser_never_panics_on_junk(
            bytes in prop::collection::vec(0u32..256, 0..80),
            base in (i64::MIN..i64::MAX),
        ) {
            let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
            let doc = String::from_utf8_lossy(&raw).into_owned();
            assert_total(&doc, base)?;
        }

        /// Structured-ish junk built from line-protocol punctuation hits
        /// the deeper branches (tag pairs, field pairs, timestamps);
        /// still total, still line-accurate.
        #[test]
        fn parser_never_panics_on_protocol_shaped_junk(
            picks in prop::collection::vec(0usize..18, 0..120),
            base in (i64::MIN..i64::MAX),
        ) {
            const ALPHABET: [char; 18] = [
                'a', 'z', '=', ',', '.', '#', ' ', '0', '9', 'i', '\\', '\n',
                '-', '{', '}', '"', '\t', '\u{1f600}',
            ];
            let doc: String = picks.iter().map(|&i| ALPHABET[i]).collect();
            assert_total(&doc, base)?;
        }
    }
}
