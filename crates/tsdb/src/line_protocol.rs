//! InfluxDB-style line-protocol ingestion.
//!
//! The ASAP paper (§2) positions the operator downstream of time-series
//! databases "such as InfluxDB"; this module implements the ingestion
//! format those systems speak so the substrate can be fed real exports:
//!
//! ```text
//! measurement[,tag=value...] field=value[,field2=value2...] [timestamp]
//! ```
//!
//! Supported subset: unquoted tag values, float/integer field values, `#`
//! comments, blank lines. Each `(measurement, tags, field)` triple maps to
//! one series, keyed as `measurement.field` with the record's tags.

use crate::db::Tsdb;
use crate::error::TsdbError;
use crate::point::DataPoint;
use crate::tags::SeriesKey;

/// One parsed line-protocol record (one field ⇒ one [`ParsedPoint`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedPoint {
    /// Destination series (measurement.field plus the record tags).
    pub key: SeriesKey,
    /// The sample.
    pub point: DataPoint,
}

/// Parses a line-protocol document into points.
///
/// Records missing a timestamp take `default_ts` plus the 0-based record
/// index (so repeated calls with increasing bases stay ordered).
pub fn parse(text: &str, default_ts: i64) -> Result<Vec<ParsedPoint>, TsdbError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.extend(parse_line(line, line_no, default_ts + idx as i64)?);
    }
    Ok(out)
}

/// Parses a document and writes every point into `db`.
///
/// Returns the number of points written. Writes are per-series ordered
/// only if the input is; ordering violations surface as
/// [`TsdbError::OutOfOrder`].
pub fn ingest(db: &Tsdb, text: &str, default_ts: i64) -> Result<usize, TsdbError> {
    let points = parse(text, default_ts)?;
    for p in &points {
        db.write(&p.key, p.point)?;
    }
    Ok(points.len())
}

fn parse_line(
    line: &str,
    line_no: usize,
    fallback_ts: i64,
) -> Result<Vec<ParsedPoint>, TsdbError> {
    let err = |reason: &'static str| TsdbError::Parse {
        line: line_no,
        reason,
    };
    let mut sections = line.split_whitespace();
    let head = sections.next().ok_or_else(|| err("empty record"))?;
    let fields = sections.next().ok_or_else(|| err("missing field set"))?;
    let ts = match sections.next() {
        Some(t) => t
            .parse::<i64>()
            .map_err(|_| err("timestamp is not an integer"))?,
        None => fallback_ts,
    };
    if sections.next().is_some() {
        return Err(err("trailing tokens after timestamp"));
    }

    // Head: measurement[,tag=value...]
    let mut head_parts = head.split(',');
    let measurement = head_parts.next().filter(|m| !m.is_empty()).ok_or_else(|| err("empty measurement name"))?;
    let mut tags = Vec::new();
    for pair in head_parts {
        let (k, v) = pair.split_once('=').ok_or_else(|| err("malformed tag pair"))?;
        if k.is_empty() || v.is_empty() {
            return Err(err("empty tag key or value"));
        }
        tags.push((k, v));
    }

    // Fields: name=value[,name=value...]
    let mut out = Vec::new();
    for pair in fields.split(',') {
        let (name, raw) = pair.split_once('=').ok_or_else(|| err("malformed field pair"))?;
        if name.is_empty() {
            return Err(err("empty field name"));
        }
        // Accept Influx's integer suffix `i` as well as plain floats.
        let raw = raw.strip_suffix('i').unwrap_or(raw);
        let value: f64 = raw.parse().map_err(|_| err("field value is not numeric"))?;
        let mut key = SeriesKey::metric(format!("{measurement}.{name}"));
        for &(k, v) in &tags {
            key = key.with_tag(k, v);
        }
        out.push(ParsedPoint {
            key,
            point: DataPoint::new(ts, value),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_record_parses() {
        let pts = parse("cpu,host=a,dc=west usage=42.5,idle=57.5 1600000000", 0).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].key.metric_name(), "cpu.usage");
        assert_eq!(pts[0].key.tag("host"), Some("a"));
        assert_eq!(pts[0].key.tag("dc"), Some("west"));
        assert_eq!(pts[0].point, DataPoint::new(1_600_000_000, 42.5));
        assert_eq!(pts[1].key.metric_name(), "cpu.idle");
        assert_eq!(pts[1].point.value, 57.5);
    }

    #[test]
    fn tagless_and_timestampless_records_parse() {
        let pts = parse("load value=1.5", 99).unwrap();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].key.metric_name(), "load.value");
        assert!(pts[0].key.tags().is_empty());
        assert_eq!(pts[0].point.timestamp, 99, "fallback timestamp applied");
    }

    #[test]
    fn fallback_timestamps_increase_with_line_index() {
        let pts = parse("a v=1\na v=2\na v=3", 100).unwrap();
        let ts: Vec<_> = pts.iter().map(|p| p.point.timestamp).collect();
        assert_eq!(ts, vec![100, 101, 102]);
    }

    #[test]
    fn integer_suffix_accepted() {
        let pts = parse("net bytes=1024i 5", 0).unwrap();
        assert_eq!(pts[0].point.value, 1024.0);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let pts = parse("# header\n\ncpu v=1 10\n  \n# trailing", 0).unwrap();
        assert_eq!(pts.len(), 1);
    }

    #[test]
    fn malformed_records_report_line_numbers() {
        let cases = [
            ("cpu", "missing field set"),
            ("cpu v=abc 5", "field value is not numeric"),
            ("cpu v=1 notatime", "timestamp is not an integer"),
            ("cpu,host v=1 5", "malformed tag pair"),
            ("cpu,host= v=1 5", "empty tag key or value"),
            ("cpu =1 5", "empty field name"),
            ("cpu v=1 5 extra", "trailing tokens after timestamp"),
            (",host=a v=1 5", "empty measurement name"),
        ];
        for (text, want) in cases {
            let doc = format!("# comment\n{text}");
            match parse(&doc, 0) {
                Err(TsdbError::Parse { line, reason }) => {
                    assert_eq!(line, 2, "line number for {text:?}");
                    assert_eq!(reason, want, "reason for {text:?}");
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn ingest_writes_into_db() {
        let db = Tsdb::new();
        let n = ingest(
            &db,
            "cpu,host=a usage=10 1\ncpu,host=a usage=20 2\ncpu,host=b usage=5 1",
            0,
        )
        .unwrap();
        assert_eq!(n, 3);
        assert_eq!(db.series_count(), 2);
        let key = SeriesKey::metric("cpu.usage").with_tag("host", "a");
        let out = db
            .query(&key, crate::query::RangeQuery::raw(0, 10))
            .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn ingest_surfaces_out_of_order() {
        let db = Tsdb::new();
        let err = ingest(&db, "cpu v=1 10\ncpu v=2 5", 0).unwrap_err();
        assert!(matches!(err, TsdbError::OutOfOrder { last: 10, got: 5 }));
    }
}
