//! Embedded time-series storage substrate for the ASAP reproduction.
//!
//! The ASAP paper (§2) places the operator downstream of production
//! time-series databases — "ASAP can ingest and process raw data from time
//! series databases such as InfluxDB" — and cites Facebook Gorilla
//! \[51\] as the archetypal ingestion tier. This crate implements that
//! substrate from scratch so the reproduction exercises the full pipeline
//! the paper's deployments assume:
//!
//! * [`bits`] / [`gorilla`] — bit-granular I/O and Gorilla compression
//!   (delta-of-delta timestamps, XOR values);
//! * [`block`] / [`memtable`] / [`series`] — sealed compressed blocks with
//!   skip-scan summaries, the mutable append head, and the per-series
//!   store that merges them;
//! * [`tags`] / [`db`] — metric+tag series identity, selectors, and the
//!   concurrent engine facade;
//! * [`shard`] / [`sharded`] — the storage partition both front-ends are
//!   built from, and the horizontally sharded engine that routes series by
//!   tag-aware hash and fans multi-series smoothing queries out across
//!   shard-parallel worker threads;
//! * [`query`] — range scans, bucketed aggregation, and the grid
//!   alignment + gap-fill ASAP's equi-spaced SMA model requires;
//! * [`line_protocol`] — InfluxDB-style text ingestion;
//! * [`mod@ingest`] — the streaming concurrent ingest pipeline: a
//!   bounded-memory chunker over any byte source (`io::Read`, a socket,
//!   incremental feeds), parser workers feeding per-shard bounded
//!   channels, per-shard writers with an optional watermark reorder
//!   stage, end-to-end backpressure, and a deterministic ingest report;
//! * [`retention`] — TTLs and continuous-aggregate rollups (the raw-hot /
//!   downsampled-cold tiering monitoring dashboards sit on), fanned out
//!   per shard on the partitioned engine;
//! * [`obs`] — self-observability: a lock-cheap metrics registry
//!   (atomic counters, gauges, log-bucketed latency histograms), a
//!   leveled structured logger, and the Prometheus/line-protocol
//!   renderers behind the server's `METRICS` verb and self-scrape;
//! * [`persist`] — single-file snapshots for restart durability (v2
//!   serializes and loads shards in parallel), plus the coordinated
//!   checkpoint (rotate → save → discard) and snapshot+WAL-tail recovery
//!   entry points;
//! * [`chain`] — incremental checkpoint chains (snapshot v3): a base v2
//!   snapshot plus per-series delta links under a CRC-guarded manifest,
//!   so online checkpoint cost scales with write activity instead of
//!   total data, folded transparently by the recovery entry points;
//! * [`wal`] — per-shard append-only write-ahead log: CRC-checked
//!   length-prefixed records of applied points, configurable fsync
//!   policy, generation-based rotation, and idempotent crash replay;
//! * [`reorder`] — watermark-based reordering, generic over the
//!   [`SeriesWriter`] sink, so bounded-lateness out-of-order telemetry
//!   survives the engine's strict ordering;
//! * [`smooth`] — the query→ASAP bridge: smooth a visualization interval
//!   straight out of storage.
//!
//! # Example
//!
//! ```
//! use asap_tsdb::{DataPoint, RangeQuery, SeriesKey, Tsdb};
//!
//! let db = Tsdb::new();
//! let key = SeriesKey::metric("cpu").with_tag("host", "a");
//! for i in 0..600 {
//!     db.write(&key, DataPoint::new(i * 10, (i as f64 / 40.0).sin())).unwrap();
//! }
//! // Average into 100-second buckets over the first minute's worth.
//! let buckets = db.query(&key, RangeQuery::bucketed(0, 6_000, 100)).unwrap();
//! assert_eq!(buckets.len(), 60);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod block;
pub mod chain;
pub mod db;
pub mod error;
pub mod gorilla;
pub mod ingest;
pub mod line_protocol;
pub mod memtable;
pub mod obs;
pub mod persist;
pub mod point;
pub mod query;
pub mod reorder;
pub mod retention;
pub mod series;
pub mod shard;
pub mod sharded;
pub mod smooth;
pub mod tags;
pub mod wal;

pub use block::{Block, BlockSummary};
pub use chain::{
    load_chain, load_chain_with_report, ChainCheckpointReport, ChainLoadReport, ChainStep,
    CheckpointChain,
};
pub use db::{SeriesStats, Tsdb, TsdbConfig};
pub use error::TsdbError;
pub use gorilla::{CompressedChunk, GorillaDecoder, GorillaEncoder};
pub use ingest::{
    ingest_reader, pipeline_ingest, ApplyHook, IngestConfig, IngestReport, ParseFailure,
    StreamIngestor, StreamProgress, WriteFailure,
};
pub use line_protocol::{ingest, parse, ParsedPoint};
pub use obs::{
    Counter, Gauge, Histogram, HistogramSnapshot, IngestMetrics, LogLevel, MetricSample,
    MetricValue, Registry as ObsRegistry, WalMetrics, SELF_TAG,
};
pub use persist::{
    checkpoint_sharded, load as load_snapshot, load_sharded as load_sharded_snapshot,
    recover_sharded, save as save_snapshot, save_sharded as save_sharded_snapshot, SnapshotError,
};
pub use point::DataPoint;
pub use query::{Aggregator, FillPolicy, RangeQuery, SeriesReader, SeriesWriter};
pub use reorder::{ReorderBuffer, ReorderStats};
pub use retention::{
    rollup_key, CompactionReport, Compactor, RetentionPolicy, RetentionStore, RollupLevel,
    Schedule, ROLLUP_TAG,
};
pub use series::{RangeSummary, SeriesStore};
pub use shard::{Shard, ShardOccupancy};
pub use sharded::{ShardedConfig, ShardedDb};
pub use smooth::{
    smooth_query, smooth_query_selector, smooth_query_with_fill, SmoothQueryError, SmoothedFrame,
};
pub use tags::{Selector, SeriesKey};
pub use wal::{FsyncPolicy, Wal, WalConfig, WalRecord, WalReplayReport, WalSegment, WalStats};
