//! Series identity: metric name plus sorted tag pairs, and tag matching.

use std::fmt;

/// Canonical identity of one series: a metric name and a set of
/// `key=value` tags, held sorted by key so that equal tag sets produce
/// equal keys regardless of insertion order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesKey {
    metric: String,
    /// Sorted, deduplicated `(key, value)` pairs.
    tags: Vec<(String, String)>,
}

impl SeriesKey {
    /// Creates a key with no tags.
    pub fn metric(name: impl Into<String>) -> Self {
        Self {
            metric: name.into(),
            tags: Vec::new(),
        }
    }

    /// Adds (or replaces) a tag, keeping the tag list sorted.
    pub fn with_tag(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        let key = key.into();
        let value = value.into();
        match self.tags.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(i) => self.tags[i].1 = value,
            Err(i) => self.tags.insert(i, (key, value)),
        }
        self
    }

    /// The metric name.
    pub fn metric_name(&self) -> &str {
        &self.metric
    }

    /// The sorted tag pairs.
    pub fn tags(&self) -> &[(String, String)] {
        &self.tags
    }

    /// The value of tag `key`, if present.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.tags[i].1.as_str())
    }
}

impl fmt::Display for SeriesKey {
    /// Renders as `metric{k=v,k2=v2}` (Prometheus-style).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.metric)?;
        if !self.tags.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.tags.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}={v}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// A predicate over series keys used by multi-series queries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Selector {
    metric: Option<String>,
    /// Tags that must be present with exactly this value.
    equals: Vec<(String, String)>,
    /// Tag keys that must be present with any value.
    has: Vec<String>,
    /// Tag keys that must be absent.
    absent: Vec<String>,
}

impl Selector {
    /// Matches every series.
    pub fn any() -> Self {
        Self::default()
    }

    /// Restricts to series of the given metric name.
    pub fn metric(name: impl Into<String>) -> Self {
        Self {
            metric: Some(name.into()),
            ..Self::default()
        }
    }

    /// Requires tag `key` to equal `value`.
    pub fn tag_eq(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.equals.push((key.into(), value.into()));
        self
    }

    /// Requires tag `key` to be present with any value.
    pub fn tag_present(mut self, key: impl Into<String>) -> Self {
        self.has.push(key.into());
        self
    }

    /// Requires tag `key` to be absent. Used to hide infrastructure
    /// series (e.g. [`crate::retention::ROLLUP_TAG`]) from selectors
    /// that don't ask for them.
    pub fn tag_absent(mut self, key: impl Into<String>) -> Self {
        self.absent.push(key.into());
        self
    }

    /// True when any clause (equality, presence, or absence) mentions
    /// tag `key` — i.e. the selector already takes a position on it.
    pub fn references_tag(&self, key: &str) -> bool {
        self.equals.iter().any(|(k, _)| k == key)
            || self.has.iter().any(|k| k == key)
            || self.absent.iter().any(|k| k == key)
    }

    /// True when `key` satisfies every clause.
    pub fn matches(&self, key: &SeriesKey) -> bool {
        if let Some(m) = &self.metric {
            if key.metric_name() != m {
                return false;
            }
        }
        self.equals
            .iter()
            .all(|(k, v)| key.tag(k) == Some(v.as_str()))
            && self.has.iter().all(|k| key.tag(k).is_some())
            && self.absent.iter().all(|k| key.tag(k).is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_order_is_canonical() {
        let a = SeriesKey::metric("cpu").with_tag("host", "a").with_tag("dc", "west");
        let b = SeriesKey::metric("cpu").with_tag("dc", "west").with_tag("host", "a");
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "cpu{dc=west,host=a}");
    }

    #[test]
    fn with_tag_replaces_existing() {
        let k = SeriesKey::metric("cpu").with_tag("host", "a").with_tag("host", "b");
        assert_eq!(k.tag("host"), Some("b"));
        assert_eq!(k.tags().len(), 1);
    }

    #[test]
    fn display_without_tags_is_bare_metric() {
        assert_eq!(SeriesKey::metric("load").to_string(), "load");
    }

    #[test]
    fn tag_lookup() {
        let k = SeriesKey::metric("cpu").with_tag("host", "a");
        assert_eq!(k.tag("host"), Some("a"));
        assert_eq!(k.tag("dc"), None);
    }

    #[test]
    fn selector_matching() {
        let k = SeriesKey::metric("cpu").with_tag("host", "a").with_tag("dc", "west");
        assert!(Selector::any().matches(&k));
        assert!(Selector::metric("cpu").matches(&k));
        assert!(!Selector::metric("mem").matches(&k));
        assert!(Selector::metric("cpu").tag_eq("host", "a").matches(&k));
        assert!(!Selector::metric("cpu").tag_eq("host", "b").matches(&k));
        assert!(Selector::any().tag_present("dc").matches(&k));
        assert!(!Selector::any().tag_present("rack").matches(&k));
        assert!(Selector::any()
            .tag_eq("host", "a")
            .tag_present("dc")
            .matches(&k));
    }

    #[test]
    fn absence_clause() {
        let raw = SeriesKey::metric("cpu").with_tag("host", "a");
        let rollup = raw.clone().with_tag("__rollup__", "60");
        let sel = Selector::metric("cpu").tag_absent("__rollup__");
        assert!(sel.matches(&raw));
        assert!(!sel.matches(&rollup));
    }

    #[test]
    fn references_tag_sees_every_clause_kind() {
        assert!(Selector::any().tag_eq("r", "60").references_tag("r"));
        assert!(Selector::any().tag_present("r").references_tag("r"));
        assert!(Selector::any().tag_absent("r").references_tag("r"));
        assert!(!Selector::metric("r").tag_eq("host", "a").references_tag("r"));
    }
}
