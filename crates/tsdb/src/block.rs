//! Sealed, immutable storage blocks.
//!
//! A [`Block`] is a compressed run of consecutive points of one series plus
//! the summary metadata (time span, count, min/max/sum) that lets queries
//! skip non-overlapping blocks without decompressing them and lets bucketed
//! aggregations over whole blocks answer from the summary alone.

use crate::error::TsdbError;
use crate::gorilla::{CompressedChunk, GorillaEncoder};
use crate::point::DataPoint;

/// Summary statistics of a sealed block, computed at seal time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockSummary {
    /// Timestamp of the first point.
    pub start: i64,
    /// Timestamp of the last point (inclusive).
    pub end: i64,
    /// Number of points.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Sum of values (for O(1) whole-block means).
    pub sum: f64,
}

/// An immutable compressed run of points with skip-scan metadata.
#[derive(Debug, Clone)]
pub struct Block {
    summary: BlockSummary,
    chunk: CompressedChunk,
}

impl Block {
    /// Seals `points` (strictly increasing timestamps, all finite values)
    /// into a compressed block.
    ///
    /// # Errors
    ///
    /// Returns [`TsdbError::InvalidParameter`] on empty input; ordering and
    /// finiteness are the ingestion path's invariants and are debug-asserted.
    pub fn seal(points: &[DataPoint]) -> Result<Self, TsdbError> {
        let (first, last) = match (points.first(), points.last()) {
            (Some(f), Some(l)) => (f, l),
            _ => {
                return Err(TsdbError::InvalidParameter {
                    name: "points",
                    message: "cannot seal an empty block",
                })
            }
        };
        let mut enc = GorillaEncoder::new();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut prev_ts = None;
        for &p in points {
            debug_assert!(p.value.is_finite(), "ingestion must reject non-finite values");
            if let Some(prev) = prev_ts {
                debug_assert!(p.timestamp > prev, "ingestion must reject out-of-order points");
            }
            prev_ts = Some(p.timestamp);
            min = min.min(p.value);
            max = max.max(p.value);
            sum += p.value;
            enc.append(p);
        }
        Ok(Self {
            summary: BlockSummary {
                start: first.timestamp,
                end: last.timestamp,
                count: points.len(),
                min,
                max,
                sum,
            },
            chunk: enc.finish(),
        })
    }

    /// Rebuilds a block from its compressed payload, recomputing the
    /// summary by decoding (which also validates the payload).
    pub fn from_chunk(chunk: CompressedChunk) -> Result<Self, TsdbError> {
        let points = chunk.decode()?;
        let block = Self::seal(&points)?;
        // Keep the original payload rather than the re-encoded one; they
        // are byte-identical for a valid chunk, and this avoids surprises
        // if future encoder versions change bit layouts.
        Ok(Self {
            summary: block.summary,
            chunk,
        })
    }

    /// The block's summary metadata.
    pub fn summary(&self) -> &BlockSummary {
        &self.summary
    }

    /// The compressed payload (used by snapshot persistence).
    pub fn chunk(&self) -> &CompressedChunk {
        &self.chunk
    }

    /// Number of points in the block.
    pub fn len(&self) -> usize {
        self.summary.count
    }

    /// Always false: empty blocks cannot be sealed.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Compressed payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.chunk.size_bytes()
    }

    /// Mean compressed cost per point, in bits.
    pub fn bits_per_point(&self) -> f64 {
        self.chunk.bits_per_point()
    }

    /// True when the block's time span intersects `[start, end)`.
    pub fn overlaps(&self, start: i64, end: i64) -> bool {
        self.summary.start < end && self.summary.end >= start
    }

    /// Decompresses the whole block.
    pub fn decode(&self) -> Result<Vec<DataPoint>, TsdbError> {
        self.chunk.decode()
    }

    /// Decompresses only the points with timestamps in `[start, end)`.
    pub fn decode_range(&self, start: i64, end: i64) -> Result<Vec<DataPoint>, TsdbError> {
        let mut out = Vec::new();
        for p in self.chunk.iter() {
            let p = p?;
            if p.timestamp >= end {
                break; // points are time-ordered; nothing later can match
            }
            if p.timestamp >= start {
                out.push(p);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: i64) -> Vec<DataPoint> {
        (0..n).map(|i| DataPoint::new(i * 10, (i as f64) * 0.5)).collect()
    }

    #[test]
    fn seal_empty_errors() {
        assert!(matches!(
            Block::seal(&[]),
            Err(TsdbError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn summary_matches_input() {
        let pts = sample(100);
        let b = Block::seal(&pts).unwrap();
        let s = b.summary();
        assert_eq!(s.start, 0);
        assert_eq!(s.end, 990);
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 49.5);
        let expected_sum: f64 = (0..100).map(|i| i as f64 * 0.5).sum();
        assert!((s.sum - expected_sum).abs() < 1e-9);
        assert_eq!(b.len(), 100);
        assert!(!b.is_empty());
    }

    #[test]
    fn decode_round_trips() {
        let pts = sample(257);
        let b = Block::seal(&pts).unwrap();
        assert_eq!(b.decode().unwrap(), pts);
    }

    #[test]
    fn overlaps_is_half_open() {
        let b = Block::seal(&sample(10)).unwrap(); // spans [0, 90]
        assert!(b.overlaps(0, 1));
        assert!(b.overlaps(90, 91));
        assert!(b.overlaps(-5, 5));
        assert!(b.overlaps(50, 60));
        assert!(!b.overlaps(91, 200), "starts after the last point");
        assert!(!b.overlaps(-10, 0), "end bound is exclusive");
    }

    #[test]
    fn decode_range_filters_half_open() {
        let pts = sample(20); // ts 0,10,...,190
        let b = Block::seal(&pts).unwrap();
        let got = b.decode_range(30, 70).unwrap();
        let ts: Vec<_> = got.iter().map(|p| p.timestamp).collect();
        assert_eq!(ts, vec![30, 40, 50, 60]);
        assert!(b.decode_range(200, 300).unwrap().is_empty());
        assert_eq!(b.decode_range(0, i64::MAX).unwrap(), pts);
    }

    #[test]
    fn single_point_block() {
        let b = Block::seal(&[DataPoint::new(7, 3.5)]).unwrap();
        assert_eq!(b.summary().start, 7);
        assert_eq!(b.summary().end, 7);
        assert_eq!(b.summary().min, 3.5);
        assert_eq!(b.summary().max, 3.5);
        assert_eq!(b.decode().unwrap(), vec![DataPoint::new(7, 3.5)]);
    }

    #[test]
    fn compression_is_effective_on_telemetry() {
        let pts = sample(4096);
        let b = Block::seal(&pts).unwrap();
        let raw_bytes = 16 * pts.len();
        assert!(
            b.size_bytes() < raw_bytes / 2,
            "compressed {} vs raw {}",
            b.size_bytes(),
            raw_bytes
        );
    }
}
