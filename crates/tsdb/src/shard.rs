//! One storage partition: a locked series map shared by both engine
//! front-ends.
//!
//! [`Shard`] is the unit of concurrency the engine is built from. The
//! single-shard [`crate::db::Tsdb`] facade wraps exactly one; the
//! [`crate::sharded::ShardedDb`] front-end routes series across many by
//! tag-aware hash. Keeping every storage operation here guarantees the two
//! front-ends produce byte-identical results: they run the same code on
//! the same per-series stores and differ only in routing.
//!
//! Locking model: an outer `RwLock` guards the series map (taken briefly —
//! series creation is rare), and each [`SeriesStore`] sits behind its own
//! `RwLock`, so ingest into one series never blocks queries of another.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::block::Block;
use crate::db::{SeriesStats, TsdbConfig};
use crate::error::TsdbError;
use crate::point::DataPoint;
use crate::query::{RangeQuery, SeriesReader, SeriesWriter};
use crate::series::{RangeSummary, SeriesStore};
use crate::tags::{Selector, SeriesKey};

/// Aggregate occupancy of one shard — the per-shard counters live ops
/// endpoints report. Produced by [`Shard::occupancy`] /
/// [`crate::sharded::ShardedDb::shard_occupancy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardOccupancy {
    /// Distinct series resident in the shard.
    pub series: usize,
    /// Total stored points across those series.
    pub points: usize,
    /// Sealed block count across those series.
    pub blocks: usize,
    /// Compressed bytes across sealed blocks.
    pub compressed_bytes: usize,
    /// Newest timestamp across the shard's series (`None` when the
    /// shard is empty) — the shard's ingest watermark.
    pub watermark: Option<i64>,
}

/// One partition of the store: a concurrent map from series key to its
/// per-series store.
#[derive(Debug)]
pub struct Shard {
    config: TsdbConfig,
    series: RwLock<BTreeMap<SeriesKey, Arc<RwLock<SeriesStore>>>>,
}

impl Shard {
    /// Creates an empty shard sealing blocks per `config`.
    pub fn new(config: TsdbConfig) -> Self {
        Self {
            config,
            series: RwLock::new(BTreeMap::new()),
        }
    }

    /// The shard's engine configuration.
    pub fn config(&self) -> TsdbConfig {
        self.config
    }

    /// Number of distinct series in this shard.
    pub fn series_count(&self) -> usize {
        self.series.read().len()
    }

    /// Writes one point, creating the series on first touch.
    pub fn write(&self, key: &SeriesKey, point: DataPoint) -> Result<(), TsdbError> {
        let store = self.store_or_create(key);
        let result = store.write().append(point);
        result
    }

    /// Writes a batch of points to one series (points must be in order).
    pub fn write_batch(&self, key: &SeriesKey, points: &[DataPoint]) -> Result<(), TsdbError> {
        let store = self.store_or_create(key);
        let mut guard = store.write();
        for &p in points {
            guard.append(p)?;
        }
        Ok(())
    }

    fn store_or_create(&self, key: &SeriesKey) -> Arc<RwLock<SeriesStore>> {
        if let Some(s) = self.series.read().get(key) {
            return Arc::clone(s);
        }
        let block_capacity = self.config.block_capacity;
        let mut map = self.series.write();
        Arc::clone(
            map.entry(key.clone())
                .or_insert_with(|| Arc::new(RwLock::new(SeriesStore::new(block_capacity)))),
        )
    }

    fn store(&self, key: &SeriesKey) -> Result<Arc<RwLock<SeriesStore>>, TsdbError> {
        self.series
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| TsdbError::SeriesNotFound {
                key: key.to_string(),
            })
    }

    /// Whether this shard holds `key`.
    pub fn contains(&self, key: &SeriesKey) -> bool {
        self.series.read().contains_key(key)
    }

    /// Runs a query against one series.
    pub fn query(&self, key: &SeriesKey, query: RangeQuery) -> Result<Vec<DataPoint>, TsdbError> {
        query.validate()?;
        let store = self.store(key)?;
        let raw = store.read().scan(query.start, query.end)?;
        query.shape(&raw)
    }

    /// Runs a query against every series in this shard matching
    /// `selector`, returning `(key, shaped points)` pairs in key order.
    pub fn query_selector(
        &self,
        selector: &Selector,
        query: RangeQuery,
    ) -> Result<Vec<(SeriesKey, Vec<DataPoint>)>, TsdbError> {
        query.validate()?;
        let matching: Vec<(SeriesKey, Arc<RwLock<SeriesStore>>)> = self
            .series
            .read()
            .iter()
            .filter(|(k, _)| selector.matches(k))
            .map(|(k, s)| (k.clone(), Arc::clone(s)))
            .collect();
        let mut out = Vec::with_capacity(matching.len());
        for (key, store) in matching {
            let raw = store.read().scan(query.start, query.end)?;
            out.push((key, query.shape(&raw)?));
        }
        Ok(out)
    }

    /// Lists keys of series matching `selector`, in key order.
    pub fn list_series(&self, selector: &Selector) -> Vec<SeriesKey> {
        self.series
            .read()
            .keys()
            .filter(|k| selector.matches(k))
            .cloned()
            .collect()
    }

    /// Seals every series' memtable (e.g. before measuring compression).
    pub fn flush(&self) -> Result<(), TsdbError> {
        let stores: Vec<_> = self.series.read().values().cloned().collect();
        for store in stores {
            store.write().seal_active()?;
        }
        Ok(())
    }

    /// Evicts sealed blocks older than `cutoff` from every series and
    /// drops series left completely empty. Returns total evicted points.
    pub fn evict_before(&self, cutoff: i64) -> usize {
        let mut evicted = 0;
        let mut map = self.series.write();
        map.retain(|_, store| {
            let mut guard = store.write();
            evicted += guard.evict_before(cutoff);
            !guard.is_empty()
        });
        evicted
    }

    /// Summary statistics of one series over `[start, end)`; see
    /// [`crate::db::Tsdb::summarize`].
    pub fn summarize(
        &self,
        key: &SeriesKey,
        start: i64,
        end: i64,
    ) -> Result<Option<RangeSummary>, TsdbError> {
        let store = self.store(key)?;
        let result = store.read().summarize(start, end);
        result
    }

    /// Returns clones of one series' sealed blocks (cheap: payloads are
    /// reference-counted).
    pub fn export_blocks(&self, key: &SeriesKey) -> Result<Vec<Block>, TsdbError> {
        let store = self.store(key)?;
        let guard = store.read();
        Ok(guard.blocks().to_vec())
    }

    /// Imports pre-sealed blocks into a series (snapshot restore),
    /// creating it if needed. Blocks must be strictly after existing data.
    pub fn import_blocks(&self, key: &SeriesKey, blocks: Vec<Block>) -> Result<(), TsdbError> {
        let store = self.store_or_create(key);
        let result = store.write().import_blocks(blocks);
        result
    }

    /// Evicts sealed blocks older than `cutoff` from one series, dropping
    /// it if left empty. Returns evicted points; missing series evict
    /// nothing.
    pub fn evict_series_before(&self, key: &SeriesKey, cutoff: i64) -> usize {
        let store = match self.store(key) {
            Ok(s) => s,
            Err(_) => return 0,
        };
        let (evicted, empty) = {
            let mut guard = store.write();
            let evicted = guard.evict_before(cutoff);
            (evicted, guard.is_empty())
        };
        if empty {
            self.series.write().remove(key);
        }
        evicted
    }

    /// Aggregate occupancy of this shard: series/point/block totals,
    /// compressed footprint, and the shard's ingest watermark (the
    /// newest timestamp across its series, `None` when empty). One pass
    /// under read locks — the per-shard counters live ops endpoints
    /// aggregate (`STATS`/`HEALTH` in the server layer).
    pub fn occupancy(&self) -> ShardOccupancy {
        let mut occ = ShardOccupancy::default();
        for store in self.series.read().values() {
            let guard = store.read();
            occ.series += 1;
            occ.points += guard.len();
            occ.blocks += guard.block_count();
            occ.compressed_bytes += guard.compressed_bytes();
            occ.watermark = match (occ.watermark, guard.last_timestamp()) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        occ
    }

    /// Per-series occupancy statistics of this shard, in key order.
    pub fn stats(&self) -> Vec<SeriesStats> {
        self.series
            .read()
            .iter()
            .map(|(k, s)| {
                let guard = s.read();
                SeriesStats {
                    key: k.clone(),
                    points: guard.len(),
                    blocks: guard.block_count(),
                    compressed_bytes: guard.compressed_bytes(),
                }
            })
            .collect()
    }
}

impl SeriesReader for Shard {
    fn read_series(&self, key: &SeriesKey, query: RangeQuery) -> Result<Vec<DataPoint>, TsdbError> {
        self.query(key, query)
    }

    fn matching_series(&self, selector: &Selector) -> Vec<SeriesKey> {
        self.list_series(selector)
    }
}

impl SeriesWriter for Shard {
    fn write_point(&self, key: &SeriesKey, point: DataPoint) -> Result<(), TsdbError> {
        self.write(key, point)
    }
}
