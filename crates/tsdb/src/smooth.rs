//! The query → ASAP bridge: smooth straight out of storage.
//!
//! This is the end-to-end pipeline the paper's §2 describes — a dashboard
//! backend queries its time-series database for a visualization interval,
//! and ASAP picks the smoothing window before rendering. The bridge:
//!
//! 1. runs a [`RangeQuery`] against a stored series;
//! 2. aligns the result onto an equi-spaced grid (ASAP's SMA model
//!    requires it) with a gap-fill policy;
//! 3. hands the values to [`asap_core::Asap::smooth`];
//! 4. re-attaches timestamps to the smoothed series so the caller can plot
//!    time on the x-axis.

use asap_core::{Asap, SmoothingResult};
use asap_timeseries::TimeSeriesError;

use crate::error::TsdbError;
use crate::point::DataPoint;
use crate::query::{FillPolicy, RangeQuery, SeriesReader};
use crate::tags::{Selector, SeriesKey};

/// A smoothed visualization frame produced from storage.
#[derive(Debug, Clone, PartialEq)]
pub struct SmoothedFrame {
    /// The ASAP outcome (window choice, metrics, smoothed values).
    pub result: SmoothingResult,
    /// Timestamp of each input grid point handed to ASAP.
    pub grid_timestamps: Vec<i64>,
    /// `(timestamp, value)` pairs of the smoothed series, timestamps taken
    /// from the leading edge of each SMA window on the input grid.
    pub smoothed_points: Vec<DataPoint>,
}

/// Error of the storage→ASAP pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SmoothQueryError {
    /// The storage side failed.
    Storage(TsdbError),
    /// The smoothing side failed.
    Smoothing(TimeSeriesError),
}

impl std::fmt::Display for SmoothQueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmoothQueryError::Storage(e) => write!(f, "storage: {e}"),
            SmoothQueryError::Smoothing(e) => write!(f, "smoothing: {e}"),
        }
    }
}

impl std::error::Error for SmoothQueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SmoothQueryError::Storage(e) => Some(e),
            SmoothQueryError::Smoothing(e) => Some(e),
        }
    }
}

impl From<TsdbError> for SmoothQueryError {
    fn from(e: TsdbError) -> Self {
        SmoothQueryError::Storage(e)
    }
}

impl From<TimeSeriesError> for SmoothQueryError {
    fn from(e: TimeSeriesError) -> Self {
        SmoothQueryError::Smoothing(e)
    }
}

/// Queries `[start, end)` of `key` at grid step `bucket` and smooths the
/// result with `asap`.
///
/// Gaps in the stored data are linearly interpolated ([`FillPolicy::Linear`])
/// so the grid handed to ASAP is complete; use [`smooth_query_with_fill`] to
/// choose a different policy.
pub fn smooth_query<D: SeriesReader + ?Sized>(
    db: &D,
    key: &SeriesKey,
    asap: &Asap,
    start: i64,
    end: i64,
    bucket: i64,
) -> Result<SmoothedFrame, SmoothQueryError> {
    smooth_query_with_fill(db, key, asap, start, end, bucket, FillPolicy::Linear)
}

/// [`smooth_query`] with an explicit gap-fill policy.
///
/// [`FillPolicy::Skip`] is rejected: it produces a non-equi-spaced grid,
/// which would silently violate ASAP's SMA model.
pub fn smooth_query_with_fill<D: SeriesReader + ?Sized>(
    db: &D,
    key: &SeriesKey,
    asap: &Asap,
    start: i64,
    end: i64,
    bucket: i64,
    fill: FillPolicy,
) -> Result<SmoothedFrame, SmoothQueryError> {
    if matches!(fill, FillPolicy::Skip) {
        return Err(SmoothQueryError::Storage(TsdbError::InvalidParameter {
            name: "fill",
            message: "Skip produces an irregular grid; ASAP requires equi-spaced input",
        }));
    }
    let grid = db.read_series(key, RangeQuery::bucketed(start, end, bucket).fill(fill))?;
    if grid.is_empty() {
        return Err(SmoothQueryError::Smoothing(TimeSeriesError::Empty));
    }
    let values: Vec<f64> = grid.iter().map(|p| p.value).collect();
    let result = asap.smooth(&values)?;

    // Re-attach time: the smoothed series lives on the preaggregated grid
    // (pixel ratio × bucket per step), each output point anchored at the
    // leading edge of its SMA window.
    let step = bucket * result.pixel_ratio as i64;
    let smoothed_points = result
        .smoothed
        .iter()
        .enumerate()
        .map(|(i, &v)| DataPoint::new(start + i as i64 * step, v))
        .collect();
    Ok(SmoothedFrame {
        grid_timestamps: grid.iter().map(|p| p.timestamp).collect(),
        smoothed_points,
        result,
    })
}

/// Smooths every series matching `selector` over `[start, end)` at grid
/// step `bucket`, serially, returning `(key, frame)` pairs in key order.
///
/// Fails on the first failing key in key order — e.g. a matching series
/// with no data in the interval reports
/// [`TimeSeriesError::Empty`]. The shard-parallel
/// [`crate::sharded::ShardedDb::smooth_query_selector`] is defined to
/// produce exactly this function's output (frames and errors alike).
pub fn smooth_query_selector<D: SeriesReader + ?Sized>(
    db: &D,
    selector: &Selector,
    asap: &Asap,
    start: i64,
    end: i64,
    bucket: i64,
) -> Result<Vec<(SeriesKey, SmoothedFrame)>, SmoothQueryError> {
    db.matching_series(selector)
        .into_iter()
        .map(|key| smooth_query(db, &key, asap, start, end, bucket).map(|f| (key, f)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Tsdb;

    /// A noisy periodic series long enough for ASAP to smooth confidently.
    fn seed_db(n: i64, step: i64) -> (Tsdb, SeriesKey) {
        let db = Tsdb::new();
        let key = SeriesKey::metric("cpu").with_tag("host", "a");
        for i in 0..n {
            let v = (std::f64::consts::TAU * i as f64 / 48.0).sin()
                + 0.4 * if i % 2 == 0 { 1.0 } else { -1.0 };
            db.write(&key, DataPoint::new(i * step, v)).unwrap();
        }
        (db, key)
    }

    #[test]
    fn end_to_end_pipeline_smooths() {
        let (db, key) = seed_db(4000, 10);
        let asap = Asap::builder().resolution(400).build();
        let frame = smooth_query(&db, &key, &asap, 0, 40_000, 10).unwrap();
        assert!(frame.result.window > 1, "noisy periodic data gets smoothed");
        assert_eq!(frame.grid_timestamps.len(), 4000);
        assert_eq!(frame.smoothed_points.len(), frame.result.smoothed.len());
        // Timestamps advance by bucket × pixel ratio.
        let step = 10 * frame.result.pixel_ratio as i64;
        assert_eq!(frame.smoothed_points[1].timestamp - frame.smoothed_points[0].timestamp, step);
        // Smoothing reduced roughness versus the aggregated input.
        let raw_rough = asap_timeseries::roughness(&frame.result.aggregated).unwrap();
        assert!(frame.result.roughness <= raw_rough);
    }

    #[test]
    fn coarser_buckets_shrink_the_grid() {
        let (db, key) = seed_db(4000, 10);
        let asap = Asap::builder().resolution(400).build();
        let frame = smooth_query(&db, &key, &asap, 0, 40_000, 100).unwrap();
        assert_eq!(frame.grid_timestamps.len(), 400);
    }

    #[test]
    fn gaps_are_filled_before_smoothing() {
        let db = Tsdb::new();
        let key = SeriesKey::metric("cpu");
        // Write data with a hole in the middle third.
        for i in (0..1000).chain(2000..3000) {
            let v = (i as f64 / 25.0).sin() + 0.3 * if i % 2 == 0 { 1.0 } else { -1.0 };
            db.write(&key, DataPoint::new(i, v)).unwrap();
        }
        let asap = Asap::builder().resolution(300).build();
        let frame = smooth_query(&db, &key, &asap, 0, 3000, 10).unwrap();
        assert_eq!(frame.grid_timestamps.len(), 300, "hole interpolated, grid total");
    }

    #[test]
    fn skip_fill_rejected() {
        let (db, key) = seed_db(100, 1);
        let asap = Asap::builder().resolution(50).build();
        let err =
            smooth_query_with_fill(&db, &key, &asap, 0, 100, 1, FillPolicy::Skip).unwrap_err();
        assert!(matches!(
            err,
            SmoothQueryError::Storage(TsdbError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn empty_range_reports_smoothing_empty() {
        let (db, key) = seed_db(100, 1);
        let asap = Asap::builder().resolution(50).build();
        let err = smooth_query(&db, &key, &asap, 5_000, 6_000, 10).unwrap_err();
        assert_eq!(err, SmoothQueryError::Smoothing(TimeSeriesError::Empty));
    }

    #[test]
    fn selector_smoothing_returns_key_ordered_frames() {
        let db = Tsdb::new();
        for host in ["b", "a", "c"] {
            let key = SeriesKey::metric("cpu").with_tag("host", host);
            for i in 0..2000i64 {
                let v = (std::f64::consts::TAU * i as f64 / 48.0).sin()
                    + 0.4 * if i % 2 == 0 { 1.0 } else { -1.0 };
                db.write(&key, DataPoint::new(i * 10, v)).unwrap();
            }
        }
        let asap = Asap::builder().resolution(200).build();
        let frames =
            smooth_query_selector(&db, &Selector::metric("cpu"), &asap, 0, 20_000, 10).unwrap();
        let hosts: Vec<_> = frames.iter().map(|(k, _)| k.tag("host").unwrap()).collect();
        assert_eq!(hosts, vec!["a", "b", "c"]);
        // Each frame equals the single-series entry point's output.
        for (key, frame) in &frames {
            let single = smooth_query(&db, key, &asap, 0, 20_000, 10).unwrap();
            assert_eq!(*frame, single);
        }
    }

    #[test]
    fn missing_series_reports_storage_error() {
        let db = Tsdb::new();
        let asap = Asap::builder().resolution(50).build();
        let err = smooth_query(&db, &SeriesKey::metric("ghost"), &asap, 0, 100, 10).unwrap_err();
        assert!(matches!(
            err,
            SmoothQueryError::Storage(TsdbError::SeriesNotFound { .. })
        ));
    }
}
