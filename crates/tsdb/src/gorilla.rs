//! Gorilla-style time-series compression.
//!
//! Implements the streaming compression scheme of Facebook's Gorilla TSDB
//! (Pelkonen et al., VLDB 2015 — reference \[51\] of the ASAP paper):
//! timestamps are stored as **delta-of-delta** with a variable-width tag
//! ladder, values as the **XOR** against the previous value with reuse of
//! the previous meaningful-bit window. Telemetry streams — near-constant
//! sampling intervals, slowly varying values — compress to a few bits per
//! point, which is what lets the ingestion tier hold the raw streams that
//! ASAP later smooths.
//!
//! Deviations from the paper, chosen for losslessness on arbitrary input:
//!
//! * the final delta-of-delta bucket (tag `1111`) stores a full 64-bit
//!   value instead of 32, so any `i64` timestamp sequence round-trips;
//! * blocks are not bounded to a two-hour wall-clock window — the caller
//!   (the memtable) decides when to seal.

use crate::bits::{BitReader, BitWriter};
use crate::error::TsdbError;
use crate::point::DataPoint;

use bytes::Bytes;

/// Sentinel "previous leading zeros" that forces the first XOR record to
/// open a new meaningful-bit window (no previous window can be reused).
const NO_WINDOW: u8 = u8::MAX;

/// Streaming Gorilla encoder for one `(timestamp, value)` sequence.
///
/// Points must be appended in strictly increasing timestamp order; the
/// caller ([`crate::memtable::MemTable`]) enforces that invariant and this
/// type debug-asserts it.
#[derive(Debug)]
pub struct GorillaEncoder {
    bits: BitWriter,
    count: usize,
    first_ts: i64,
    prev_ts: i64,
    prev_delta: i64,
    prev_value: u64,
    prev_leading: u8,
    prev_trailing: u8,
}

impl GorillaEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self {
            bits: BitWriter::with_capacity(256),
            count: 0,
            first_ts: 0,
            prev_ts: 0,
            prev_delta: 0,
            prev_value: 0,
            prev_leading: NO_WINDOW,
            prev_trailing: 0,
        }
    }

    /// Number of points appended so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no points have been appended.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Compressed size so far, in bits.
    pub fn size_bits(&self) -> usize {
        self.bits.len_bits()
    }

    /// Appends one point.
    pub fn append(&mut self, point: DataPoint) {
        debug_assert!(
            self.count == 0 || point.timestamp > self.prev_ts,
            "encoder requires strictly increasing timestamps"
        );
        if self.count == 0 {
            // Header: raw first timestamp and raw first value.
            self.first_ts = point.timestamp;
            self.bits.write_bits(point.timestamp as u64, 64);
            self.bits.write_bits(point.value.to_bits(), 64);
            self.prev_ts = point.timestamp;
            self.prev_delta = 0;
            self.prev_value = point.value.to_bits();
        } else {
            self.append_timestamp(point.timestamp);
            self.append_value(point.value);
        }
        self.count += 1;
    }

    fn append_timestamp(&mut self, ts: i64) {
        let delta = ts - self.prev_ts;
        let dod = delta - self.prev_delta;
        match dod {
            0 => self.bits.write_bit(false),
            -63..=64 => {
                self.bits.write_bits(0b10, 2);
                self.bits.write_bits((dod + 63) as u64, 7);
            }
            -255..=256 => {
                self.bits.write_bits(0b110, 3);
                self.bits.write_bits((dod + 255) as u64, 9);
            }
            -2047..=2048 => {
                self.bits.write_bits(0b1110, 4);
                self.bits.write_bits((dod + 2047) as u64, 12);
            }
            _ => {
                self.bits.write_bits(0b1111, 4);
                self.bits.write_bits(dod as u64, 64);
            }
        }
        self.prev_ts = ts;
        self.prev_delta = delta;
    }

    fn append_value(&mut self, value: f64) {
        let bits = value.to_bits();
        let xor = bits ^ self.prev_value;
        if xor == 0 {
            self.bits.write_bit(false);
        } else {
            self.bits.write_bit(true);
            // Cap leading zeros at 31 so the count fits 5 bits.
            let leading = (xor.leading_zeros() as u8).min(31);
            let trailing = xor.trailing_zeros() as u8;
            if self.prev_leading != NO_WINDOW
                && leading >= self.prev_leading
                && trailing >= self.prev_trailing
            {
                // Reuse the previous window.
                self.bits.write_bit(false);
                let width = 64 - self.prev_leading - self.prev_trailing;
                self.bits
                    .write_bits(xor >> self.prev_trailing, width);
            } else {
                // New window: 5 bits of leading count, 6 bits of length.
                self.bits.write_bit(true);
                let width = 64 - leading - trailing;
                debug_assert!((1..=64).contains(&width));
                self.bits.write_bits(u64::from(leading), 5);
                // Store width-1 so 64 fits in 6 bits.
                self.bits.write_bits(u64::from(width - 1), 6);
                self.bits.write_bits(xor >> trailing, width);
                self.prev_leading = leading;
                self.prev_trailing = trailing;
            }
        }
        self.prev_value = bits;
    }

    /// Seals the stream, returning the compressed payload.
    pub fn finish(self) -> CompressedChunk {
        let count = self.count;
        let (data, len_bits) = self.bits.finish();
        CompressedChunk {
            data,
            len_bits,
            count,
        }
    }
}

impl Default for GorillaEncoder {
    fn default() -> Self {
        Self::new()
    }
}

/// An immutable compressed payload plus the metadata needed to decode it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedChunk {
    /// Packed bit stream.
    pub data: Bytes,
    /// Number of valid bits in `data`.
    pub len_bits: usize,
    /// Number of points encoded.
    pub count: usize,
}

impl CompressedChunk {
    /// Compressed size in bytes (including final-byte padding).
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Mean compressed cost per point in bits, or 0 for an empty chunk.
    pub fn bits_per_point(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.len_bits as f64 / self.count as f64
        }
    }

    /// Returns a decoding iterator over the chunk.
    pub fn iter(&self) -> GorillaDecoder<'_> {
        GorillaDecoder::new(self)
    }

    /// Decodes the whole chunk into a vector, validating every record.
    pub fn decode(&self) -> Result<Vec<DataPoint>, TsdbError> {
        let mut out = Vec::with_capacity(self.count);
        for p in self.iter() {
            out.push(p?);
        }
        Ok(out)
    }
}

/// Streaming decoder over a [`CompressedChunk`].
#[derive(Debug)]
pub struct GorillaDecoder<'a> {
    bits: BitReader<'a>,
    remaining: usize,
    started: bool,
    prev_ts: i64,
    prev_delta: i64,
    prev_value: u64,
    prev_leading: u8,
    prev_trailing: u8,
    poisoned: bool,
}

impl<'a> GorillaDecoder<'a> {
    fn new(chunk: &'a CompressedChunk) -> Self {
        Self {
            bits: BitReader::new(&chunk.data, chunk.len_bits),
            remaining: chunk.count,
            started: false,
            prev_ts: 0,
            prev_delta: 0,
            prev_value: 0,
            prev_leading: 0,
            prev_trailing: 0,
            poisoned: false,
        }
    }

    fn next_point(&mut self) -> Result<DataPoint, TsdbError> {
        if !self.started {
            self.started = true;
            let ts = self.bits.read_bits(64)? as i64;
            let value = f64::from_bits(self.bits.read_bits(64)?);
            self.prev_ts = ts;
            self.prev_delta = 0;
            self.prev_value = value.to_bits();
            return Ok(DataPoint::new(ts, value));
        }
        let ts = self.next_timestamp()?;
        let value = self.next_value()?;
        Ok(DataPoint::new(ts, value))
    }

    fn next_timestamp(&mut self) -> Result<i64, TsdbError> {
        let dod = if !self.bits.read_bit()? {
            0
        } else if !self.bits.read_bit()? {
            self.bits.read_bits(7)? as i64 - 63
        } else if !self.bits.read_bit()? {
            self.bits.read_bits(9)? as i64 - 255
        } else if !self.bits.read_bit()? {
            self.bits.read_bits(12)? as i64 - 2047
        } else {
            self.bits.read_bits(64)? as i64
        };
        self.prev_delta += dod;
        self.prev_ts += self.prev_delta;
        Ok(self.prev_ts)
    }

    fn next_value(&mut self) -> Result<f64, TsdbError> {
        if self.bits.read_bit()? {
            if self.bits.read_bit()? {
                // New meaningful-bit window.
                let leading = self.bits.read_bits(5)? as u8;
                let width = self.bits.read_bits(6)? as u8 + 1;
                if u32::from(leading) + u32::from(width) > 64 {
                    return Err(TsdbError::CorruptBlock {
                        reason: "XOR window exceeds 64 bits",
                    });
                }
                self.prev_leading = leading;
                self.prev_trailing = 64 - leading - width;
                let xor = self.bits.read_bits(width)? << self.prev_trailing;
                self.prev_value ^= xor;
            } else {
                // Reused window.
                let width = 64 - self.prev_leading - self.prev_trailing;
                let xor = self.bits.read_bits(width)? << self.prev_trailing;
                self.prev_value ^= xor;
            }
        }
        Ok(f64::from_bits(self.prev_value))
    }
}

impl Iterator for GorillaDecoder<'_> {
    type Item = Result<DataPoint, TsdbError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 || self.poisoned {
            return None;
        }
        self.remaining -= 1;
        let r = self.next_point();
        if r.is_err() {
            // Stop after the first corruption; later records are garbage.
            self.poisoned = true;
        }
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.poisoned {
            (0, Some(0))
        } else {
            (self.remaining, Some(self.remaining))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(points: &[DataPoint]) {
        let mut enc = GorillaEncoder::new();
        for &p in points {
            enc.append(p);
        }
        let chunk = enc.finish();
        assert_eq!(chunk.count, points.len());
        let decoded = chunk.decode().expect("decode");
        assert_eq!(decoded.len(), points.len());
        for (a, b) in decoded.iter().zip(points) {
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.value.to_bits(), b.value.to_bits(), "bit-exact values");
        }
    }

    #[test]
    fn empty_chunk_decodes_to_nothing() {
        let chunk = GorillaEncoder::new().finish();
        assert_eq!(chunk.count, 0);
        assert!(chunk.decode().unwrap().is_empty());
        assert_eq!(chunk.bits_per_point(), 0.0);
    }

    #[test]
    fn single_point_round_trips() {
        round_trip(&[DataPoint::new(1_600_000_000, 42.5)]);
    }

    #[test]
    fn regular_interval_constant_value_is_tiny() {
        // The ideal telemetry stream: fixed 10s cadence, constant value.
        // After the header each point costs 2 bits (dod=0, xor=0).
        let points: Vec<_> = (0..1000)
            .map(|i| DataPoint::new(1_600_000_000 + i * 10, 73.0))
            .collect();
        let mut enc = GorillaEncoder::new();
        for &p in &points {
            enc.append(p);
        }
        let chunk = enc.finish();
        // Header 128 bits + first delta record + ~2 bits for the rest.
        assert!(
            chunk.bits_per_point() < 3.0,
            "expected ~2 bits/point, got {}",
            chunk.bits_per_point()
        );
        round_trip(&points);
    }

    #[test]
    fn irregular_timestamps_round_trip() {
        let ts = [0i64, 1, 3, 100, 101, 4_000, 4_001, 1_000_000, 1_000_060];
        let points: Vec<_> = ts
            .iter()
            .enumerate()
            .map(|(i, &t)| DataPoint::new(t, i as f64 * 0.1))
            .collect();
        round_trip(&points);
    }

    #[test]
    fn extreme_timestamp_jumps_round_trip() {
        let points = [
            DataPoint::new(i64::MIN / 2, 1.0),
            DataPoint::new(0, 2.0),
            DataPoint::new(i64::MAX / 2, 3.0),
        ];
        round_trip(&points);
    }

    #[test]
    fn negative_timestamps_round_trip() {
        let points: Vec<_> = (-50..50).map(|i| DataPoint::new(i * 7, i as f64)).collect();
        round_trip(&points);
    }

    #[test]
    fn special_float_values_round_trip() {
        // NaN is rejected at the DB boundary, but the codec itself must be
        // bit-lossless for every f64 including negative zero and subnormals.
        let values = [
            0.0,
            -0.0,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 8.0, // subnormal
            f64::MAX,
            f64::MIN,
            1.0,
            -1.0,
            std::f64::consts::PI,
        ];
        let points: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| DataPoint::new(i as i64, v))
            .collect();
        round_trip(&points);
    }

    #[test]
    fn window_reuse_and_reset_paths_both_exercised() {
        // Slowly varying values reuse the XOR window; a sudden magnitude
        // change forces a new window record.
        let mut points = Vec::new();
        for i in 0..100 {
            points.push(DataPoint::new(i, 1000.0 + (i as f64) * 0.001));
        }
        points.push(DataPoint::new(100, 1.0e-300)); // new window
        for i in 101..200 {
            points.push(DataPoint::new(i, 1000.0 + (i as f64) * 0.001));
        }
        round_trip(&points);
    }

    #[test]
    fn truncated_payload_reports_corruption_not_panic() {
        let points: Vec<_> = (0..100)
            .map(|i| DataPoint::new(i * 5, (i as f64).sin()))
            .collect();
        let mut enc = GorillaEncoder::new();
        for &p in &points {
            enc.append(p);
        }
        let chunk = enc.finish();
        // Chop the payload but keep the declared count.
        let truncated = CompressedChunk {
            data: chunk.data.slice(0..chunk.data.len() / 2),
            len_bits: chunk.len_bits / 2,
            count: chunk.count,
        };
        let result = truncated.decode();
        assert!(matches!(result, Err(TsdbError::CorruptBlock { .. })));
        // The iterator stops after the first error rather than spinning.
        let errors: Vec<_> = truncated.iter().filter(|r| r.is_err()).collect();
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn compression_beats_raw_on_realistic_telemetry() {
        // A noisy-but-smooth CPU-style metric at fixed cadence: Gorilla
        // should do substantially better than 128 bits/point raw.
        let points: Vec<_> = (0..10_000)
            .map(|i| {
                let v = 50.0 + 10.0 * ((i as f64) / 300.0).sin();
                DataPoint::new(1_600_000_000 + i * 15, (v * 100.0).round() / 100.0)
            })
            .collect();
        let mut enc = GorillaEncoder::new();
        for &p in &points {
            enc.append(p);
        }
        let chunk = enc.finish();
        assert!(
            chunk.bits_per_point() < 64.0,
            "expected < 64 bits/point, got {:.1}",
            chunk.bits_per_point()
        );
        round_trip(&points);
    }

    #[test]
    fn size_hint_is_exact() {
        let points: Vec<_> = (0..10).map(|i| DataPoint::new(i, 0.5)).collect();
        let mut enc = GorillaEncoder::new();
        for &p in &points {
            enc.append(p);
        }
        let chunk = enc.finish();
        let it = chunk.iter();
        assert_eq!(it.size_hint(), (10, Some(10)));
        assert_eq!(it.count(), 10);
    }
}
