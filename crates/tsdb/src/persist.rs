//! Snapshot persistence: serialize a [`Tsdb`] to a single file and back.
//!
//! The engine is in-memory (like the hot tier of Gorilla, which keeps 26
//! hours in RAM); snapshots provide the restart-durability story: flush
//! every series' memtable, write all sealed blocks to disk in a compact
//! binary format, and reload them on startup. Blocks are stored as their
//! Gorilla-compressed payloads, so a snapshot is roughly the engine's
//! compressed in-memory footprint.
//!
//! ## Format (little-endian, version 1)
//!
//! ```text
//! magic "ASAPTSDB" | u32 version | u32 series_count
//! per series:
//!   u32 key_len   | key bytes (display form: metric{k=v,...})
//!   u32 block_count
//!   per block:
//!     u64 count | u64 len_bits | u32 byte_len | payload bytes
//! ```
//!
//! The display form of [`SeriesKey`] is unambiguous as long as metric and
//! tag tokens exclude the structural characters `{`, `}`, `,`, `=`;
//! [`save`] rejects keys that violate this (line-protocol ingestion can
//! never produce them).

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::Bytes;

use crate::block::Block;
use crate::db::{Tsdb, TsdbConfig};
use crate::error::TsdbError;
use crate::gorilla::CompressedChunk;
use crate::tags::{Selector, SeriesKey};

const MAGIC: &[u8; 8] = b"ASAPTSDB";
const VERSION: u32 = 1;

/// Error of snapshot I/O: either the storage engine or the filesystem.
#[derive(Debug)]
pub enum SnapshotError {
    /// Engine-side failure (corrupt payload, bad key).
    Tsdb(TsdbError),
    /// Filesystem failure.
    Io(std::io::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Tsdb(e) => write!(f, "snapshot: {e}"),
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Tsdb(e) => Some(e),
            SnapshotError::Io(e) => Some(e),
        }
    }
}

impl From<TsdbError> for SnapshotError {
    fn from(e: TsdbError) -> Self {
        SnapshotError::Tsdb(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn corrupt(reason: &'static str) -> SnapshotError {
    SnapshotError::Tsdb(TsdbError::CorruptBlock { reason })
}

/// Writes a snapshot of `db` to `path`.
///
/// The database is flushed first (memtables sealed into blocks) so the
/// snapshot captures every accepted point.
pub fn save(db: &Tsdb, path: &Path) -> Result<(), SnapshotError> {
    db.flush()?;
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;

    let keys = db.list_series(&Selector::any());
    w.write_all(&(keys.len() as u32).to_le_bytes())?;
    for key in keys {
        let name = key.to_string();
        // The display form is only unambiguous when tokens avoid the
        // structural characters; reject such keys rather than writing a
        // snapshot that cannot be read back.
        let structural = |t: &str| t.contains(['{', '}', ',', '=']);
        if structural(key.metric_name())
            || key.tags().iter().any(|(k, v)| structural(k) || structural(v))
        {
            return Err(SnapshotError::Tsdb(TsdbError::InvalidParameter {
                name: "key",
                message: "series keys containing '{', '}', ',' or '=' are not snapshotable",
            }));
        }
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        let blocks = db.export_blocks(&key)?;
        w.write_all(&(blocks.len() as u32).to_le_bytes())?;
        for block in blocks {
            let chunk = block.chunk();
            w.write_all(&(chunk.count as u64).to_le_bytes())?;
            w.write_all(&(chunk.len_bits as u64).to_le_bytes())?;
            w.write_all(&(chunk.data.len() as u32).to_le_bytes())?;
            w.write_all(&chunk.data)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Loads a snapshot from `path` into a fresh [`Tsdb`] with `config`.
pub fn load(path: &Path, config: TsdbConfig) -> Result<Tsdb, SnapshotError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    if read_u32(&mut r)? != VERSION {
        return Err(corrupt("unsupported snapshot version"));
    }
    let db = Tsdb::with_config(config);
    let series_count = read_u32(&mut r)?;
    for _ in 0..series_count {
        let key_len = read_u32(&mut r)? as usize;
        if key_len > 1 << 20 {
            return Err(corrupt("implausible key length"));
        }
        let mut key_bytes = vec![0u8; key_len];
        r.read_exact(&mut key_bytes)?;
        let name = String::from_utf8(key_bytes).map_err(|_| corrupt("key is not UTF-8"))?;
        let key = parse_key(&name)?;
        let block_count = read_u32(&mut r)?;
        let mut blocks = Vec::with_capacity(block_count as usize);
        for _ in 0..block_count {
            let count = read_u64(&mut r)? as usize;
            let len_bits = read_u64(&mut r)? as usize;
            let byte_len = read_u32(&mut r)? as usize;
            if len_bits > byte_len * 8 {
                return Err(corrupt("bit length exceeds payload"));
            }
            let mut payload = vec![0u8; byte_len];
            r.read_exact(&mut payload)?;
            let chunk = CompressedChunk {
                data: Bytes::from(payload),
                len_bits,
                count,
            };
            blocks.push(Block::from_chunk(chunk)?);
        }
        db.import_blocks(&key, blocks)?;
    }
    Ok(db)
}

fn read_u32(r: &mut impl Read) -> Result<u32, SnapshotError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64, SnapshotError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Parses the display form `metric{k=v,...}` back into a [`SeriesKey`].
fn parse_key(s: &str) -> Result<SeriesKey, SnapshotError> {
    let (metric, tags) = match s.split_once('{') {
        None => (s, None),
        Some((m, rest)) => {
            let inner = rest
                .strip_suffix('}')
                .ok_or_else(|| corrupt("unterminated tag set in key"))?;
            (m, Some(inner))
        }
    };
    if metric.is_empty() {
        return Err(corrupt("empty metric in key"));
    }
    let mut key = SeriesKey::metric(metric);
    if let Some(inner) = tags {
        for pair in inner.split(',') {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| corrupt("malformed tag in key"))?;
            if k.is_empty() || v.is_empty() {
                return Err(corrupt("empty tag key or value in key"));
            }
            key = key.with_tag(k, v);
        }
    }
    Ok(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::DataPoint;
    use crate::query::RangeQuery;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("asap_tsdb_persist_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn seeded() -> Tsdb {
        let db = Tsdb::with_config(TsdbConfig { block_capacity: 64 });
        for host in ["a", "b"] {
            let key = SeriesKey::metric("cpu").with_tag("host", host).with_tag("dc", "west");
            for i in 0..500 {
                db.write(&key, DataPoint::new(i * 3, (i as f64 * 0.1).sin()))
                    .unwrap();
            }
        }
        db.write(&SeriesKey::metric("untagged"), DataPoint::new(7, 1.5))
            .unwrap();
        db
    }

    #[test]
    fn round_trip_preserves_every_point() {
        let db = seeded();
        let path = tmp("roundtrip.snap");
        save(&db, &path).unwrap();
        let restored = load(&path, TsdbConfig::default()).unwrap();
        assert_eq!(restored.series_count(), db.series_count());
        for key in db.list_series(&Selector::any()) {
            let a = db.query(&key, RangeQuery::raw(i64::MIN + 1, i64::MAX)).unwrap();
            let b = restored
                .query(&key, RangeQuery::raw(i64::MIN + 1, i64::MAX))
                .unwrap();
            assert_eq!(a, b, "series {key}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restored_db_accepts_new_writes_in_order() {
        let db = seeded();
        let path = tmp("writable.snap");
        save(&db, &path).unwrap();
        let restored = load(&path, TsdbConfig::default()).unwrap();
        let key = SeriesKey::metric("cpu").with_tag("host", "a").with_tag("dc", "west");
        // The last timestamp was 499*3; earlier writes must be rejected,
        // later ones accepted.
        assert!(restored.write(&key, DataPoint::new(0, 1.0)).is_err());
        restored.write(&key, DataPoint::new(5_000, 1.0)).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_truncation_rejected() {
        let path = tmp("garbage.snap");
        std::fs::write(&path, b"NOTASNAPSHOT").unwrap();
        assert!(matches!(
            load(&path, TsdbConfig::default()),
            Err(SnapshotError::Tsdb(TsdbError::CorruptBlock { .. }))
        ));

        // Truncate a valid snapshot mid-payload.
        let db = seeded();
        save(&db, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(load(&path, TsdbConfig::default()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_db_round_trips() {
        let db = Tsdb::new();
        let path = tmp("empty.snap");
        save(&db, &path).unwrap();
        let restored = load(&path, TsdbConfig::default()).unwrap();
        assert_eq!(restored.series_count(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn key_display_form_parses_back() {
        for s in ["cpu", "cpu{host=a}", "m{a=1,b=2,c=3}"] {
            let key = parse_key(s).unwrap();
            assert_eq!(key.to_string(), s);
        }
        assert!(parse_key("cpu{host=a").is_err());
        assert!(parse_key("cpu{hosta}").is_err());
        assert!(parse_key("{host=a}").is_err());
        assert!(parse_key("cpu{=a}").is_err());
    }

    #[test]
    fn snapshot_is_compact() {
        let db = Tsdb::with_config(TsdbConfig { block_capacity: 512 });
        let key = SeriesKey::metric("flat");
        for i in 0..10_000 {
            db.write(&key, DataPoint::new(i * 10, 42.0)).unwrap();
        }
        let path = tmp("compact.snap");
        save(&db, &path).unwrap();
        let size = std::fs::metadata(&path).unwrap().len();
        assert!(
            size < 16 * 10_000 / 4,
            "snapshot {size} bytes should be far below raw 160000"
        );
        std::fs::remove_file(&path).ok();
    }
}
