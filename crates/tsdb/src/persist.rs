//! Snapshot persistence: serialize an engine to a single file and back.
//!
//! The engine is in-memory (like the hot tier of Gorilla, which keeps 26
//! hours in RAM); snapshots provide the restart-durability story: flush
//! every series' memtable, write all sealed blocks to disk in a compact
//! binary format, and reload them on startup. Blocks are stored as their
//! Gorilla-compressed payloads, so a snapshot is roughly the engine's
//! compressed in-memory footprint.
//!
//! ## Format version 1 (little-endian) — single-shard, sequential
//!
//! ```text
//! magic "ASAPTSDB" | u32 1 | u32 series_count
//! per series:
//!   u32 key_len   | key bytes (display form: metric{k=v,...})
//!   u32 block_count
//!   per block:
//!     u64 count | u64 len_bits | u32 byte_len | payload bytes
//! ```
//!
//! ## Format version 2 (little-endian) — sharded, parallel
//!
//! ```text
//! magic "ASAPTSDB" | u32 2 | u32 series_count
//! directory, series sorted by key:
//!   u32 key_len | key bytes | u32 block_count
//!   u64 payload_offset (from file start) | u64 payload_len
//! payloads, same order: block records as in v1
//! ```
//!
//! Version 2 is produced by [`save_sharded`]: one worker per shard
//! serializes its series concurrently, and the per-shard results are
//! merged into key order before anything touches the file — so the bytes
//! are **independent of the writer's shard count** (a 1-shard and an
//! 8-shard store holding the same points produce identical files). The
//! directory's offsets let [`load_sharded`] hand each shard worker its
//! own file handle and read payloads in parallel.
//!
//! Both loaders accept both versions: a v1 file loads into any shard
//! count (series re-route by hash), and a v2 file loads into a
//! single-shard [`Tsdb`] sequentially.
//!
//! ## Format version 3 — incremental checkpoint chains
//!
//! Version 3 is not a single file but a **directory**: a base v2
//! snapshot plus per-series delta links indexed by a CRC-guarded
//! manifest, written by [`crate::chain::CheckpointChain`] so that online
//! checkpoint cost scales with write activity instead of total data.
//! [`load_sharded`] (and therefore [`recover_sharded`]) folds a chain
//! directory transparently; see the [`crate::chain`] module docs for the
//! layout and crash-safety argument.
//!
//! The display form of [`SeriesKey`] is unambiguous as long as metric and
//! tag tokens exclude the structural characters `{`, `}`, `,`, `=`;
//! saving rejects keys that violate this (line-protocol ingestion can
//! never produce them).
//!
//! ## Consistency under concurrent writers
//!
//! Saving never holds more than one series lock at a time, and each only
//! briefly: the initial flush seals memtables series-by-series, and each
//! series' blocks are then cloned under that series' read lock alone. The
//! snapshot therefore captures a **per-series consistency point** — every
//! series is internally consistent as of the moment its blocks were
//! exported — but not a single cross-series cut: a writer racing the save
//! may land a sealed block in series B after A was exported and before B
//! is. Concretely:
//!
//! * each saved series is a prefix (in time) of that series' final
//!   contents — never torn mid-block;
//! * points accepted after a series' flush stay in its memtable and are
//!   excluded, unless they fill a block first;
//! * series created after the key listing are excluded entirely;
//! * writers are never blocked for the duration of the save and the save
//!   never deadlocks (`tests/ops_properties.rs` races writers against
//!   repeated saves to pin this down).
//!
//! Callers needing a true cross-series cut must quiesce writers first.
//!
//! Both writers stage into a sibling `*.tmp` file and rename it over
//! `path` on success, so a save that fails partway (full disk, crash,
//! unsnapshotable key) never clobbers an existing good snapshot.

use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use bytes::Bytes;

use crate::block::Block;
use crate::db::{Tsdb, TsdbConfig};
use crate::error::TsdbError;
use crate::gorilla::CompressedChunk;
use crate::sharded::{ShardedConfig, ShardedDb};
use crate::tags::{Selector, SeriesKey};
use crate::wal::{Wal, WalReplayReport};

pub(crate) const MAGIC: &[u8; 8] = b"ASAPTSDB";
const VERSION_V1: u32 = 1;
pub(crate) const VERSION_V2: u32 = 2;

/// Error of snapshot I/O: either the storage engine or the filesystem.
#[derive(Debug)]
pub enum SnapshotError {
    /// Engine-side failure (corrupt payload, bad key).
    Tsdb(TsdbError),
    /// Filesystem failure.
    Io(std::io::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Tsdb(e) => write!(f, "snapshot: {e}"),
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Tsdb(e) => Some(e),
            SnapshotError::Io(e) => Some(e),
        }
    }
}

impl From<TsdbError> for SnapshotError {
    fn from(e: TsdbError) -> Self {
        SnapshotError::Tsdb(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

pub(crate) fn corrupt(reason: &'static str) -> SnapshotError {
    SnapshotError::Tsdb(TsdbError::CorruptBlock { reason })
}

/// Writes a snapshot through `write` into a sibling temp file, then
/// renames it over `path` — so a save that fails partway (full disk,
/// crash, unsnapshotable key discovered mid-write) never destroys a
/// previous good snapshot at `path`.
pub(crate) fn replace_file(
    path: &Path,
    write: impl FnOnce(&mut BufWriter<std::fs::File>) -> Result<(), SnapshotError>,
) -> Result<(), SnapshotError> {
    let mut tmp_name = path
        .file_name()
        .map(std::ffi::OsString::from)
        .unwrap_or_else(|| std::ffi::OsString::from("snapshot"));
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let file = std::fs::File::create(&tmp)?;
        let mut w = BufWriter::new(file);
        write(&mut w)?;
        w.flush()?;
        Ok(())
    })();
    match result {
        Ok(()) => {
            std::fs::rename(&tmp, path)?;
            Ok(())
        }
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

/// Rejects keys whose display form would not parse back.
pub(crate) fn validate_key(key: &SeriesKey) -> Result<(), SnapshotError> {
    let structural = |t: &str| t.contains(['{', '}', ',', '=']);
    if structural(key.metric_name())
        || key.tags().iter().any(|(k, v)| structural(k) || structural(v))
    {
        return Err(SnapshotError::Tsdb(TsdbError::InvalidParameter {
            name: "key",
            message: "series keys containing '{', '}', ',' or '=' are not snapshotable",
        }));
    }
    Ok(())
}

/// Encodes one series' block records (the shared v1/v2 payload form).
pub(crate) fn encode_blocks(blocks: &[Block], out: &mut Vec<u8>) {
    for block in blocks {
        let chunk = block.chunk();
        out.extend_from_slice(&(chunk.count as u64).to_le_bytes());
        out.extend_from_slice(&(chunk.len_bits as u64).to_le_bytes());
        out.extend_from_slice(&(chunk.data.len() as u32).to_le_bytes());
        out.extend_from_slice(&chunk.data);
    }
}

/// Reads `block_count` block records (the shared v1/v2 payload form).
pub(crate) fn read_blocks(r: &mut impl Read, block_count: u32) -> Result<Vec<Block>, SnapshotError> {
    // `block_count` is untrusted input: cap the pre-allocation so a
    // corrupt field yields a clean error once the payload runs out,
    // never an allocator abort.
    let mut blocks = Vec::with_capacity(block_count.min(1 << 16) as usize);
    for _ in 0..block_count {
        let count = read_u64(r)? as usize;
        let len_bits = read_u64(r)? as usize;
        let byte_len = read_u32(r)? as usize;
        if byte_len > 1 << 30 {
            return Err(corrupt("implausible block payload length"));
        }
        if len_bits > byte_len * 8 {
            return Err(corrupt("bit length exceeds payload"));
        }
        let mut payload = vec![0u8; byte_len];
        r.read_exact(&mut payload)?;
        let chunk = CompressedChunk {
            data: Bytes::from(payload),
            len_bits,
            count,
        };
        blocks.push(Block::from_chunk(chunk)?);
    }
    Ok(blocks)
}

/// Writes a version-1 snapshot of `db` to `path`.
///
/// The database is flushed first (memtables sealed into blocks) so the
/// snapshot captures every point accepted before the call; see the module
/// docs for the exact consistency point under concurrent writers.
pub fn save(db: &Tsdb, path: &Path) -> Result<(), SnapshotError> {
    db.flush()?;
    replace_file(path, |w| {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION_V1.to_le_bytes())?;

        let keys = db.list_series(&Selector::any());
        w.write_all(&(keys.len() as u32).to_le_bytes())?;
        for key in keys {
            validate_key(&key)?;
            let name = key.to_string();
            w.write_all(&(name.len() as u32).to_le_bytes())?;
            w.write_all(name.as_bytes())?;
            let blocks = db.export_blocks(&key)?;
            w.write_all(&(blocks.len() as u32).to_le_bytes())?;
            let mut payload = Vec::new();
            encode_blocks(&blocks, &mut payload);
            w.write_all(&payload)?;
        }
        Ok(())
    })
}

/// One merged series entry awaiting the v2 directory write.
pub(crate) type EncodedSeries = (SeriesKey, u32, Vec<u8>);

/// Writes the v2 header + directory + payloads for already-encoded,
/// key-sorted `entries`. Shared between [`save_sharded`] and the chain
/// writer's base links ([`crate::chain`]), which are byte-for-byte plain
/// v2 snapshots.
pub(crate) fn write_v2(
    entries: &[EncodedSeries],
    w: &mut impl Write,
) -> Result<(), SnapshotError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION_V2.to_le_bytes())?;
    w.write_all(&(entries.len() as u32).to_le_bytes())?;

    let names: Vec<String> = entries.iter().map(|(k, _, _)| k.to_string()).collect();
    let dir_len: usize = names.iter().map(|n| 4 + n.len() + 4 + 8 + 8).sum();
    let mut offset = (MAGIC.len() + 4 + 4 + dir_len) as u64;
    for ((_, block_count, payload), name) in entries.iter().zip(&names) {
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        w.write_all(&block_count.to_le_bytes())?;
        w.write_all(&offset.to_le_bytes())?;
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        offset += payload.len() as u64;
    }
    for (_, _, payload) in entries {
        w.write_all(payload)?;
    }
    Ok(())
}

/// Writes a version-2 snapshot of `db` to `path`, serializing shards in
/// parallel (one worker per non-empty shard) and merging the per-shard
/// results into key order — so the file bytes are independent of the
/// shard count. Same per-series consistency point as [`save`].
pub fn save_sharded(db: &ShardedDb, path: &Path) -> Result<(), SnapshotError> {
    db.flush()?;
    let mut entries: Vec<EncodedSeries> = Vec::new();
    crossbeam::thread::scope(|scope| -> Result<(), SnapshotError> {
        let mut handles = Vec::new();
        for shard in db.shards() {
            if shard.series_count() == 0 {
                continue;
            }
            handles.push(scope.spawn(move |_| -> Result<Vec<EncodedSeries>, SnapshotError> {
                let mut out = Vec::new();
                for key in shard.list_series(&Selector::any()) {
                    validate_key(&key)?;
                    let blocks = shard.export_blocks(&key)?;
                    let mut payload = Vec::new();
                    encode_blocks(&blocks, &mut payload);
                    out.push((key, blocks.len() as u32, payload));
                }
                Ok(out)
            }));
        }
        for handle in handles {
            entries.extend(handle.join().expect("snapshot worker panicked")?);
        }
        Ok(())
    })
    .expect("snapshot scope failed")?;
    entries.sort_by(|(a, _, _), (b, _, _)| a.cmp(b));

    replace_file(path, |w| write_v2(&entries, w))
}

/// Loads a snapshot (either version) from `path` into a fresh [`Tsdb`]
/// with `config`.
pub fn load(path: &Path, config: TsdbConfig) -> Result<Tsdb, SnapshotError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let db = Tsdb::with_config(config);
    match read_header(&mut r)? {
        VERSION_V1 => load_v1_records(&mut r, |key, blocks| db.import_blocks(&key, blocks))?,
        VERSION_V2 => {
            for entry in read_directory(&mut r)? {
                r.seek(SeekFrom::Start(entry.offset))?;
                let mut bounded = (&mut r).take(entry.len);
                let blocks = read_blocks(&mut bounded, entry.block_count)?;
                if bounded.limit() != 0 {
                    return Err(corrupt("series payload shorter than directory claims"));
                }
                db.import_blocks(&entry.key, blocks)?;
            }
        }
        _ => return Err(corrupt("unsupported snapshot version")),
    }
    Ok(db)
}

/// Loads a snapshot (either version) from `path` into a fresh
/// [`ShardedDb`] with `config`. Series re-route to `config.shards`
/// partitions regardless of the writer's shard count; version-2 payloads
/// are read in parallel, one worker per destination shard with its own
/// file handle.
///
/// When `path` is a **directory** it is treated as an incremental
/// checkpoint chain (snapshot v3) and folded transparently via
/// [`crate::chain::load_chain`]: base v2 snapshot, then every delta link
/// the chain manifest lists, degrading to the newest loadable prefix on
/// damage.
pub fn load_sharded(path: &Path, config: ShardedConfig) -> Result<ShardedDb, SnapshotError> {
    if path.is_dir() {
        return crate::chain::load_chain(path, config);
    }
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let db = ShardedDb::with_config(config);
    match read_header(&mut r)? {
        VERSION_V1 => load_v1_records(&mut r, |key, blocks| db.import_blocks(&key, blocks))?,
        VERSION_V2 => {
            let directory = read_directory(&mut r)?;
            drop(r);
            load_v2_parallel(path, &db, directory)?;
        }
        _ => return Err(corrupt("unsupported snapshot version")),
    }
    Ok(db)
}

/// Takes a *checkpoint*: rotates `wal` onto a fresh generation, saves a
/// sharded snapshot covering everything before the rotation, then
/// discards the covered log generations.
///
/// The ordering makes a crash at any step safe: before the save, the old
/// generations are still on disk; after the save but before the discard,
/// [`recover_sharded`] replays the covered generations on top of the
/// snapshot and skips every already-present record (replay is
/// idempotent). Returns the new live generation.
pub fn checkpoint_sharded(db: &ShardedDb, path: &Path, wal: &Wal) -> Result<u64, SnapshotError> {
    let boundary = wal.rotate()?;
    save_sharded(db, path)?;
    wal.discard_before(boundary)?;
    Ok(boundary)
}

/// Recovers a store from a snapshot plus its WAL tail.
///
/// Loads `snapshot` if it names an existing file — or an incremental
/// checkpoint-chain directory (a missing snapshot just means "start
/// empty", e.g. the first boot) — then replays every WAL file in
/// `wal_dir`, skipping records the snapshot already covers. Either
/// source may be absent; together they are the complete recovery set a
/// [`checkpoint_sharded`] or a [`crate::chain::CheckpointChain`]
/// checkpoint (or a crash at any point between its steps) leaves
/// behind.
pub fn recover_sharded(
    snapshot: Option<&Path>,
    wal_dir: Option<&Path>,
    config: ShardedConfig,
) -> Result<(ShardedDb, WalReplayReport), SnapshotError> {
    let db = match snapshot {
        Some(path) if path.exists() => load_sharded(path, config)?,
        _ => ShardedDb::with_config(config),
    };
    let report = match wal_dir {
        Some(dir) => crate::wal::replay(dir, &db)?,
        None => WalReplayReport::default(),
    };
    Ok((db, report))
}

/// Checks the magic and returns the format version.
pub(crate) fn read_header(r: &mut impl Read) -> Result<u32, SnapshotError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    read_u32(r)
}

/// Reads every v1 series record, handing each to `import`.
fn load_v1_records(
    r: &mut impl Read,
    mut import: impl FnMut(SeriesKey, Vec<Block>) -> Result<(), TsdbError>,
) -> Result<(), SnapshotError> {
    let series_count = read_u32(r)?;
    for _ in 0..series_count {
        let key = read_key(r)?;
        let block_count = read_u32(r)?;
        let blocks = read_blocks(r, block_count)?;
        import(key, blocks)?;
    }
    Ok(())
}

/// One v2 directory entry.
pub(crate) struct DirEntry {
    pub(crate) key: SeriesKey,
    pub(crate) block_count: u32,
    pub(crate) offset: u64,
    pub(crate) len: u64,
}

/// Reads the v2 series directory (assumes the header was consumed).
pub(crate) fn read_directory(r: &mut impl Read) -> Result<Vec<DirEntry>, SnapshotError> {
    let series_count = read_u32(r)?;
    let mut out = Vec::with_capacity(series_count.min(1 << 20) as usize);
    for _ in 0..series_count {
        let key = read_key(r)?;
        let block_count = read_u32(r)?;
        let offset = read_u64(r)?;
        let len = read_u64(r)?;
        if len > 1 << 40 {
            return Err(corrupt("implausible series payload length"));
        }
        out.push(DirEntry {
            key,
            block_count,
            offset,
            len,
        });
    }
    Ok(out)
}

/// Reads every directory entry's payload in parallel — one worker per
/// destination shard, each with its own file handle — and imports the
/// decoded blocks into `db`.
fn load_v2_parallel(
    path: &Path,
    db: &ShardedDb,
    directory: Vec<DirEntry>,
) -> Result<(), SnapshotError> {
    let mut by_shard: Vec<Vec<DirEntry>> = (0..db.shard_count()).map(|_| Vec::new()).collect();
    for entry in directory {
        by_shard[db.shard_of(&entry.key)].push(entry);
    }
    let shards = db.shards();
    crossbeam::thread::scope(|scope| -> Result<(), SnapshotError> {
        let mut handles = Vec::new();
        for (shard, entries) in shards.iter().zip(by_shard) {
            if entries.is_empty() {
                continue;
            }
            handles.push(scope.spawn(move |_| -> Result<(), SnapshotError> {
                let file = std::fs::File::open(path)?;
                let mut r = BufReader::new(file);
                for entry in entries {
                    r.seek(SeekFrom::Start(entry.offset))?;
                    let mut bounded = (&mut r).take(entry.len);
                    let blocks = read_blocks(&mut bounded, entry.block_count)?;
                    if bounded.limit() != 0 {
                        return Err(corrupt("series payload shorter than directory claims"));
                    }
                    shard.import_blocks(&entry.key, blocks)?;
                }
                Ok(())
            }));
        }
        for handle in handles {
            handle.join().expect("snapshot load worker panicked")?;
        }
        Ok(())
    })
    .expect("snapshot load scope failed")
}

/// Reads a length-prefixed series key in display form.
pub(crate) fn read_key(r: &mut impl Read) -> Result<SeriesKey, SnapshotError> {
    let key_len = read_u32(r)? as usize;
    if key_len > 1 << 20 {
        return Err(corrupt("implausible key length"));
    }
    let mut key_bytes = vec![0u8; key_len];
    r.read_exact(&mut key_bytes)?;
    let name = String::from_utf8(key_bytes).map_err(|_| corrupt("key is not UTF-8"))?;
    parse_series_key(&name)
}

pub(crate) fn read_u32(r: &mut impl Read) -> Result<u32, SnapshotError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_u64(r: &mut impl Read) -> Result<u64, SnapshotError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Parses the display form `metric{k=v,...}` back into a [`SeriesKey`].
/// Shared with [`crate::wal`], whose records carry keys in the same form.
pub(crate) fn parse_series_key(s: &str) -> Result<SeriesKey, SnapshotError> {
    let (metric, tags) = match s.split_once('{') {
        None => (s, None),
        Some((m, rest)) => {
            let inner = rest
                .strip_suffix('}')
                .ok_or_else(|| corrupt("unterminated tag set in key"))?;
            (m, Some(inner))
        }
    };
    if metric.is_empty() {
        return Err(corrupt("empty metric in key"));
    }
    let mut key = SeriesKey::metric(metric);
    if let Some(inner) = tags {
        for pair in inner.split(',') {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| corrupt("malformed tag in key"))?;
            if k.is_empty() || v.is_empty() {
                return Err(corrupt("empty tag key or value in key"));
            }
            key = key.with_tag(k, v);
        }
    }
    Ok(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::DataPoint;
    use crate::query::RangeQuery;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("asap_tsdb_persist_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn seeded() -> Tsdb {
        let db = Tsdb::with_config(TsdbConfig { block_capacity: 64 });
        for host in ["a", "b"] {
            let key = SeriesKey::metric("cpu").with_tag("host", host).with_tag("dc", "west");
            for i in 0..500 {
                db.write(&key, DataPoint::new(i * 3, (i as f64 * 0.1).sin()))
                    .unwrap();
            }
        }
        db.write(&SeriesKey::metric("untagged"), DataPoint::new(7, 1.5))
            .unwrap();
        db
    }

    fn seeded_sharded(shards: usize) -> ShardedDb {
        ShardedDb::from_tsdb(&seeded(), ShardedConfig::new(shards, 64)).unwrap()
    }

    fn full() -> RangeQuery {
        RangeQuery::raw(i64::MIN + 1, i64::MAX)
    }

    #[test]
    fn round_trip_preserves_every_point() {
        let db = seeded();
        let path = tmp("roundtrip.snap");
        save(&db, &path).unwrap();
        let restored = load(&path, TsdbConfig::default()).unwrap();
        assert_eq!(restored.series_count(), db.series_count());
        for key in db.list_series(&Selector::any()) {
            let a = db.query(&key, full()).unwrap();
            let b = restored.query(&key, full()).unwrap();
            assert_eq!(a, b, "series {key}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restored_db_accepts_new_writes_in_order() {
        let db = seeded();
        let path = tmp("writable.snap");
        save(&db, &path).unwrap();
        let restored = load(&path, TsdbConfig::default()).unwrap();
        let key = SeriesKey::metric("cpu").with_tag("host", "a").with_tag("dc", "west");
        // The last timestamp was 499*3; earlier writes must be rejected,
        // later ones accepted.
        assert!(restored.write(&key, DataPoint::new(0, 1.0)).is_err());
        restored.write(&key, DataPoint::new(5_000, 1.0)).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_truncation_rejected() {
        let path = tmp("garbage.snap");
        std::fs::write(&path, b"NOTASNAPSHOT").unwrap();
        assert!(matches!(
            load(&path, TsdbConfig::default()),
            Err(SnapshotError::Tsdb(TsdbError::CorruptBlock { .. }))
        ));

        // Truncate a valid snapshot mid-payload.
        let db = seeded();
        save(&db, &path).unwrap();
        let full_bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full_bytes[..full_bytes.len() / 2]).unwrap();
        assert!(load(&path, TsdbConfig::default()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_db_round_trips() {
        let db = Tsdb::new();
        let path = tmp("empty.snap");
        save(&db, &path).unwrap();
        let restored = load(&path, TsdbConfig::default()).unwrap();
        assert_eq!(restored.series_count(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn key_display_form_parses_back() {
        for s in ["cpu", "cpu{host=a}", "m{a=1,b=2,c=3}"] {
            let key = parse_series_key(s).unwrap();
            assert_eq!(key.to_string(), s);
        }
        assert!(parse_series_key("cpu{host=a").is_err());
        assert!(parse_series_key("cpu{hosta}").is_err());
        assert!(parse_series_key("{host=a}").is_err());
        assert!(parse_series_key("cpu{=a}").is_err());
    }

    #[test]
    fn snapshot_is_compact() {
        let db = Tsdb::with_config(TsdbConfig { block_capacity: 512 });
        let key = SeriesKey::metric("flat");
        for i in 0..10_000 {
            db.write(&key, DataPoint::new(i * 10, 42.0)).unwrap();
        }
        let path = tmp("compact.snap");
        save(&db, &path).unwrap();
        let size = std::fs::metadata(&path).unwrap().len();
        assert!(
            size < 16 * 10_000 / 4,
            "snapshot {size} bytes should be far below raw 160000"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_round_trips_through_sharded_engines() {
        let db = seeded_sharded(4);
        let path = tmp("v2_roundtrip.snap");
        save_sharded(&db, &path).unwrap();
        // Reload at several shard counts; all must agree with the source.
        for shards in [1usize, 3, 8] {
            let restored = load_sharded(&path, ShardedConfig::new(shards, 64)).unwrap();
            assert_eq!(restored.shard_count(), shards);
            assert_eq!(
                restored.query_selector(&Selector::any(), full()).unwrap(),
                db.query_selector(&Selector::any(), full()).unwrap()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_bytes_are_independent_of_shard_count() {
        let a = tmp("v2_one_shard.snap");
        let b = tmp("v2_many_shards.snap");
        save_sharded(&seeded_sharded(1), &a).unwrap();
        save_sharded(&seeded_sharded(7), &b).unwrap();
        assert_eq!(
            std::fs::read(&a).unwrap(),
            std::fs::read(&b).unwrap(),
            "v2 snapshot bytes must not depend on the writer's shard count"
        );
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn v1_file_loads_into_any_shard_count() {
        let db = seeded();
        let path = tmp("v1_crossload.snap");
        save(&db, &path).unwrap();
        for shards in [1usize, 2, 5] {
            let restored = load_sharded(&path, ShardedConfig::new(shards, 64)).unwrap();
            assert_eq!(
                restored.query_selector(&Selector::any(), full()).unwrap(),
                db.query_selector(&Selector::any(), full()).unwrap()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_file_loads_into_single_shard_tsdb() {
        let db = seeded_sharded(4);
        let path = tmp("v2_to_tsdb.snap");
        save_sharded(&db, &path).unwrap();
        let restored = load(&path, TsdbConfig::default()).unwrap();
        assert_eq!(
            restored.query_selector(&Selector::any(), full()).unwrap(),
            db.query_selector(&Selector::any(), full()).unwrap()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_truncation_and_bad_version_rejected() {
        let db = seeded_sharded(3);
        let path = tmp("v2_truncated.snap");
        save_sharded(&db, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Truncate inside the payload section: directory reads fine, the
        // parallel payload read must fail cleanly.
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert!(load_sharded(&path, ShardedConfig::default()).is_err());

        // Truncate inside the directory.
        std::fs::write(&path, &bytes[..24]).unwrap();
        assert!(load_sharded(&path, ShardedConfig::default()).is_err());

        // Unknown version.
        let mut bad = bytes.clone();
        bad[8] = 99;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            load_sharded(&path, ShardedConfig::default()),
            Err(SnapshotError::Tsdb(TsdbError::CorruptBlock { .. }))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_sharded_db_round_trips_v2() {
        let db = ShardedDb::with_config(ShardedConfig::new(3, 64));
        let path = tmp("v2_empty.snap");
        save_sharded(&db, &path).unwrap();
        let restored = load_sharded(&path, ShardedConfig::new(2, 64)).unwrap();
        assert_eq!(restored.series_count(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn structural_keys_rejected_by_both_writers() {
        let bad = SeriesKey::metric("cpu").with_tag("host", "a=b");
        let db = Tsdb::new();
        db.write(&bad, DataPoint::new(1, 1.0)).unwrap();
        let path = tmp("badkey.snap");
        assert!(save(&db, &path).is_err());
        let sharded = ShardedDb::with_config(ShardedConfig::new(2, 64));
        sharded.write(&bad, DataPoint::new(1, 1.0)).unwrap();
        assert!(save_sharded(&sharded, &path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_save_preserves_previous_snapshot() {
        let path = tmp("keepold.snap");
        let good = seeded();
        save(&good, &path).unwrap();
        let before = std::fs::read(&path).unwrap();

        // A later save that errors mid-write (unsnapshotable key) must
        // leave the previous good file untouched — both writers.
        let bad_key = SeriesKey::metric("cpu").with_tag("host", "a=b");
        let bad = Tsdb::new();
        bad.write(&SeriesKey::metric("aaa"), DataPoint::new(1, 1.0)).unwrap();
        bad.write(&bad_key, DataPoint::new(1, 1.0)).unwrap();
        assert!(save(&bad, &path).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), before);

        let bad_sharded = ShardedDb::from_tsdb(&bad, ShardedConfig::new(3, 64)).unwrap();
        assert!(save_sharded(&bad_sharded, &path).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), before, "v2 writer clobbered the old file");

        // No stray temp file left behind.
        assert!(!path.with_file_name("keepold.snap.tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn implausible_block_count_is_an_error_not_an_abort() {
        // A v1 header claiming one series with u32::MAX blocks and no
        // payload must surface as a clean error (the pre-allocation is
        // capped), not an allocator abort.
        let path = tmp("hugeblocks.snap");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"ASAPTSDB");
        bytes.extend_from_slice(&1u32.to_le_bytes()); // version
        bytes.extend_from_slice(&1u32.to_le_bytes()); // series_count
        bytes.extend_from_slice(&3u32.to_le_bytes()); // key_len
        bytes.extend_from_slice(b"cpu");
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // block_count
        std::fs::write(&path, &bytes).unwrap();
        assert!(load(&path, TsdbConfig::default()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_payload_overrun_rejected_by_both_loaders() {
        // Shrink a directory len field so the payload read overruns the
        // declared extent: both loaders must reject identically.
        let db = seeded_sharded(2);
        let path = tmp("lenlie.snap");
        save_sharded(&db, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // First directory entry: magic(8) version(4) count(4) key_len(4)
        // + key + block_count(4) + offset(8), then the 8-byte len.
        let key_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
        let len_pos = 20 + key_len + 4 + 8;
        let len = u64::from_le_bytes(bytes[len_pos..len_pos + 8].try_into().unwrap());
        bytes[len_pos..len_pos + 8].copy_from_slice(&(len - 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_sharded(&path, ShardedConfig::default()).is_err());
        assert!(load(&path, TsdbConfig::default()).is_err());
        std::fs::remove_file(&path).ok();
    }
}
