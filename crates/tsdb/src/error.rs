//! Error type for the storage substrate.

use std::fmt;

/// Errors produced by the time-series storage engine.
#[derive(Debug, Clone, PartialEq)]
pub enum TsdbError {
    /// A write arrived with a timestamp at or before the last accepted
    /// point of the series. Gorilla-style delta-of-delta streams require
    /// strictly increasing timestamps within a series; out-of-order
    /// telemetry must be routed to a fresh series or dropped upstream.
    OutOfOrder {
        /// Timestamp of the last accepted point.
        last: i64,
        /// Timestamp of the rejected write.
        got: i64,
    },
    /// A write carried a NaN or infinite value. These are rejected at the
    /// ingestion boundary so that compressed blocks never contain samples
    /// that would poison downstream moment statistics.
    NonFiniteValue {
        /// Timestamp of the rejected write.
        timestamp: i64,
    },
    /// The compressed payload ended mid-record or carried an impossible
    /// control sequence; the block is corrupt or truncated.
    CorruptBlock {
        /// Human-readable description of the failure.
        reason: &'static str,
    },
    /// The referenced series does not exist.
    SeriesNotFound {
        /// The key that failed to resolve.
        key: String,
    },
    /// A query or configuration parameter was out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        message: &'static str,
    },
    /// A line-protocol record failed to parse.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of the failure.
        reason: &'static str,
    },
    /// An ingest source failed mid-stream (e.g. a reader error). The
    /// message is the source error's rendering; points fed before the
    /// failure are already durable in the store.
    Io {
        /// Human-readable description of the source failure.
        message: String,
    },
}

impl fmt::Display for TsdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsdbError::OutOfOrder { last, got } => write!(
                f,
                "out-of-order write: timestamp {got} is not after the last accepted {last}"
            ),
            TsdbError::NonFiniteValue { timestamp } => {
                write!(f, "non-finite value rejected at timestamp {timestamp}")
            }
            TsdbError::CorruptBlock { reason } => write!(f, "corrupt block: {reason}"),
            TsdbError::SeriesNotFound { key } => write!(f, "series not found: {key}"),
            TsdbError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            TsdbError::Parse { line, reason } => {
                write!(f, "line protocol parse error on line {line}: {reason}")
            }
            TsdbError::Io { message } => write!(f, "ingest source error: {message}"),
        }
    }
}

impl std::error::Error for TsdbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TsdbError::OutOfOrder { last: 10, got: 5 };
        assert!(e.to_string().contains("out-of-order"));
        assert!(e.to_string().contains('5'));
        assert!(TsdbError::NonFiniteValue { timestamp: 3 }
            .to_string()
            .contains("non-finite"));
        assert!(TsdbError::CorruptBlock { reason: "truncated" }
            .to_string()
            .contains("truncated"));
        assert!(TsdbError::SeriesNotFound { key: "cpu".into() }
            .to_string()
            .contains("cpu"));
        let e = TsdbError::Parse {
            line: 7,
            reason: "missing field set",
        };
        assert!(e.to_string().contains("line 7"));
        let e = TsdbError::Io {
            message: "connection reset".into(),
        };
        assert!(e.to_string().contains("connection reset"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<TsdbError>();
    }
}
