//! Incremental checkpoint chains — snapshot format v3.
//!
//! A drain-time checkpoint ([`crate::persist::checkpoint_sharded`])
//! re-serializes the **entire** store every time, so its cost scales
//! with total data. A long-running server checkpointing every minute
//! needs the opposite: cost proportional to what changed since the last
//! checkpoint. This module provides that as a *chain* — a directory
//! holding one full base snapshot plus a sequence of per-series delta
//! links, indexed by a manifest:
//!
//! ```text
//! <dir>/
//!   MANIFEST                          which links are live, in order
//!   base-<chain_id:016x>-00000000.snap    a plain v2 snapshot
//!   delta-<chain_id:016x>-<seq:08>.snap   series that changed since seq-1
//! ```
//!
//! ## Manifest (little-endian)
//!
//! ```text
//! magic "ASAPCHN1" | u32 1 | u64 chain_id | u32 link_count
//! per link: u64 seq          (link 0 is the base, the rest are deltas)
//! u32 crc32 of all preceding bytes
//! ```
//!
//! ## Delta link (little-endian)
//!
//! ```text
//! magic "ASAPTSDB" | u32 3 | u64 chain_id | u64 seq | u32 series_count
//! directory, series sorted by key:
//!   u32 key_len | key bytes | u8 mode | u32 start_block | u32 block_count
//!   u64 payload_offset (from file start) | u64 payload_len
//! payloads, same order: block records as in v1/v2
//! ```
//!
//! `mode` 0 is **append**: the link's blocks extend the series, and
//! `start_block` must equal the folded block count at apply time (a
//! cheap cross-check that the delta really follows its predecessors).
//! `mode` 1 is **replace**: drop the series and import these blocks from
//! scratch — used for new series, for series whose old blocks were
//! evicted by retention (the previous prefix no longer matches), and,
//! with zero blocks, as a tombstone for a series evicted entirely.
//!
//! ## Change detection
//!
//! The writer keeps an in-memory fingerprint per series — sealed-block
//! count, total point count, and last block end — of what the chain's
//! files already cover. After the pre-checkpoint flush (which seals
//! every memtable, so watermark advances materialize as new sealed
//! blocks), a series whose current blocks extend a matching prefix
//! yields an append of just the new blocks; anything else yields a
//! replace. Fingerprints are process-local: the first checkpoint after
//! [`CheckpointChain::open`] always writes a fresh base (re-base), which
//! also bounds recovery of a chain left behind by an older process.
//!
//! ## Crash safety
//!
//! Every file is written via tmp+rename ([`crate::persist`]'s
//! `replace_file`), and a checkpoint orders its steps so that a kill
//! anywhere leaves a recoverable prefix:
//!
//! 1. rotate the WAL (boundary `g`): nothing discarded yet;
//! 2. write the delta (or, on re-base, the new base under a fresh
//!    chain id): an orphan file no manifest references — ignored;
//! 3. rename the new manifest: the chain now covers everything before
//!    `g`; replay of not-yet-discarded generations is idempotent;
//! 4. (re-base only) delete the previous chain's files: the manifest
//!    stopped referencing them in step 3;
//! 5. discard WAL generations `< g`: every record they hold is in the
//!    chain.
//!
//! The in-memory chain state (links, fingerprints) only advances after
//! step 3 succeeds, so a *failed* step (as opposed to a kill) leaves the
//! writer consistent with the on-disk manifest and the next checkpoint
//! simply overwrites the orphan. [`load_chain`] folds base + deltas in
//! manifest order, validating each link **fully before applying it**,
//! and degrades to the newest loadable prefix on any damage — the WAL
//! tail (which was only discarded once covered) supplies the rest.
//! `tests/crash_properties.rs` kills a checkpoint between every step
//! and proves recovery ≡ the surviving-prefix oracle.

use std::collections::BTreeMap;
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::block::Block;
use crate::error::TsdbError;
use crate::persist::{
    corrupt, encode_blocks, read_blocks, read_directory, read_header, read_key, read_u32,
    read_u64, replace_file, validate_key, write_v2, EncodedSeries, SnapshotError, VERSION_V2,
};
use crate::persist::MAGIC;
use crate::sharded::{ShardedConfig, ShardedDb};
use crate::tags::{Selector, SeriesKey};
use crate::wal::{crc32, Wal};

const CHAIN_MAGIC: &[u8; 8] = b"ASAPCHN1";
const MANIFEST_VERSION: u32 = 1;
const MANIFEST_NAME: &str = "MANIFEST";
const VERSION_V3: u32 = 3;

/// The steps of one incremental checkpoint, in execution order. Passed
/// to [`CheckpointChain::checkpoint_until`] by the fault-injection tests
/// to simulate a kill *after* the named step completed (and before the
/// next one started); production code never stops early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainStep {
    /// The WAL was rotated onto a fresh generation; nothing written yet.
    Rotated,
    /// The delta link file was renamed into place (delta path).
    DeltaWritten,
    /// The new base file was renamed into place (re-base path).
    BaseWritten,
    /// The new manifest was renamed into place — the commit point.
    ManifestWritten,
    /// The previous chain's files were deleted (re-base path).
    OldChainRemoved,
    /// Covered WAL generations were discarded — the final step.
    Discarded,
}

/// What one [`CheckpointChain::checkpoint`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainCheckpointReport {
    /// The WAL generation boundary this checkpoint covers (None without
    /// a WAL).
    pub boundary: Option<u64>,
    /// Whether this checkpoint wrote a fresh base (chain compaction).
    pub rebased: bool,
    /// Whether a link file was written at all (false when nothing
    /// changed since the previous link — the chain is left untouched).
    pub link_written: bool,
    /// Series serialized into the link (changed series only, for a
    /// delta).
    pub series_written: usize,
    /// Bytes of the link file written.
    pub bytes_written: u64,
    /// Links in the chain after this checkpoint (base + deltas).
    pub links: usize,
    /// WAL files removed by the covered-generation discard.
    pub wal_files_discarded: usize,
    /// False when the checkpoint was stopped early at a kill point.
    pub completed: bool,
}

/// How much of a chain [`load_chain`] managed to fold.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChainLoadReport {
    /// Links the manifest lists.
    pub links_total: usize,
    /// Links folded before damage (== `links_total` when clean).
    pub links_loaded: usize,
    /// Description of the first damaged link, if any.
    pub damage: Option<String>,
}

/// Per-series fingerprint of the sealed blocks the chain already covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fingerprint {
    blocks: usize,
    points: usize,
    end_ts: i64,
}

fn fingerprint(blocks: &[Block]) -> Fingerprint {
    Fingerprint {
        blocks: blocks.len(),
        points: blocks.iter().map(Block::len).sum(),
        end_ts: blocks.last().map_or(i64::MIN, |b| b.summary().end),
    }
}

/// Whether `blocks` still starts with the exact prefix `fp` described —
/// i.e. nothing the chain already serialized was evicted or rewritten.
fn prefix_matches(blocks: &[Block], fp: &Fingerprint) -> bool {
    if fp.blocks == 0 {
        return true;
    }
    if blocks.len() < fp.blocks {
        return false;
    }
    let prefix = &blocks[..fp.blocks];
    prefix.iter().map(Block::len).sum::<usize>() == fp.points
        && prefix[fp.blocks - 1].summary().end == fp.end_ts
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeltaMode {
    Append,
    Replace,
}

/// One decoded (or about-to-be-encoded) delta directory entry.
struct DeltaEntry {
    key: SeriesKey,
    mode: DeltaMode,
    start_block: u32,
    blocks: Vec<Block>,
}

fn base_name(chain_id: u64, seq: u64) -> String {
    format!("base-{chain_id:016x}-{seq:08}.snap")
}

fn delta_name(chain_id: u64, seq: u64) -> String {
    format!("delta-{chain_id:016x}-{seq:08}.snap")
}

/// Parses `base-…`/`delta-…` link file names back into (chain id, seq).
fn parse_link_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(".snap")?;
    let rest = stem
        .strip_prefix("base-")
        .or_else(|| stem.strip_prefix("delta-"))?;
    let (chain_id, seq) = rest.split_once('-')?;
    seq.parse::<u64>().ok()?;
    u64::from_str_radix(chain_id, 16).ok()
}

struct Manifest {
    chain_id: u64,
    links: Vec<u64>,
}

fn parse_manifest(bytes: &[u8]) -> Option<Manifest> {
    let fixed = CHAIN_MAGIC.len() + 4 + 8 + 4;
    if bytes.len() < fixed + 4 {
        return None;
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    if crc32(body) != u32::from_le_bytes(crc_bytes.try_into().ok()?) {
        return None;
    }
    if &body[..8] != CHAIN_MAGIC {
        return None;
    }
    if u32::from_le_bytes(body[8..12].try_into().ok()?) != MANIFEST_VERSION {
        return None;
    }
    let chain_id = u64::from_le_bytes(body[12..20].try_into().ok()?);
    let count = u32::from_le_bytes(body[20..24].try_into().ok()?) as usize;
    if count > 1 << 16 || body.len() != fixed + count * 8 {
        return None;
    }
    let links = body[fixed..]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    Some(Manifest { chain_id, links })
}

/// Reads the manifest; `Ok(None)` means no manifest exists (an empty
/// chain), `Err` means one exists but is damaged.
fn read_manifest(dir: &Path) -> Result<Option<Manifest>, SnapshotError> {
    let bytes = match std::fs::read(dir.join(MANIFEST_NAME)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    parse_manifest(&bytes)
        .map(Some)
        .ok_or_else(|| corrupt("chain manifest is damaged"))
}

fn write_manifest(dir: &Path, chain_id: u64, links: &[u64]) -> Result<(), SnapshotError> {
    let mut body = Vec::with_capacity(24 + links.len() * 8);
    body.extend_from_slice(CHAIN_MAGIC);
    body.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    body.extend_from_slice(&chain_id.to_le_bytes());
    body.extend_from_slice(&(links.len() as u32).to_le_bytes());
    for seq in links {
        body.extend_from_slice(&seq.to_le_bytes());
    }
    let crc = crc32(&body);
    replace_file(&dir.join(MANIFEST_NAME), |w| {
        w.write_all(&body)?;
        w.write_all(&crc.to_le_bytes())?;
        Ok(())
    })
}

/// Exports every series' sealed blocks, one worker per non-empty shard,
/// merged into key order (same consistency point as `save_sharded`).
/// Call after `db.flush()` so memtable contents are included.
fn export_all(db: &ShardedDb) -> Result<Vec<(SeriesKey, Vec<Block>)>, SnapshotError> {
    let mut all: Vec<(SeriesKey, Vec<Block>)> = Vec::new();
    crossbeam::thread::scope(|scope| -> Result<(), SnapshotError> {
        let mut handles = Vec::new();
        for shard in db.shards() {
            if shard.series_count() == 0 {
                continue;
            }
            handles.push(scope.spawn(
                move |_| -> Result<Vec<(SeriesKey, Vec<Block>)>, SnapshotError> {
                    let mut out = Vec::new();
                    for key in shard.list_series(&Selector::any()) {
                        validate_key(&key)?;
                        let blocks = shard.export_blocks(&key)?;
                        if !blocks.is_empty() {
                            out.push((key, blocks));
                        }
                    }
                    Ok(out)
                },
            ));
        }
        for handle in handles {
            all.extend(handle.join().expect("chain export worker panicked")?);
        }
        Ok(())
    })
    .expect("chain export scope failed")?;
    all.sort_by(|(a, _), (b, _)| a.cmp(b));
    Ok(all)
}

/// Computes the delta entries between the chain's fingerprints and a
/// fresh export: appends for cleanly-extended series, replaces for new
/// or rewritten ones, zero-block replaces (tombstones) for series the
/// store no longer holds.
fn diff(
    prev: &BTreeMap<SeriesKey, Fingerprint>,
    exports: &[(SeriesKey, Vec<Block>)],
) -> Vec<DeltaEntry> {
    let mut entries = Vec::new();
    for (key, blocks) in exports {
        match prev.get(key) {
            Some(fp) if prefix_matches(blocks, fp) => {
                if blocks.len() > fp.blocks {
                    entries.push(DeltaEntry {
                        key: key.clone(),
                        mode: DeltaMode::Append,
                        start_block: fp.blocks as u32,
                        blocks: blocks[fp.blocks..].to_vec(),
                    });
                }
            }
            _ => entries.push(DeltaEntry {
                key: key.clone(),
                mode: DeltaMode::Replace,
                start_block: 0,
                blocks: blocks.clone(),
            }),
        }
    }
    let live: std::collections::BTreeSet<&SeriesKey> = exports.iter().map(|(k, _)| k).collect();
    for key in prev.keys() {
        if !live.contains(key) {
            entries.push(DeltaEntry {
                key: key.clone(),
                mode: DeltaMode::Replace,
                start_block: 0,
                blocks: Vec::new(),
            });
        }
    }
    entries.sort_by(|a, b| a.key.cmp(&b.key));
    entries
}

fn write_delta(
    path: &Path,
    chain_id: u64,
    seq: u64,
    entries: &[DeltaEntry],
) -> Result<(), SnapshotError> {
    let encoded: Vec<(String, u8, u32, u32, Vec<u8>)> = entries
        .iter()
        .map(|e| {
            let mut payload = Vec::new();
            encode_blocks(&e.blocks, &mut payload);
            let mode = match e.mode {
                DeltaMode::Append => 0u8,
                DeltaMode::Replace => 1u8,
            };
            (e.key.to_string(), mode, e.start_block, e.blocks.len() as u32, payload)
        })
        .collect();
    let header_len = MAGIC.len() + 4 + 8 + 8 + 4;
    let dir_len: usize = encoded.iter().map(|(n, ..)| 4 + n.len() + 1 + 4 + 4 + 8 + 8).sum();
    replace_file(path, |w| {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION_V3.to_le_bytes())?;
        w.write_all(&chain_id.to_le_bytes())?;
        w.write_all(&seq.to_le_bytes())?;
        w.write_all(&(encoded.len() as u32).to_le_bytes())?;
        let mut offset = (header_len + dir_len) as u64;
        for (name, mode, start_block, block_count, payload) in &encoded {
            w.write_all(&(name.len() as u32).to_le_bytes())?;
            w.write_all(name.as_bytes())?;
            w.write_all(&[*mode])?;
            w.write_all(&start_block.to_le_bytes())?;
            w.write_all(&block_count.to_le_bytes())?;
            w.write_all(&offset.to_le_bytes())?;
            w.write_all(&(payload.len() as u64).to_le_bytes())?;
            offset += payload.len() as u64;
        }
        for (_, _, _, _, payload) in &encoded {
            w.write_all(payload)?;
        }
        Ok(())
    })
}

fn read_u8(r: &mut impl Read) -> Result<u8, SnapshotError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Decodes a delta link **fully** (header checks, bounded payload reads,
/// block decode) before anything is applied, so a damaged link never
/// half-applies.
fn read_delta(
    path: &Path,
    expect_chain: u64,
    expect_seq: u64,
) -> Result<Vec<DeltaEntry>, SnapshotError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    if read_header(&mut r)? != VERSION_V3 {
        return Err(corrupt("link is not a delta file"));
    }
    if read_u64(&mut r)? != expect_chain {
        return Err(corrupt("delta belongs to a foreign chain"));
    }
    if read_u64(&mut r)? != expect_seq {
        return Err(corrupt("delta sequence does not match the manifest"));
    }
    let series_count = read_u32(&mut r)?;
    if series_count > 1 << 20 {
        return Err(corrupt("implausible delta series count"));
    }
    let mut dir = Vec::with_capacity(series_count as usize);
    for _ in 0..series_count {
        let key = read_key(&mut r)?;
        let mode = match read_u8(&mut r)? {
            0 => DeltaMode::Append,
            1 => DeltaMode::Replace,
            _ => return Err(corrupt("unknown delta entry mode")),
        };
        let start_block = read_u32(&mut r)?;
        let block_count = read_u32(&mut r)?;
        let offset = read_u64(&mut r)?;
        let len = read_u64(&mut r)?;
        if len > 1 << 40 {
            return Err(corrupt("implausible delta payload length"));
        }
        dir.push((key, mode, start_block, block_count, offset, len));
    }
    let mut entries = Vec::with_capacity(dir.len());
    for (key, mode, start_block, block_count, offset, len) in dir {
        r.seek(SeekFrom::Start(offset))?;
        let mut bounded = (&mut r).take(len);
        let blocks = read_blocks(&mut bounded, block_count)?;
        if bounded.limit() != 0 {
            return Err(corrupt("delta payload shorter than directory claims"));
        }
        entries.push(DeltaEntry {
            key,
            mode,
            start_block,
            blocks,
        });
    }
    Ok(entries)
}

/// Decodes a base link (a plain v2 snapshot) fully into memory. Chain
/// folding trades the v2 loader's parallel streaming for whole-link
/// validation before apply — base links are read once at boot.
fn read_base(path: &Path) -> Result<Vec<DeltaEntry>, SnapshotError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    if read_header(&mut r)? != VERSION_V2 {
        return Err(corrupt("chain base is not a v2 snapshot"));
    }
    let directory = read_directory(&mut r)?;
    let mut entries = Vec::with_capacity(directory.len());
    for entry in directory {
        r.seek(SeekFrom::Start(entry.offset))?;
        let mut bounded = (&mut r).take(entry.len);
        let blocks = read_blocks(&mut bounded, entry.block_count)?;
        if bounded.limit() != 0 {
            return Err(corrupt("series payload shorter than directory claims"));
        }
        entries.push(DeltaEntry {
            key: entry.key,
            mode: DeltaMode::Replace,
            start_block: 0,
            blocks,
        });
    }
    Ok(entries)
}

fn sealed_block_count(db: &ShardedDb, key: &SeriesKey) -> usize {
    db.export_blocks(key).map(|b| b.len()).unwrap_or(0)
}

/// Folds a checkpoint-chain directory into a fresh [`ShardedDb`],
/// returning how much of the chain was loadable. Damage — a garbage
/// manifest, a missing or foreign delta, a torn payload — stops the fold
/// at the newest loadable prefix instead of failing: the WAL tail
/// (never discarded past the manifest's coverage) supplies the rest via
/// [`crate::persist::recover_sharded`].
pub fn load_chain_with_report(
    dir: &Path,
    config: ShardedConfig,
) -> Result<(ShardedDb, ChainLoadReport), SnapshotError> {
    let db = ShardedDb::with_config(config);
    let mut report = ChainLoadReport::default();
    let manifest = match read_manifest(dir) {
        Ok(Some(manifest)) => manifest,
        Ok(None) => return Ok((db, report)),
        Err(e) => {
            report.damage = Some(e.to_string());
            return Ok((db, report));
        }
    };
    report.links_total = manifest.links.len();
    for (index, &seq) in manifest.links.iter().enumerate() {
        let decoded = if index == 0 {
            read_base(&dir.join(base_name(manifest.chain_id, seq)))
        } else {
            read_delta(&dir.join(delta_name(manifest.chain_id, seq)), manifest.chain_id, seq)
        };
        let entries = match decoded {
            Ok(entries) => entries,
            Err(e) => {
                report.damage = Some(format!("link {index} (seq {seq}): {e}"));
                break;
            }
        };
        // Cross-check every append offset against the folded state
        // before touching it — entries are per-key disjoint, so the
        // checks are independent and the link applies all-or-nothing.
        let misaligned = entries.iter().any(|e| {
            e.mode == DeltaMode::Append
                && sealed_block_count(&db, &e.key) != e.start_block as usize
        });
        if misaligned {
            report.damage = Some(format!(
                "link {index} (seq {seq}): delta does not extend the folded chain"
            ));
            break;
        }
        let mut failed = None;
        for entry in entries {
            if entry.mode == DeltaMode::Replace {
                db.evict_series_before(&entry.key, i64::MAX);
            }
            if !entry.blocks.is_empty() {
                if let Err(e) = db.import_blocks(&entry.key, entry.blocks) {
                    failed = Some(format!("link {index} (seq {seq}): {e}"));
                    break;
                }
            }
        }
        if let Some(damage) = failed {
            report.damage = Some(damage);
            break;
        }
        report.links_loaded += 1;
    }
    Ok((db, report))
}

/// [`load_chain_with_report`] without the report — the form
/// [`crate::persist::load_sharded`] dispatches to for chain directories.
pub fn load_chain(dir: &Path, config: ShardedConfig) -> Result<ShardedDb, SnapshotError> {
    Ok(load_chain_with_report(dir, config)?.0)
}

/// The writer side of an incremental checkpoint chain: owns the chain
/// directory, the live manifest state, and the per-series fingerprints
/// change detection works from. One instance per store; callers
/// serialize checkpoints (the server holds it behind a mutex and the
/// snapshot gate).
pub struct CheckpointChain {
    dir: PathBuf,
    max_depth: usize,
    chain_id: u64,
    links: Vec<u64>,
    series: Option<BTreeMap<SeriesKey, Fingerprint>>,
    next_chain_id: u64,
}

impl CheckpointChain {
    /// Opens (or creates) a chain directory. `max_depth` is the number
    /// of delta links tolerated before a checkpoint re-bases (writes a
    /// fresh full base and drops the old chain); it must be at least 1.
    ///
    /// Fingerprints do not survive restarts, so the first checkpoint of
    /// a fresh instance always re-bases.
    pub fn open(dir: &Path, max_depth: usize) -> Result<Self, SnapshotError> {
        if max_depth == 0 {
            return Err(SnapshotError::Tsdb(TsdbError::InvalidParameter {
                name: "max_depth",
                message: "the checkpoint chain depth must be at least 1",
            }));
        }
        std::fs::create_dir_all(dir)?;
        // New chain ids must never collide with any file already in the
        // directory, including orphans from chains whose manifest is
        // gone — scan everything, not just the manifest.
        let mut highest = 0u64;
        for entry in std::fs::read_dir(dir)? {
            let name = entry?.file_name();
            if let Some(chain_id) = name.to_str().and_then(parse_link_name) {
                highest = highest.max(chain_id);
            }
        }
        let (chain_id, links) = match read_manifest(dir) {
            Ok(Some(manifest)) => {
                highest = highest.max(manifest.chain_id);
                (manifest.chain_id, manifest.links)
            }
            // No manifest, or a damaged one: the first checkpoint
            // re-bases under a fresh id anyway.
            _ => (0, Vec::new()),
        };
        Ok(Self {
            dir: dir.to_path_buf(),
            max_depth,
            chain_id,
            links,
            series: None,
            next_chain_id: highest + 1,
        })
    }

    /// The chain directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Links currently in the chain (base + deltas).
    pub fn links(&self) -> usize {
        self.links.len()
    }

    /// Takes one incremental checkpoint: rotate `wal` (if present),
    /// write the delta (or re-base), commit the manifest, discard the
    /// covered WAL generations. See the module docs for the ordering's
    /// crash-safety argument.
    pub fn checkpoint(
        &mut self,
        db: &ShardedDb,
        wal: Option<&Wal>,
    ) -> Result<ChainCheckpointReport, SnapshotError> {
        self.checkpoint_until(db, wal, None)
    }

    /// [`Self::checkpoint`] with a kill switch: when `stop_after` names
    /// a step, the checkpoint returns (with `completed == false`) right
    /// after that step, simulating a crash for the fault-injection
    /// tests. The caller must then discard this instance, exactly as a
    /// real crash would.
    pub fn checkpoint_until(
        &mut self,
        db: &ShardedDb,
        wal: Option<&Wal>,
        stop_after: Option<ChainStep>,
    ) -> Result<ChainCheckpointReport, SnapshotError> {
        let stop = |step: ChainStep| stop_after == Some(step);
        let mut report = ChainCheckpointReport {
            links: self.links.len(),
            ..ChainCheckpointReport::default()
        };
        if let Some(wal) = wal {
            report.boundary = Some(wal.rotate()?);
        }
        if stop(ChainStep::Rotated) {
            return Ok(report);
        }

        db.flush()?;
        let exports = export_all(db)?;
        let fingerprints: BTreeMap<SeriesKey, Fingerprint> = exports
            .iter()
            .map(|(key, blocks)| (key.clone(), fingerprint(blocks)))
            .collect();

        let deltas = self.links.len().saturating_sub(1);
        if self.series.is_none() || self.links.is_empty() || deltas >= self.max_depth {
            // Re-base: a fresh full snapshot under a fresh chain id.
            report.rebased = true;
            report.link_written = true;
            report.series_written = exports.len();
            let chain_id = self.next_chain_id;
            let base = self.dir.join(base_name(chain_id, 0));
            let encoded: Vec<EncodedSeries> = exports
                .iter()
                .map(|(key, blocks)| {
                    let mut payload = Vec::new();
                    encode_blocks(blocks, &mut payload);
                    (key.clone(), blocks.len() as u32, payload)
                })
                .collect();
            replace_file(&base, |w| write_v2(&encoded, w))?;
            report.bytes_written = std::fs::metadata(&base)?.len();
            if stop(ChainStep::BaseWritten) {
                return Ok(report);
            }

            write_manifest(&self.dir, chain_id, &[0])?;
            self.chain_id = chain_id;
            self.links = vec![0];
            self.next_chain_id = chain_id + 1;
            self.series = Some(fingerprints);
            report.links = 1;
            if stop(ChainStep::ManifestWritten) {
                return Ok(report);
            }

            self.remove_other_chains()?;
            if stop(ChainStep::OldChainRemoved) {
                return Ok(report);
            }
        } else {
            let entries = diff(self.series.as_ref().expect("checked above"), &exports);
            if entries.is_empty() {
                // Nothing changed: no link, but the rotation boundary is
                // still fully covered — fall through to the discard.
                self.series = Some(fingerprints);
            } else {
                let seq = self.links.last().copied().unwrap_or(0) + 1;
                let path = self.dir.join(delta_name(self.chain_id, seq));
                report.link_written = true;
                report.series_written = entries.len();
                write_delta(&path, self.chain_id, seq, &entries)?;
                report.bytes_written = std::fs::metadata(&path)?.len();
                if stop(ChainStep::DeltaWritten) {
                    return Ok(report);
                }

                let mut links = self.links.clone();
                links.push(seq);
                write_manifest(&self.dir, self.chain_id, &links)?;
                self.links = links;
                self.series = Some(fingerprints);
                report.links = self.links.len();
                if stop(ChainStep::ManifestWritten) {
                    return Ok(report);
                }
            }
        }

        if let (Some(wal), Some(boundary)) = (wal, report.boundary) {
            report.wal_files_discarded = wal.discard_before(boundary)?;
        }
        report.links = self.links.len();
        if stop(ChainStep::Discarded) {
            return Ok(report);
        }
        report.completed = true;
        Ok(report)
    }

    /// Deletes every link file not belonging to the current chain —
    /// the previous chain after a re-base, plus any orphans earlier
    /// kills left behind.
    fn remove_other_chains(&self) -> Result<(), SnapshotError> {
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some(chain_id) = name.to_str().and_then(parse_link_name) {
                if chain_id != self.chain_id {
                    std::fs::remove_file(entry.path())?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::DataPoint;
    use crate::query::RangeQuery;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "asap_chain_{tag}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn full() -> RangeQuery {
        RangeQuery::raw(i64::MIN + 1, i64::MAX)
    }

    fn db() -> ShardedDb {
        ShardedDb::with_config(ShardedConfig::new(3, 16))
    }

    fn write_points(db: &ShardedDb, host: &str, t0: i64, count: usize) {
        let key = SeriesKey::metric("cpu").with_tag("host", host);
        for i in 0..count {
            db.write(&key, DataPoint::new(t0 + i as i64 * 5, (i as f64).sin()))
                .unwrap();
        }
    }

    fn assert_fold_matches(dir: &Path, db: &ShardedDb) {
        let (folded, report) = load_chain_with_report(dir, ShardedConfig::new(2, 16)).unwrap();
        assert_eq!(report.damage, None, "clean chain reported damage");
        assert_eq!(report.links_loaded, report.links_total);
        assert_eq!(
            folded.query_selector(&Selector::any(), full()).unwrap(),
            db.query_selector(&Selector::any(), full()).unwrap()
        );
    }

    fn link_files(dir: &Path) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| parse_link_name(n).is_some())
            .collect();
        names.sort();
        names
    }

    #[test]
    fn chain_round_trips_incrementally() {
        let dir = temp_dir("roundtrip");
        let db = db();
        let mut chain = CheckpointChain::open(&dir, 8).unwrap();

        write_points(&db, "a", 0, 100);
        let first = chain.checkpoint(&db, None).unwrap();
        assert!(first.rebased && first.completed && first.link_written);
        assert_fold_matches(&dir, &db);

        write_points(&db, "a", 1_000, 50);
        write_points(&db, "b", 0, 40);
        let second = chain.checkpoint(&db, None).unwrap();
        assert!(!second.rebased && second.link_written);
        assert_eq!(second.series_written, 2);
        assert_eq!(second.links, 2);
        assert_fold_matches(&dir, &db);

        write_points(&db, "b", 1_000, 30);
        let third = chain.checkpoint(&db, None).unwrap();
        assert_eq!(third.series_written, 1, "only the changed series rides the delta");
        assert_eq!(third.links, 3);
        assert_fold_matches(&dir, &db);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unchanged_checkpoint_writes_no_link() {
        let dir = temp_dir("idle");
        let db = db();
        write_points(&db, "a", 0, 64);
        let mut chain = CheckpointChain::open(&dir, 8).unwrap();
        chain.checkpoint(&db, None).unwrap();
        let idle = chain.checkpoint(&db, None).unwrap();
        assert!(idle.completed && !idle.link_written);
        assert_eq!(idle.links, 1, "idle checkpoints must not grow the chain");
        assert_fold_matches(&dir, &db);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_cost_tracks_write_activity_not_total_data() {
        let dir = temp_dir("cost");
        let db = db();
        write_points(&db, "a", 0, 4_000);
        let mut chain = CheckpointChain::open(&dir, 8).unwrap();
        let base = chain.checkpoint(&db, None).unwrap();

        write_points(&db, "a", 100_000, 32);
        let delta = chain.checkpoint(&db, None).unwrap();
        assert!(
            delta.bytes_written * 10 < base.bytes_written,
            "delta ({} bytes) should be far below the base ({} bytes)",
            delta.bytes_written,
            base.bytes_written
        );
        assert_fold_matches(&dir, &db);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rebase_at_depth_resets_the_chain_and_removes_old_files() {
        let dir = temp_dir("rebase");
        let db = db();
        write_points(&db, "a", 0, 32);
        let mut chain = CheckpointChain::open(&dir, 2).unwrap();
        chain.checkpoint(&db, None).unwrap();
        for round in 0..2 {
            write_points(&db, "a", 10_000 * (round + 1), 32);
            let report = chain.checkpoint(&db, None).unwrap();
            assert!(!report.rebased);
        }
        assert_eq!(chain.links(), 3);

        write_points(&db, "a", 50_000, 32);
        let rebase = chain.checkpoint(&db, None).unwrap();
        assert!(rebase.rebased);
        assert_eq!(chain.links(), 1);
        let files = link_files(&dir);
        assert_eq!(files.len(), 1, "old chain files must be gone: {files:?}");
        assert!(files[0].starts_with("base-"));
        assert_fold_matches(&dir, &db);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tombstone_propagates_full_eviction() {
        let dir = temp_dir("tombstone");
        let db = db();
        write_points(&db, "a", 0, 64);
        write_points(&db, "b", 0, 64);
        let mut chain = CheckpointChain::open(&dir, 8).unwrap();
        chain.checkpoint(&db, None).unwrap();

        let key = SeriesKey::metric("cpu").with_tag("host", "a");
        db.evict_series_before(&key, i64::MAX);
        chain.checkpoint(&db, None).unwrap();
        let (folded, _) = load_chain_with_report(&dir, ShardedConfig::new(2, 16)).unwrap();
        assert!(!folded.list_series(&Selector::any()).contains(&key));
        assert_fold_matches(&dir, &db);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_eviction_triggers_a_replace_not_a_bad_append() {
        let dir = temp_dir("evict");
        let db = db();
        write_points(&db, "a", 0, 200);
        let mut chain = CheckpointChain::open(&dir, 8).unwrap();
        chain.checkpoint(&db, None).unwrap();

        // Drop the oldest blocks and add new data: the covered prefix no
        // longer matches, so the delta must replace the series.
        let key = SeriesKey::metric("cpu").with_tag("host", "a");
        assert!(db.evict_series_before(&key, 300) > 0);
        write_points(&db, "a", 10_000, 20);
        chain.checkpoint(&db, None).unwrap();
        assert_fold_matches(&dir, &db);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_and_damaged_manifest_fold_to_empty() {
        let dir = temp_dir("empty");
        let (folded, report) = load_chain_with_report(&dir, ShardedConfig::default()).unwrap();
        assert_eq!(folded.series_count(), 0);
        assert_eq!(report.links_total, 0);
        assert!(report.damage.is_none());

        std::fs::write(dir.join(MANIFEST_NAME), b"not a manifest").unwrap();
        let (folded, report) = load_chain_with_report(&dir, ShardedConfig::default()).unwrap();
        assert_eq!(folded.series_count(), 0);
        assert!(report.damage.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_sharded_dispatches_chain_directories() {
        let dir = temp_dir("dispatch");
        let db = db();
        write_points(&db, "a", 0, 80);
        let mut chain = CheckpointChain::open(&dir, 8).unwrap();
        chain.checkpoint(&db, None).unwrap();
        write_points(&db, "a", 10_000, 10);
        chain.checkpoint(&db, None).unwrap();

        let loaded = crate::persist::load_sharded(&dir, ShardedConfig::new(2, 16)).unwrap();
        assert_eq!(
            loaded.query_selector(&Selector::any(), full()).unwrap(),
            db.query_selector(&Selector::any(), full()).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopened_chain_rebases_first() {
        let dir = temp_dir("reopen");
        let db = db();
        write_points(&db, "a", 0, 64);
        let mut chain = CheckpointChain::open(&dir, 8).unwrap();
        chain.checkpoint(&db, None).unwrap();
        write_points(&db, "a", 10_000, 10);
        chain.checkpoint(&db, None).unwrap();
        let old_files = link_files(&dir);
        assert_eq!(old_files.len(), 2);
        drop(chain);

        // A fresh instance has no fingerprints: its first checkpoint
        // must write a new base under a new chain id, then clean up.
        let mut chain = CheckpointChain::open(&dir, 8).unwrap();
        assert_eq!(chain.links(), 2, "open reads the existing manifest");
        write_points(&db, "a", 20_000, 10);
        let report = chain.checkpoint(&db, None).unwrap();
        assert!(report.rebased);
        let files = link_files(&dir);
        assert_eq!(files.len(), 1);
        assert_ne!(files, old_files);
        assert_fold_matches(&dir, &db);
        std::fs::remove_dir_all(&dir).ok();
    }
}
