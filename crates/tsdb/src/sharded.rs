//! Horizontally partitioned engine front-end: N [`Shard`]s + parallel
//! query fan-out.
//!
//! The paper's deployment story (§2) is a dashboard backend smoothing
//! *many* series for *many* users at once. A single series map — however
//! fine its per-series locks — funnels every write and every query of the
//! process through one lock's cache line. [`ShardedDb`] removes that
//! funnel:
//!
//! * series are partitioned across `shards` independent [`Shard`]s by a
//!   deterministic, tag-aware FNV-1a hash of the full series identity
//!   (metric name *and* sorted tags), so `cpu{host=a}` and `cpu{host=b}`
//!   land on different shards and their writers never touch the same map
//!   lock;
//! * ingest (writes) and smoothing queries (reads) proceed concurrently —
//!   each shard is guarded by a `RwLock`, and cross-shard operations touch
//!   one shard at a time;
//! * multi-series smoothing queries fan out across shards on
//!   `crossbeam`-scoped worker threads ([`ShardedDb::smooth_query_selector`]),
//!   then merge per-shard results into deterministic key order.
//!
//! Because both front-ends execute the identical [`Shard`] code, a
//! `ShardedDb` answers every query byte-for-byte the same as a single
//! [`Tsdb`] holding the same points — the property the cross-crate test
//! suite pins down with a single-shard oracle.

use std::sync::Arc;

use asap_core::Asap;

use crate::block::Block;
use crate::db::{SeriesStats, Tsdb, TsdbConfig};
use crate::error::TsdbError;
use crate::point::DataPoint;
use crate::query::{RangeQuery, SeriesReader, SeriesWriter};
use crate::series::RangeSummary;
use crate::shard::Shard;
use crate::smooth::{smooth_query, SmoothQueryError, SmoothedFrame};
use crate::tags::{Selector, SeriesKey};

/// Configuration of a [`ShardedDb`].
///
/// Embeds the whole per-shard [`TsdbConfig`] (rather than copying its
/// fields) so every storage knob automatically applies to each shard —
/// keeping sharded behavior identical to a single-shard [`Tsdb`] built
/// from the same `storage` config.
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of storage partitions (default 8). More shards spread lock
    /// and cache contention across writers; a power of two near the
    /// writer thread count is a good default.
    pub shards: usize,
    /// The engine configuration every shard runs with.
    pub storage: TsdbConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            storage: TsdbConfig::default(),
        }
    }
}

impl ShardedConfig {
    /// A configuration with `shards` partitions sealing blocks of
    /// `block_capacity` points.
    pub fn new(shards: usize, block_capacity: usize) -> Self {
        Self {
            shards,
            storage: TsdbConfig { block_capacity },
        }
    }
}

/// A sharded, thread-safe time-series engine mirroring the [`Tsdb`] API.
///
/// Cheap to clone (shards are reference-counted); clones share storage.
///
/// # Example
///
/// ```
/// use asap_tsdb::{DataPoint, RangeQuery, SeriesKey, ShardedConfig, ShardedDb};
///
/// let db = ShardedDb::with_config(ShardedConfig::new(4, 256));
/// for host in ["a", "b", "c"] {
///     let key = SeriesKey::metric("cpu").with_tag("host", host);
///     for i in 0..100 {
///         db.write(&key, DataPoint::new(i, i as f64)).unwrap();
///     }
/// }
/// assert_eq!(db.series_count(), 3);
/// let key = SeriesKey::metric("cpu").with_tag("host", "b");
/// assert_eq!(db.query(&key, RangeQuery::raw(0, 10)).unwrap().len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedDb {
    shards: Arc<[Shard]>,
}

impl Default for ShardedDb {
    fn default() -> Self {
        Self::with_config(ShardedConfig::default())
    }
}

/// FNV-1a over the full series identity: metric name and every sorted
/// `key=value` tag pair, with distinct separators so `a`+`bc` and `ab`+`c`
/// cannot collide structurally. Deterministic across runs and platforms —
/// shard placement is stable, so tests and snapshots can rely on it.
fn route_hash(key: &SeriesKey) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    eat(key.metric_name().as_bytes());
    for (k, v) in key.tags() {
        eat(&[0xFF]);
        eat(k.as_bytes());
        eat(&[0xFE]);
        eat(v.as_bytes());
    }
    h
}

impl ShardedDb {
    /// Creates an engine with the default configuration (8 shards).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine with the given configuration.
    ///
    /// # Panics
    /// Panics if `config.shards == 0`.
    pub fn with_config(config: ShardedConfig) -> Self {
        assert!(config.shards > 0, "shard count must be positive");
        let shards: Vec<Shard> = (0..config.shards)
            .map(|_| Shard::new(config.storage))
            .collect();
        Self {
            shards: shards.into(),
        }
    }

    /// Number of storage partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The underlying shard array. Crate-internal: the operations layer —
    /// the ingest pipeline, parallel snapshot persistence, and per-shard
    /// retention — fans its workers out over this.
    pub(crate) fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Ingests a line-protocol document through the concurrent pipeline
    /// (parser workers → per-shard bounded channels → per-shard writers);
    /// see [`mod@crate::ingest`] for topology, backpressure, and the
    /// report's semantics.
    pub fn ingest(
        &self,
        text: &str,
        default_ts: i64,
        config: &crate::ingest::IngestConfig,
    ) -> Result<crate::ingest::IngestReport, TsdbError> {
        crate::ingest::pipeline_ingest(self, text, default_ts, config)
    }

    /// Drains `reader` to end of stream through the streaming pipeline in
    /// bounded memory; see [`crate::ingest::ingest_reader`] for chunking,
    /// reorder-stage, and report semantics.
    pub fn ingest_reader<R: std::io::Read>(
        &self,
        reader: R,
        default_ts: i64,
        config: &crate::ingest::IngestConfig,
    ) -> Result<crate::ingest::IngestReport, TsdbError> {
        crate::ingest::ingest_reader(self, reader, default_ts, config)
    }

    /// Opens a long-running streaming ingest handle: feed byte pieces as
    /// they arrive, poll a live [`crate::ingest::StreamProgress`], and
    /// `finish()` to flush the reorder stages and collect the final
    /// report — the shape a socket listener plugs into. See
    /// [`crate::ingest::StreamIngestor`].
    pub fn stream_ingestor(
        &self,
        default_ts: i64,
        config: crate::ingest::IngestConfig,
    ) -> Result<crate::ingest::StreamIngestor, TsdbError> {
        crate::ingest::StreamIngestor::new(self, default_ts, config)
    }

    /// Writes a version-2 snapshot of the whole store to `path`, shards
    /// serialized in parallel; see [`crate::persist::save_sharded`].
    pub fn save(&self, path: &std::path::Path) -> Result<(), crate::persist::SnapshotError> {
        crate::persist::save_sharded(self, path)
    }

    /// Loads a version-1 or version-2 snapshot from `path` into a fresh
    /// engine with `config` (series re-route to the new shard count); see
    /// [`crate::persist::load_sharded`].
    pub fn load(
        path: &std::path::Path,
        config: ShardedConfig,
    ) -> Result<Self, crate::persist::SnapshotError> {
        crate::persist::load_sharded(path, config)
    }

    /// The shard index `key` routes to — deterministic for a fixed shard
    /// count (tag-aware FNV-1a of metric + tags, mod shard count).
    pub fn shard_of(&self, key: &SeriesKey) -> usize {
        (route_hash(key) % self.shards.len() as u64) as usize
    }

    fn shard(&self, key: &SeriesKey) -> &Shard {
        &self.shards[self.shard_of(key)]
    }

    /// Number of distinct series across all shards.
    pub fn series_count(&self) -> usize {
        self.shards.iter().map(Shard::series_count).sum()
    }

    /// Aggregate occupancy of every shard, in shard-index order — the
    /// per-shard series/point/watermark counters live ops endpoints
    /// (`STATS`/`HEALTH`) report. Index `i` of the result describes
    /// shard `i` (the target of [`ShardedDb::shard_of`]).
    pub fn shard_occupancy(&self) -> Vec<crate::shard::ShardOccupancy> {
        self.shards.iter().map(Shard::occupancy).collect()
    }

    /// Writes one point, creating the series on first touch.
    pub fn write(&self, key: &SeriesKey, point: DataPoint) -> Result<(), TsdbError> {
        self.shard(key).write(key, point)
    }

    /// Writes a batch of points to one series (points must be in order).
    pub fn write_batch(&self, key: &SeriesKey, points: &[DataPoint]) -> Result<(), TsdbError> {
        self.shard(key).write_batch(key, points)
    }

    /// Runs a query against one series.
    pub fn query(&self, key: &SeriesKey, query: RangeQuery) -> Result<Vec<DataPoint>, TsdbError> {
        self.shard(key).query(key, query)
    }

    /// Runs a query against every series matching `selector`, returning
    /// `(key, shaped points)` pairs in key order — the same order a
    /// single-shard [`Tsdb`] returns.
    pub fn query_selector(
        &self,
        selector: &Selector,
        query: RangeQuery,
    ) -> Result<Vec<(SeriesKey, Vec<DataPoint>)>, TsdbError> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            out.extend(shard.query_selector(selector, query)?);
        }
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        Ok(out)
    }

    /// Lists keys of series matching `selector`, in key order across all
    /// shards.
    pub fn list_series(&self, selector: &Selector) -> Vec<SeriesKey> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            out.extend(shard.list_series(selector));
        }
        out.sort();
        out
    }

    /// Seals every series' memtable in every shard.
    pub fn flush(&self) -> Result<(), TsdbError> {
        for shard in self.shards.iter() {
            shard.flush()?;
        }
        Ok(())
    }

    /// Evicts sealed blocks older than `cutoff` from every series and
    /// drops series left completely empty. Returns total evicted points.
    pub fn evict_before(&self, cutoff: i64) -> usize {
        self.shards.iter().map(|s| s.evict_before(cutoff)).sum()
    }

    /// Evicts sealed blocks older than `cutoff` from one series, dropping
    /// it if left empty. Returns evicted points; missing series evict
    /// nothing.
    pub fn evict_series_before(&self, key: &SeriesKey, cutoff: i64) -> usize {
        self.shard(key).evict_series_before(key, cutoff)
    }

    /// Summary statistics of one series over `[start, end)`; see
    /// [`Tsdb::summarize`].
    pub fn summarize(
        &self,
        key: &SeriesKey,
        start: i64,
        end: i64,
    ) -> Result<Option<RangeSummary>, TsdbError> {
        self.shard(key).summarize(key, start, end)
    }

    /// Returns clones of one series' sealed blocks; call
    /// [`ShardedDb::flush`] first to include memtable contents.
    pub fn export_blocks(&self, key: &SeriesKey) -> Result<Vec<Block>, TsdbError> {
        self.shard(key).export_blocks(key)
    }

    /// Imports pre-sealed blocks into a series (snapshot restore),
    /// creating it if needed. Blocks must be strictly after existing data.
    pub fn import_blocks(&self, key: &SeriesKey, blocks: Vec<Block>) -> Result<(), TsdbError> {
        self.shard(key).import_blocks(key, blocks)
    }

    /// Per-series occupancy statistics, in key order across all shards.
    pub fn stats(&self) -> Vec<SeriesStats> {
        let mut out: Vec<SeriesStats> = self.shards.iter().flat_map(Shard::stats).collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }

    /// Smooths every series matching `selector` over `[start, end)` at
    /// grid step `bucket`, fanning the per-series ASAP searches out across
    /// shards on scoped worker threads (one worker per non-empty shard).
    ///
    /// The result is deterministic: per-shard frames are merged into key
    /// order, and any per-series error is reported for the first failing
    /// key in that same order — exactly what the serial
    /// [`crate::smooth::smooth_query_selector`] over a single-shard store
    /// produces.
    pub fn smooth_query_selector(
        &self,
        selector: &Selector,
        asap: &Asap,
        start: i64,
        end: i64,
        bucket: i64,
    ) -> Result<Vec<(SeriesKey, SmoothedFrame)>, SmoothQueryError> {
        type KeyedResult = (SeriesKey, Result<SmoothedFrame, SmoothQueryError>);
        let per_shard_keys: Vec<Vec<SeriesKey>> = self
            .shards
            .iter()
            .map(|s| s.list_series(selector))
            .collect();
        let mut keyed: Vec<KeyedResult> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (shard, keys) in self.shards.iter().zip(&per_shard_keys) {
                if keys.is_empty() {
                    continue;
                }
                handles.push(scope.spawn(move |_| {
                    keys.iter()
                        .map(|key| {
                            let frame = smooth_query(shard, key, asap, start, end, bucket);
                            (key.clone(), frame)
                        })
                        .collect::<Vec<KeyedResult>>()
                }));
            }
            for handle in handles {
                keyed.extend(handle.join().expect("smoothing worker panicked"));
            }
        })
        .expect("crossbeam scope failed");
        keyed.sort_by(|(a, _), (b, _)| a.cmp(b));
        keyed
            .into_iter()
            .map(|(key, frame)| frame.map(|f| (key, f)))
            .collect()
    }

    /// Copies every series of a single-shard [`Tsdb`] into a fresh
    /// `ShardedDb` with the given configuration — a rebalancing migration
    /// (seals source memtables first, then moves sealed blocks; cheap, as
    /// block payloads are reference-counted).
    pub fn from_tsdb(db: &Tsdb, config: ShardedConfig) -> Result<Self, TsdbError> {
        db.flush()?;
        let sharded = Self::with_config(config);
        for key in db.list_series(&Selector::any()) {
            sharded.import_blocks(&key, db.export_blocks(&key)?)?;
        }
        Ok(sharded)
    }
}

impl SeriesReader for ShardedDb {
    fn read_series(&self, key: &SeriesKey, query: RangeQuery) -> Result<Vec<DataPoint>, TsdbError> {
        self.query(key, query)
    }

    fn matching_series(&self, selector: &Selector) -> Vec<SeriesKey> {
        self.list_series(selector)
    }
}

impl SeriesWriter for ShardedDb {
    fn write_point(&self, key: &SeriesKey, point: DataPoint) -> Result<(), TsdbError> {
        self.write(key, point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Aggregator;

    fn cpu(host: &str) -> SeriesKey {
        SeriesKey::metric("cpu").with_tag("host", host)
    }

    /// Seeds the same data into a sharded and a single-shard engine.
    fn twin_dbs(shards: usize, hosts: usize, n: i64) -> (ShardedDb, Tsdb) {
        let sharded = ShardedDb::with_config(ShardedConfig::new(shards, 32));
        let oracle = Tsdb::with_config(TsdbConfig { block_capacity: 32 });
        for h in 0..hosts {
            let key = cpu(&format!("h{h}"));
            for i in 0..n {
                let p = DataPoint::new(i, (i as f64 / 7.0).sin() + h as f64);
                sharded.write(&key, p).unwrap();
                oracle.write(&key, p).unwrap();
            }
        }
        (sharded, oracle)
    }

    #[test]
    fn routing_is_deterministic_and_tag_aware() {
        let db = ShardedDb::with_config(ShardedConfig::new(16, 64));
        let a = cpu("a");
        assert_eq!(db.shard_of(&a), db.shard_of(&a.clone()));
        // Tag order does not matter (keys are canonical)…
        let x = SeriesKey::metric("m").with_tag("p", "1").with_tag("q", "2");
        let y = SeriesKey::metric("m").with_tag("q", "2").with_tag("p", "1");
        assert_eq!(db.shard_of(&x), db.shard_of(&y));
        // …but tag *values* do: distinct hosts spread over shards.
        let placements: std::collections::BTreeSet<usize> =
            (0..64).map(|h| db.shard_of(&cpu(&format!("h{h}")))).collect();
        assert!(placements.len() > 1, "64 hosts all hashed to one shard");
    }

    #[test]
    fn zero_shards_rejected() {
        let result = std::panic::catch_unwind(|| {
            ShardedDb::with_config(ShardedConfig::new(0, 64))
        });
        assert!(result.is_err());
    }

    #[test]
    fn mirrors_single_shard_results() {
        let (sharded, oracle) = twin_dbs(4, 6, 200);
        assert_eq!(sharded.series_count(), oracle.series_count());
        let q = RangeQuery::raw(0, 200);
        for h in 0..6 {
            let key = cpu(&format!("h{h}"));
            assert_eq!(sharded.query(&key, q).unwrap(), oracle.query(&key, q).unwrap());
            assert_eq!(
                sharded.summarize(&key, 10, 150).unwrap(),
                oracle.summarize(&key, 10, 150).unwrap()
            );
        }
        let sel = Selector::metric("cpu");
        assert_eq!(
            sharded.query_selector(&sel, q).unwrap(),
            oracle.query_selector(&sel, q).unwrap()
        );
        assert_eq!(sharded.list_series(&sel), oracle.list_series(&sel));
        sharded.flush().unwrap();
        oracle.flush().unwrap();
        assert_eq!(sharded.stats(), oracle.stats());
    }

    #[test]
    fn bucketed_queries_mirror_too() {
        let (sharded, oracle) = twin_dbs(3, 4, 120);
        let q = RangeQuery::bucketed(0, 120, 10).aggregate(Aggregator::Max);
        assert_eq!(
            sharded.query_selector(&Selector::any(), q).unwrap(),
            oracle.query_selector(&Selector::any(), q).unwrap()
        );
    }

    #[test]
    fn eviction_mirrors_and_drops_empty_series() {
        let (sharded, oracle) = twin_dbs(4, 5, 64);
        sharded.flush().unwrap();
        oracle.flush().unwrap();
        assert_eq!(sharded.evict_before(32), oracle.evict_before(32));
        assert_eq!(sharded.evict_before(i64::MAX), oracle.evict_before(i64::MAX));
        assert_eq!(sharded.series_count(), 0);
        // Per-series eviction on a missing key evicts nothing.
        assert_eq!(sharded.evict_series_before(&cpu("ghost"), i64::MAX), 0);
    }

    #[test]
    fn shard_occupancy_totals_match_store_and_track_watermarks() {
        let (sharded, oracle) = twin_dbs(4, 6, 50);
        sharded.flush().unwrap();
        let occ = sharded.shard_occupancy();
        assert_eq!(occ.len(), 4);
        assert_eq!(occ.iter().map(|o| o.series).sum::<usize>(), 6);
        assert_eq!(
            occ.iter().map(|o| o.points).sum::<usize>(),
            oracle.stats().iter().map(|s| s.points).sum::<usize>()
        );
        // Every non-empty shard's watermark is the newest written ts.
        for o in &occ {
            if o.series > 0 {
                assert_eq!(o.watermark, Some(49));
                assert!(o.blocks > 0, "flushed shards hold sealed blocks");
                assert!(o.compressed_bytes > 0);
            } else {
                assert_eq!(*o, crate::shard::ShardOccupancy::default());
            }
        }
        // Occupancy is positional: shard_of(key) indexes into it.
        let key = cpu("h0");
        assert!(occ[sharded.shard_of(&key)].series > 0);
    }

    #[test]
    fn unknown_series_errors_like_tsdb() {
        let db = ShardedDb::new();
        let err = db.query(&cpu("ghost"), RangeQuery::raw(0, 10)).unwrap_err();
        assert!(matches!(err, TsdbError::SeriesNotFound { .. }));
    }

    #[test]
    fn from_tsdb_migrates_all_points() {
        let (_, oracle) = twin_dbs(1, 5, 300);
        let migrated = ShardedDb::from_tsdb(
            &oracle,
            ShardedConfig::new(4, 32),
        )
        .unwrap();
        let q = RangeQuery::raw(0, 300);
        assert_eq!(
            migrated.query_selector(&Selector::any(), q).unwrap(),
            oracle.query_selector(&Selector::any(), q).unwrap()
        );
    }

    #[test]
    fn parallel_smoothing_matches_serial_and_is_deterministic() {
        let sharded = ShardedDb::with_config(ShardedConfig::new(4, 256));
        let oracle = Tsdb::with_config(TsdbConfig { block_capacity: 256 });
        for h in 0..6 {
            let key = cpu(&format!("h{h}"));
            for i in 0..2000i64 {
                let v = (std::f64::consts::TAU * i as f64 / (40.0 + h as f64 * 17.0)).sin()
                    + 0.4 * if i % 2 == 0 { 1.0 } else { -1.0 };
                let p = DataPoint::new(i * 5, v);
                sharded.write(&key, p).unwrap();
                oracle.write(&key, p).unwrap();
            }
        }
        let asap = Asap::builder().resolution(200).build();
        let sel = Selector::metric("cpu");
        let parallel = sharded
            .smooth_query_selector(&sel, &asap, 0, 10_000, 5)
            .unwrap();
        let serial =
            crate::smooth::smooth_query_selector(&oracle, &sel, &asap, 0, 10_000, 5).unwrap();
        assert_eq!(parallel.len(), 6);
        assert_eq!(parallel, serial, "shard-parallel ≡ serial oracle");
        // Re-running is bit-identical (no scheduling nondeterminism leaks).
        let again = sharded
            .smooth_query_selector(&sel, &asap, 0, 10_000, 5)
            .unwrap();
        assert_eq!(parallel, again);
    }

    #[test]
    fn parallel_smoothing_reports_first_failing_key_in_key_order() {
        let sharded = ShardedDb::with_config(ShardedConfig::new(4, 64));
        // h0 has data only in [5000, 6000): smoothing [0, 1000) fails for
        // it with Empty; other hosts succeed.
        for i in 0..100 {
            sharded
                .write(&cpu("h0"), DataPoint::new(5000 + i, 1.0))
                .unwrap();
            sharded.write(&cpu("h1"), DataPoint::new(i, 1.0)).unwrap();
        }
        let asap = Asap::builder().resolution(50).build();
        let err = sharded
            .smooth_query_selector(&Selector::metric("cpu"), &asap, 0, 1000, 10)
            .unwrap_err();
        let oracle = Tsdb::new();
        for i in 0..100 {
            oracle.write(&cpu("h0"), DataPoint::new(5000 + i, 1.0)).unwrap();
            oracle.write(&cpu("h1"), DataPoint::new(i, 1.0)).unwrap();
        }
        let serial_err = crate::smooth::smooth_query_selector(
            &oracle,
            &Selector::metric("cpu"),
            &asap,
            0,
            1000,
            10,
        )
        .unwrap_err();
        assert_eq!(err, serial_err);
    }
}
