//! Range queries, bucketed aggregation, and grid alignment.
//!
//! The ASAP operator consumes an *equi-spaced* series (§3.3's SMA model).
//! Raw telemetry rarely is: cadence jitters and collection gaps appear. The
//! query layer closes that gap: a [`RangeQuery`] scans `[start, end)`,
//! optionally groups points into fixed-width buckets reduced by an
//! [`Aggregator`], and aligns the buckets onto a regular grid with a
//! [`FillPolicy`] for empty buckets.

use crate::error::TsdbError;
use crate::point::DataPoint;
use crate::tags::{Selector, SeriesKey};

/// A queryable series store — the engine-side contract the query→ASAP
/// bridge ([`crate::smooth`]) is written against.
///
/// Implemented by the single-shard [`crate::db::Tsdb`], the partitioned
/// [`crate::sharded::ShardedDb`], and each individual shard, so smoothing
/// code runs identically over any front-end.
pub trait SeriesReader {
    /// Runs a query against one series.
    fn read_series(&self, key: &SeriesKey, query: RangeQuery) -> Result<Vec<DataPoint>, TsdbError>;

    /// Lists keys of series matching `selector`, in key order.
    fn matching_series(&self, selector: &Selector) -> Vec<SeriesKey>;
}

/// A writable series store — the engine-side contract ingest-side
/// adapters (notably [`crate::reorder::ReorderBuffer`]) are written
/// against, mirroring [`SeriesReader`] on the write path.
///
/// Implemented by the single-shard [`crate::db::Tsdb`], the partitioned
/// [`crate::sharded::ShardedDb`], and each individual
/// [`crate::shard::Shard`], so reordering and other write-side stages run
/// identically in front of any front-end.
pub trait SeriesWriter {
    /// Writes one point, creating the series on first touch. Timestamps
    /// must be strictly increasing per series.
    fn write_point(&self, key: &SeriesKey, point: DataPoint) -> Result<(), TsdbError>;
}

/// Reduction applied to the points that fall in one bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregator {
    /// Arithmetic mean (the paper's preaggregation choice, §4.4).
    Mean,
    /// Smallest value.
    Min,
    /// Largest value.
    Max,
    /// Sum of values.
    Sum,
    /// Number of points.
    Count,
    /// Value of the earliest point.
    First,
    /// Value of the latest point.
    Last,
}

impl Aggregator {
    /// Reduces a non-empty value slice.
    fn reduce(self, values: &[f64]) -> f64 {
        debug_assert!(!values.is_empty());
        match self {
            Aggregator::Mean => values.iter().sum::<f64>() / values.len() as f64,
            Aggregator::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregator::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregator::Sum => values.iter().sum(),
            Aggregator::Count => values.len() as f64,
            Aggregator::First => values[0],
            Aggregator::Last => values[values.len() - 1],
        }
    }
}

/// How to fill grid buckets that received no points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FillPolicy {
    /// Drop empty buckets (output may be shorter than the grid).
    Skip,
    /// Repeat the previous bucket's value (leading gaps take the first
    /// observed value).
    Previous,
    /// Linearly interpolate between the neighbouring non-empty buckets
    /// (edge gaps clamp to the nearest observed value).
    Linear,
    /// Emit a constant.
    Constant(f64),
}

/// A bucketed-aggregation query over `[start, end)`.
///
/// `start` is the grid origin: bucket `i` covers
/// `[start + i*bucket, start + (i+1)*bucket)`.
#[derive(Debug, Clone, Copy)]
pub struct RangeQuery {
    /// Inclusive start of the scan and origin of the bucket grid.
    pub start: i64,
    /// Exclusive end of the scan.
    pub end: i64,
    /// Bucket width in timestamp units; `None` returns raw points.
    pub bucket: Option<i64>,
    /// Per-bucket reduction (ignored for raw scans).
    pub aggregator: Aggregator,
    /// Empty-bucket policy (ignored for raw scans).
    pub fill: FillPolicy,
}

impl RangeQuery {
    /// Raw scan of `[start, end)`.
    pub fn raw(start: i64, end: i64) -> Self {
        Self {
            start,
            end,
            bucket: None,
            aggregator: Aggregator::Mean,
            fill: FillPolicy::Skip,
        }
    }

    /// Mean-aggregated scan with the given bucket width.
    pub fn bucketed(start: i64, end: i64, bucket: i64) -> Self {
        Self {
            start,
            end,
            bucket: Some(bucket),
            aggregator: Aggregator::Mean,
            fill: FillPolicy::Skip,
        }
    }

    /// Sets the aggregator.
    pub fn aggregate(mut self, aggregator: Aggregator) -> Self {
        self.aggregator = aggregator;
        self
    }

    /// Sets the fill policy.
    pub fn fill(mut self, fill: FillPolicy) -> Self {
        self.fill = fill;
        self
    }

    /// Validates the query shape.
    pub fn validate(&self) -> Result<(), TsdbError> {
        if self.start >= self.end {
            return Err(TsdbError::InvalidParameter {
                name: "range",
                message: "start must be before end",
            });
        }
        if let Some(b) = self.bucket {
            if b <= 0 {
                return Err(TsdbError::InvalidParameter {
                    name: "bucket",
                    message: "bucket width must be positive",
                });
            }
            // The grid math needs the span as a positive i64; a range
            // like [i64::MIN+1, i64::MAX) would wrap the subtraction.
            if self.end.checked_sub(self.start).is_none() {
                return Err(TsdbError::InvalidParameter {
                    name: "range",
                    message: "bucketed span overflows the timestamp domain",
                });
            }
        }
        Ok(())
    }

    /// Applies bucketing, aggregation, and fill to raw scanned points.
    ///
    /// `points` must be time-ordered and within `[start, end)` — the
    /// contract of [`crate::series::SeriesStore::scan`].
    pub fn shape(&self, points: &[DataPoint]) -> Result<Vec<DataPoint>, TsdbError> {
        self.validate()?;
        let bucket = match self.bucket {
            None => return Ok(points.to_vec()),
            Some(b) => b,
        };
        // Number of grid buckets covering [start, end).
        let span = (self.end - self.start) as u64;
        let n_buckets = span.div_ceil(bucket as u64) as usize;
        let mut grid: Vec<Option<f64>> = vec![None; n_buckets];
        let mut scratch: Vec<f64> = Vec::new();
        let mut current: Option<usize> = None;
        for p in points {
            debug_assert!(p.timestamp >= self.start && p.timestamp < self.end);
            let idx = ((p.timestamp - self.start) / bucket) as usize;
            if current != Some(idx) {
                if let Some(prev) = current {
                    grid[prev] = Some(self.aggregator.reduce(&scratch));
                    scratch.clear();
                }
                current = Some(idx);
            }
            scratch.push(p.value);
        }
        if let Some(prev) = current {
            grid[prev] = Some(self.aggregator.reduce(&scratch));
        }
        Ok(self.fill_grid(grid, bucket))
    }

    fn fill_grid(&self, grid: Vec<Option<f64>>, bucket: i64) -> Vec<DataPoint> {
        let ts = |i: usize| self.start + i as i64 * bucket;
        match self.fill {
            FillPolicy::Skip => grid
                .into_iter()
                .enumerate()
                .filter_map(|(i, v)| v.map(|v| DataPoint::new(ts(i), v)))
                .collect(),
            FillPolicy::Constant(c) => grid
                .into_iter()
                .enumerate()
                .map(|(i, v)| DataPoint::new(ts(i), v.unwrap_or(c)))
                .collect(),
            FillPolicy::Previous => {
                let mut out = Vec::with_capacity(grid.len());
                // Leading gaps take the first observed value so the output
                // is total whenever any bucket observed data.
                let first = grid.iter().flatten().next().copied();
                let mut prev = match first {
                    Some(v) => v,
                    None => return Vec::new(),
                };
                for (i, v) in grid.into_iter().enumerate() {
                    if let Some(v) = v {
                        prev = v;
                    }
                    out.push(DataPoint::new(ts(i), prev));
                }
                out
            }
            FillPolicy::Linear => {
                let filled: Vec<(usize, f64)> = grid
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| v.map(|v| (i, v)))
                    .collect();
                if filled.is_empty() {
                    return Vec::new();
                }
                let mut out = Vec::with_capacity(grid.len());
                let mut seg = 0; // index into `filled` of the segment start
                for i in 0..grid.len() {
                    while seg + 1 < filled.len() && filled[seg + 1].0 <= i {
                        seg += 1;
                    }
                    let (i0, v0) = filled[seg];
                    let v = if i <= i0 {
                        v0 // clamp before the first observation
                    } else if seg + 1 < filled.len() {
                        let (i1, v1) = filled[seg + 1];
                        let t = (i - i0) as f64 / (i1 - i0) as f64;
                        // Convex-combination form: `v0 + (v1-v0)*t` overflows
                        // when v0 and v1 sit near opposite f64 extremes.
                        v0 * (1.0 - t) + v1 * t
                    } else {
                        v0 // clamp after the last observation
                    };
                    out.push(DataPoint::new(ts(i), v));
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(i64, f64)]) -> Vec<DataPoint> {
        v.iter().map(|&(t, x)| DataPoint::new(t, x)).collect()
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        assert!(RangeQuery::raw(10, 10).validate().is_err());
        assert!(RangeQuery::raw(10, 5).validate().is_err());
        assert!(RangeQuery::bucketed(0, 10, 0).validate().is_err());
        assert!(RangeQuery::bucketed(0, 10, -5).validate().is_err());
        assert!(RangeQuery::bucketed(0, 10, 3).validate().is_ok());
    }

    #[test]
    fn bucketed_span_overflow_is_rejected_not_wrapped() {
        // end - start wraps i64 for the full timestamp domain: the grid
        // math must never see it. Raw scans of the same range stay fine
        // (no grid).
        let q = RangeQuery::bucketed(i64::MIN + 1, i64::MAX, 10);
        assert!(q.validate().is_err());
        assert!(q.shape(&[]).is_err());
        assert!(RangeQuery::raw(i64::MIN + 1, i64::MAX).validate().is_ok());
    }

    #[test]
    fn raw_query_passes_through() {
        let p = pts(&[(0, 1.0), (3, 2.0), (7, 3.0)]);
        let out = RangeQuery::raw(0, 10).shape(&p).unwrap();
        assert_eq!(out, p);
    }

    #[test]
    fn aggregators_reduce_correctly() {
        let p = pts(&[(0, 1.0), (1, 3.0), (2, 2.0)]);
        let q = |a| {
            RangeQuery::bucketed(0, 3, 3)
                .aggregate(a)
                .shape(&p)
                .unwrap()[0]
                .value
        };
        assert_eq!(q(Aggregator::Mean), 2.0);
        assert_eq!(q(Aggregator::Min), 1.0);
        assert_eq!(q(Aggregator::Max), 3.0);
        assert_eq!(q(Aggregator::Sum), 6.0);
        assert_eq!(q(Aggregator::Count), 3.0);
        assert_eq!(q(Aggregator::First), 1.0);
        assert_eq!(q(Aggregator::Last), 2.0);
    }

    #[test]
    fn buckets_align_to_start_not_epoch() {
        let p = pts(&[(103, 1.0), (104, 3.0), (108, 5.0)]);
        let out = RangeQuery::bucketed(100, 110, 5).shape(&p).unwrap();
        // Buckets [100,105) and [105,110).
        assert_eq!(out, pts(&[(100, 2.0), (105, 5.0)]));
    }

    #[test]
    fn skip_fill_drops_empty_buckets() {
        let p = pts(&[(0, 1.0), (25, 5.0)]);
        let out = RangeQuery::bucketed(0, 30, 10).shape(&p).unwrap();
        assert_eq!(out, pts(&[(0, 1.0), (20, 5.0)]));
    }

    #[test]
    fn constant_fill_emits_total_grid() {
        let p = pts(&[(0, 1.0), (25, 5.0)]);
        let out = RangeQuery::bucketed(0, 30, 10)
            .fill(FillPolicy::Constant(0.0))
            .shape(&p)
            .unwrap();
        assert_eq!(out, pts(&[(0, 1.0), (10, 0.0), (20, 5.0)]));
    }

    #[test]
    fn previous_fill_carries_forward_and_backfills_leading_gap() {
        let p = pts(&[(15, 2.0), (35, 6.0)]);
        let out = RangeQuery::bucketed(0, 50, 10)
            .fill(FillPolicy::Previous)
            .shape(&p)
            .unwrap();
        assert_eq!(
            out,
            pts(&[(0, 2.0), (10, 2.0), (20, 2.0), (30, 6.0), (40, 6.0)])
        );
    }

    #[test]
    fn linear_fill_interpolates_interior_and_clamps_edges() {
        let p = pts(&[(10, 0.0), (40, 3.0)]);
        let out = RangeQuery::bucketed(0, 60, 10)
            .fill(FillPolicy::Linear)
            .shape(&p)
            .unwrap();
        assert_eq!(
            out,
            pts(&[(0, 0.0), (10, 0.0), (20, 1.0), (30, 2.0), (40, 3.0), (50, 3.0)])
        );
    }

    #[test]
    fn fill_on_fully_empty_grid_is_empty() {
        let out = RangeQuery::bucketed(0, 100, 10)
            .fill(FillPolicy::Previous)
            .shape(&[])
            .unwrap();
        assert!(out.is_empty());
        let out = RangeQuery::bucketed(0, 100, 10)
            .fill(FillPolicy::Linear)
            .shape(&[])
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn ragged_final_bucket_is_included() {
        // Range of 25 with bucket 10 yields 3 buckets, the last covering [20,25).
        let p = pts(&[(24, 7.0)]);
        let out = RangeQuery::bucketed(0, 25, 10).shape(&p).unwrap();
        assert_eq!(out, pts(&[(20, 7.0)]));
    }
}
