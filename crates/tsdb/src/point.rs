//! The elementary storage record.

/// One timestamped sample of one series.
///
/// Timestamps are `i64` in caller-defined units (the engine is agnostic;
/// seconds and milliseconds since the epoch are both common). Values are
/// `f64`, matching the ASAP kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataPoint {
    /// Sample time, in caller-defined units.
    pub timestamp: i64,
    /// Sample value.
    pub value: f64,
}

impl DataPoint {
    /// Creates a point.
    pub fn new(timestamp: i64, value: f64) -> Self {
        Self { timestamp, value }
    }
}

impl From<(i64, f64)> for DataPoint {
    fn from((timestamp, value): (i64, f64)) -> Self {
        Self { timestamp, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_conversion() {
        let p: DataPoint = (5, 1.5).into();
        assert_eq!(p, DataPoint::new(5, 1.5));
    }
}
