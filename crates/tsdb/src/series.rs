//! Per-series storage: a run of sealed blocks plus the mutable memtable.

use crate::block::Block;
use crate::error::TsdbError;
use crate::memtable::MemTable;
use crate::point::DataPoint;

/// Aggregate statistics of a time range, as returned by
/// [`SeriesStore::summarize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeSummary {
    /// Number of points in the range.
    pub count: usize,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Sum of values.
    pub sum: f64,
}

impl RangeSummary {
    fn empty() -> Self {
        Self {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    fn absorb(&mut self, count: usize, min: f64, max: f64, sum: f64) {
        self.count += count;
        self.min = self.min.min(min);
        self.max = self.max.max(max);
        self.sum += sum;
    }

    /// Arithmetic mean of the range.
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

/// Storage for one series: time-ordered sealed [`Block`]s plus the
/// [`MemTable`] holding the newest points.
///
/// Writes append to the memtable; when it fills, it is sealed into a block.
/// Reads merge the overlapping blocks (skipped via summary metadata when
/// disjoint from the query range) with the memtable tail.
#[derive(Debug)]
pub struct SeriesStore {
    blocks: Vec<Block>,
    memtable: MemTable,
}

impl SeriesStore {
    /// Creates an empty store sealing blocks of `block_capacity` points.
    pub fn new(block_capacity: usize) -> Self {
        Self {
            blocks: Vec::new(),
            memtable: MemTable::new(block_capacity),
        }
    }

    /// Total number of stored points (sealed + buffered).
    pub fn len(&self) -> usize {
        self.blocks.iter().map(Block::len).sum::<usize>() + self.memtable.len()
    }

    /// True when the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sealed blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Sealed blocks, oldest first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Compressed bytes across all sealed blocks (excludes the memtable).
    pub fn compressed_bytes(&self) -> usize {
        self.blocks.iter().map(Block::size_bytes).sum()
    }

    /// Timestamp of the newest stored point, if any.
    pub fn last_timestamp(&self) -> Option<i64> {
        self.memtable
            .last_timestamp()
            .or_else(|| self.blocks.last().map(|b| b.summary().end))
    }

    /// Timestamp of the oldest stored point, if any.
    pub fn first_timestamp(&self) -> Option<i64> {
        self.blocks
            .first()
            .map(|b| b.summary().start)
            .or_else(|| self.memtable.points().first().map(|p| p.timestamp))
    }

    /// Appends one point, sealing the memtable into a block when full.
    pub fn append(&mut self, point: DataPoint) -> Result<(), TsdbError> {
        // The memtable checks ordering against its own tail; when it is
        // empty (e.g. right after a seal) check against the sealed blocks.
        if self.memtable.is_empty() {
            if let Some(end) = self.blocks.last().map(|b| b.summary().end) {
                if point.timestamp <= end {
                    return Err(TsdbError::OutOfOrder {
                        last: end,
                        got: point.timestamp,
                    });
                }
            }
        }
        self.memtable.append(point)?;
        if self.memtable.is_full() {
            self.seal_active()?;
        }
        Ok(())
    }

    /// Seals the memtable into a block immediately (no-op when empty).
    pub fn seal_active(&mut self) -> Result<(), TsdbError> {
        if let Some(block) = self.memtable.seal() {
            self.blocks.push(block?);
        }
        Ok(())
    }

    /// All points with timestamps in `[start, end)`, oldest first.
    pub fn scan(&self, start: i64, end: i64) -> Result<Vec<DataPoint>, TsdbError> {
        if start >= end {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        for block in &self.blocks {
            if block.overlaps(start, end) {
                out.extend(block.decode_range(start, end)?);
            }
        }
        out.extend_from_slice(self.memtable.range(start, end));
        Ok(out)
    }

    /// Summary statistics (count/min/max/sum) of `[start, end)`.
    ///
    /// Blocks fully inside the range are answered from their sealed
    /// [`crate::block::BlockSummary`] without decompression — O(1) per
    /// block; only the (at most two) partially overlapping boundary blocks
    /// are decoded. Returns `None` when the range holds no points.
    pub fn summarize(&self, start: i64, end: i64) -> Result<Option<RangeSummary>, TsdbError> {
        if start >= end {
            return Ok(None);
        }
        let mut acc = RangeSummary::empty();
        for block in &self.blocks {
            let s = block.summary();
            if !block.overlaps(start, end) {
                continue;
            }
            if s.start >= start && s.end < end {
                // Whole block inside the range: metadata answers it.
                acc.absorb(s.count, s.min, s.max, s.sum);
            } else {
                for p in block.decode_range(start, end)? {
                    acc.absorb(1, p.value, p.value, p.value);
                }
            }
        }
        for p in self.memtable.range(start, end) {
            acc.absorb(1, p.value, p.value, p.value);
        }
        Ok((acc.count > 0).then_some(acc))
    }

    /// Appends pre-sealed blocks (snapshot restore). Blocks must be
    /// internally ordered, mutually ordered, and strictly after all
    /// existing data.
    pub fn import_blocks(&mut self, blocks: Vec<Block>) -> Result<(), TsdbError> {
        self.seal_active()?;
        let mut last = self.last_timestamp();
        for block in &blocks {
            if let Some(l) = last {
                if block.summary().start <= l {
                    return Err(TsdbError::OutOfOrder {
                        last: l,
                        got: block.summary().start,
                    });
                }
            }
            last = Some(block.summary().end);
        }
        self.blocks.extend(blocks);
        Ok(())
    }

    /// Drops whole sealed blocks whose newest point is older than `cutoff`.
    ///
    /// Retention works at block granularity (as in production TSDBs): a
    /// block is evicted only when *all* its points have expired, so a scan
    /// never loses in-retention data. Returns the number of evicted points.
    pub fn evict_before(&mut self, cutoff: i64) -> usize {
        let mut evicted = 0;
        self.blocks.retain(|b| {
            if b.summary().end < cutoff {
                evicted += b.len();
                false
            } else {
                true
            }
        });
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: i64, block_capacity: usize) -> SeriesStore {
        let mut s = SeriesStore::new(block_capacity);
        for i in 0..n {
            s.append(DataPoint::new(i * 10, i as f64)).unwrap();
        }
        s
    }

    #[test]
    fn append_seals_at_capacity() {
        let s = filled(25, 10);
        assert_eq!(s.block_count(), 2, "two full blocks sealed");
        assert_eq!(s.len(), 25);
        assert_eq!(s.first_timestamp(), Some(0));
        assert_eq!(s.last_timestamp(), Some(240));
    }

    #[test]
    fn ordering_enforced_across_seal_boundary() {
        let mut s = filled(10, 10); // exactly one sealed block, memtable empty
        assert_eq!(s.block_count(), 1);
        assert!(matches!(
            s.append(DataPoint::new(90, 1.0)),
            Err(TsdbError::OutOfOrder { last: 90, got: 90 })
        ));
        s.append(DataPoint::new(91, 1.0)).unwrap();
    }

    #[test]
    fn scan_merges_blocks_and_memtable() {
        let s = filled(25, 10); // blocks [0..90],[100..190], memtable [200..240]
        let all = s.scan(i64::MIN, i64::MAX).unwrap();
        assert_eq!(all.len(), 25);
        let ts: Vec<_> = all.iter().map(|p| p.timestamp).collect();
        let expected: Vec<_> = (0..25).map(|i| i * 10).collect();
        assert_eq!(ts, expected, "time-ordered across block/memtable boundary");

        let mid = s.scan(85, 215).unwrap();
        let ts: Vec<_> = mid.iter().map(|p| p.timestamp).collect();
        assert_eq!(ts, vec![90, 100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210]);
    }

    #[test]
    fn scan_empty_and_inverted_ranges() {
        let s = filled(25, 10);
        assert!(s.scan(500, 600).unwrap().is_empty());
        assert!(s.scan(100, 100).unwrap().is_empty());
        assert!(s.scan(200, 100).unwrap().is_empty());
    }

    #[test]
    fn seal_active_flushes_partial_memtable() {
        let mut s = filled(25, 10);
        assert_eq!(s.block_count(), 2);
        s.seal_active().unwrap();
        assert_eq!(s.block_count(), 3);
        assert_eq!(s.len(), 25, "seal moves points, never drops them");
        s.seal_active().unwrap();
        assert_eq!(s.block_count(), 3, "empty memtable seal is a no-op");
    }

    #[test]
    fn evict_before_is_block_granular() {
        let mut s = filled(30, 10); // blocks end at 90, 190, 290 (sealed at 30 pts)
        s.seal_active().unwrap();
        assert_eq!(s.block_count(), 3);
        // Cutoff inside the second block: only the first block qualifies.
        let evicted = s.evict_before(150);
        assert_eq!(evicted, 10);
        assert_eq!(s.block_count(), 2);
        let remaining = s.scan(i64::MIN, i64::MAX).unwrap();
        assert_eq!(remaining.first().unwrap().timestamp, 100);
        // Cutoff beyond everything evicts all blocks.
        let evicted = s.evict_before(i64::MAX);
        assert_eq!(evicted, 20);
        assert!(s.is_empty());
    }

    #[test]
    fn summarize_matches_scan_across_boundaries() {
        // Blocks of 10 points at ts 0,10,...,240 plus a memtable tail.
        let s = filled(25, 10);
        // Ranges chosen to hit: whole-block fast path, partial head/tail
        // blocks, memtable-only, and empty.
        for (start, end) in [
            (0, 250),    // everything
            (0, 100),    // exactly the first block
            (35, 165),   // partial blocks on both sides
            (200, 250),  // memtable only
            (95, 105),   // straddles a block boundary with 2 points
        ] {
            let scan = s.scan(start, end).unwrap();
            let got = s.summarize(start, end).unwrap();
            if scan.is_empty() {
                assert!(got.is_none());
                continue;
            }
            let got = got.unwrap();
            assert_eq!(got.count, scan.len(), "count for [{start},{end})");
            let min = scan.iter().map(|p| p.value).fold(f64::INFINITY, f64::min);
            let max = scan.iter().map(|p| p.value).fold(f64::NEG_INFINITY, f64::max);
            let sum: f64 = scan.iter().map(|p| p.value).sum();
            assert_eq!(got.min, min);
            assert_eq!(got.max, max);
            assert!((got.sum - sum).abs() < 1e-9);
            assert!((got.mean() - sum / scan.len() as f64).abs() < 1e-12);
        }
        assert!(s.summarize(300, 400).unwrap().is_none());
        assert!(s.summarize(50, 50).unwrap().is_none(), "empty range");
        assert!(s.summarize(60, 50).unwrap().is_none(), "inverted range");
    }

    #[test]
    fn compression_accounting_exposed() {
        let s = filled(1000, 256);
        assert!(s.block_count() >= 3);
        assert!(s.compressed_bytes() > 0);
        assert!(
            s.compressed_bytes() < 16 * 1000,
            "sealed blocks beat raw encoding"
        );
    }
}
