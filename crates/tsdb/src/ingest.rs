//! Concurrent line-protocol ingest pipeline for the sharded engine.
//!
//! The ASAP paper (§2) places the operator downstream of production TSDBs
//! fed by live telemetry; this module is the front-end that feeds a
//! [`ShardedDb`] at that rate. The serial [`crate::line_protocol::ingest`]
//! parses and writes one line at a time on the caller's thread; here both
//! halves run concurrently and in parallel:
//!
//! ```text
//!              chunks p, p+P, p+2P, …             bounded(queue_depth)
//!  document ─┬─▶ parser worker 0 ──┐  Batch{chunk, pts} ┌─▶ shard writer 0
//!            ├─▶ parser worker 1 ──┼──── per-shard ─────┼─▶ shard writer 1
//!            └─▶ parser worker P-1 ┘      channels      └─▶ shard writer N-1
//! ```
//!
//! * the document is split into fixed-size line chunks; parser worker `p`
//!   owns chunks `p, p+P, …` (static assignment — no shared work queue);
//! * each parsed point is routed by the engine's tag-aware shard hash and
//!   batched per `(chunk, shard)`; every chunk sends exactly one batch to
//!   every shard (empty batches included), so writers can apply chunks
//!   **strictly in document order** with a small reorder buffer;
//! * channels are bounded ([`IngestConfig::queue_depth`] batches), and
//!   parsers additionally throttle against the slowest writer's
//!   applied-chunk watermark (a window of `parsers + queue_depth`
//!   chunks), so neither a slow writer nor a stalled peer parser can
//!   cause unbounded buffering anywhere — channel and reorder buffer
//!   are both bounded;
//! * per-shard writers apply points through the same [`Shard`] code the
//!   serial path uses, so a pipeline-ingested store is byte-identical to a
//!   serially ingested one (pinned by `tests/ops_properties.rs`).
//!
//! Because chunk application is in document order, per-series write order
//! equals document order no matter how threads interleave — which makes
//! the whole pipeline deterministic: same input, same final store, same
//! [`IngestReport`], at any parser/shard/queue configuration.
//!
//! Unlike the serial path, the pipeline does not abort on the first bad
//! line: malformed lines and rejected writes are skipped and reported in
//! the [`IngestReport`] (a live telemetry socket cannot un-send a line).

use std::collections::BTreeMap;

use crossbeam::channel::{Receiver, Sender};

use crate::error::TsdbError;
use crate::line_protocol::{fallback_ts, parse_line, ParsedPoint};
use crate::shard::Shard;
use crate::sharded::ShardedDb;

/// Tuning knobs of the ingest pipeline.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Parser worker threads (default 4).
    pub parsers: usize,
    /// Bound of each per-shard channel, in batches (default 8). Smaller
    /// values bound memory harder and throttle parsers sooner; larger
    /// values absorb burstier shard skew.
    pub queue_depth: usize,
    /// Lines per chunk (default 256). A chunk is the unit of parser
    /// scheduling and of writer-side ordering.
    pub chunk_lines: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            parsers: 4,
            queue_depth: 8,
            chunk_lines: 256,
        }
    }
}

impl IngestConfig {
    /// Validates the knobs (all must be positive).
    pub fn validate(&self) -> Result<(), TsdbError> {
        let bad = |name: &'static str| TsdbError::InvalidParameter {
            name,
            message: "ingest pipeline knobs must be positive",
        };
        if self.parsers == 0 {
            return Err(bad("parsers"));
        }
        if self.queue_depth == 0 {
            return Err(bad("queue_depth"));
        }
        if self.chunk_lines == 0 {
            return Err(bad("chunk_lines"));
        }
        Ok(())
    }
}

/// One malformed line, skipped by the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFailure {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// Why it failed to parse.
    pub reason: &'static str,
}

/// One parsed point the engine rejected (out-of-order, non-finite, …).
#[derive(Debug, Clone, PartialEq)]
pub struct WriteFailure {
    /// 1-based line number the point came from.
    pub line: usize,
    /// The engine's rejection.
    pub error: TsdbError,
}

/// Outcome of one pipeline ingest, deterministic for a given input.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// Total lines in the document (including blanks and comments).
    pub lines: usize,
    /// Points written into the store.
    pub points: usize,
    /// Malformed lines, sorted by line number.
    pub parse_failures: Vec<ParseFailure>,
    /// Rejected writes, sorted by line number.
    pub write_failures: Vec<WriteFailure>,
}

impl IngestReport {
    /// Whether every line parsed and every point was accepted.
    pub fn is_clean(&self) -> bool {
        self.parse_failures.is_empty() && self.write_failures.is_empty()
    }
}

/// One chunk's points for one shard. Every chunk sends exactly one batch
/// to every shard — empty ones advance the writer's ordering clock.
struct Batch {
    chunk: usize,
    points: Vec<(usize, ParsedPoint)>,
}

/// Shared pipeline progress: per shard, the next chunk its writer will
/// apply. Parsers wait until their chunk is within `window` of the
/// slowest writer, which bounds every writer's reorder buffer (a batch
/// is only ever sent while its chunk is less than `min applied +
/// window`, so a writer at chunk `next` buffers fewer than `window`
/// chunks ahead of it).
///
/// Deadlock-free by construction: the parser owning the minimum
/// unapplied chunk `m` is working on some chunk `<= m < m + window`, so
/// it is never gated, and writers always drain their channels, so its
/// sends always complete — `m` strictly advances.
struct Progress {
    applied: Vec<std::sync::atomic::AtomicUsize>,
    gate: std::sync::Mutex<()>,
    wake: std::sync::Condvar,
}

impl Progress {
    fn new(shards: usize) -> Self {
        Self {
            applied: (0..shards).map(|_| std::sync::atomic::AtomicUsize::new(0)).collect(),
            gate: std::sync::Mutex::new(()),
            wake: std::sync::Condvar::new(),
        }
    }

    fn min_applied(&self) -> usize {
        self.applied
            .iter()
            .map(|a| a.load(std::sync::atomic::Ordering::Acquire))
            .min()
            .unwrap_or(usize::MAX)
    }

    /// Blocks until `chunk < min applied + window`.
    fn wait_until_within(&self, chunk: usize, window: usize) {
        if chunk < self.min_applied().saturating_add(window) {
            return;
        }
        let mut guard = self.gate.lock().expect("ingest gate poisoned");
        while chunk >= self.min_applied().saturating_add(window) {
            guard = self.wake.wait(guard).expect("ingest gate poisoned");
        }
    }

    /// Records that `shard`'s writer will next apply `next`.
    fn advance(&self, shard: usize, next: usize) {
        // Store under the gate so a parser cannot check-then-sleep
        // between the store and the notify (missed wakeup).
        let _guard = self.gate.lock().expect("ingest gate poisoned");
        self.applied[shard].store(next, std::sync::atomic::Ordering::Release);
        self.wake.notify_all();
    }
}

/// Ingests a line-protocol document into `db` through the concurrent
/// pipeline; see the module docs for topology and semantics.
///
/// Records missing a timestamp take `default_ts` plus the 0-based line
/// index, exactly like the serial [`crate::line_protocol::ingest`].
/// Returns `Err` only for an invalid `config`; data problems (malformed
/// lines, rejected writes) are skipped and reported.
pub fn pipeline_ingest(
    db: &ShardedDb,
    text: &str,
    default_ts: i64,
    config: &IngestConfig,
) -> Result<IngestReport, TsdbError> {
    config.validate()?;
    let lines: Vec<&str> = text.lines().collect();
    let chunk_count = lines.len().div_ceil(config.chunk_lines);
    let shards = db.shards();

    let mut report = IngestReport {
        lines: lines.len(),
        ..IngestReport::default()
    };

    let mut txs: Vec<Sender<Batch>> = Vec::with_capacity(shards.len());
    let mut rxs: Vec<Receiver<Batch>> = Vec::with_capacity(shards.len());
    for _ in 0..shards.len() {
        let (tx, rx) = crossbeam::channel::bounded(config.queue_depth);
        txs.push(tx);
        rxs.push(rx);
    }

    let progress = Progress::new(shards.len());
    crossbeam::thread::scope(|scope| {
        let mut writers = Vec::with_capacity(shards.len());
        for (idx, (shard, rx)) in shards.iter().zip(rxs.drain(..)).enumerate() {
            let progress = &progress;
            writers.push(scope.spawn(move |_| shard_writer(shard, rx, idx, progress)));
        }
        let mut parsers = Vec::with_capacity(config.parsers);
        for p in 0..config.parsers {
            let txs = txs.clone();
            let lines = &lines;
            let progress = &progress;
            parsers.push(scope.spawn(move |_| {
                parse_worker(p, config, lines, chunk_count, default_ts, db, &txs, progress)
            }));
        }
        // The spawned parsers hold their own sender clones; dropping ours
        // lets writers observe hangup as soon as the last parser exits.
        drop(txs);
        for h in parsers {
            report
                .parse_failures
                .extend(h.join().expect("ingest parser worker panicked"));
        }
        for h in writers {
            let (written, failures) = h.join().expect("ingest shard writer panicked");
            report.points += written;
            report.write_failures.extend(failures);
        }
    })
    .expect("ingest pipeline scope failed");

    report.parse_failures.sort_by_key(|f| f.line);
    report.write_failures.sort_by_key(|f| f.line);
    Ok(report)
}

/// Parses chunks `p, p+P, …`, routes points to per-shard batches, and
/// sends one batch per (chunk, shard). Returns the chunk's parse failures.
#[allow(clippy::too_many_arguments)]
fn parse_worker(
    p: usize,
    config: &IngestConfig,
    lines: &[&str],
    chunk_count: usize,
    default_ts: i64,
    db: &ShardedDb,
    txs: &[Sender<Batch>],
    progress: &Progress,
) -> Vec<ParseFailure> {
    let window = config.parsers + config.queue_depth;
    let mut failures = Vec::new();
    let mut chunk = p;
    while chunk < chunk_count {
        // Don't run unboundedly ahead of the slowest writer: this keeps
        // every writer's reorder buffer within `window` chunks even when
        // a peer parser stalls on an earlier chunk.
        progress.wait_until_within(chunk, window);
        let lo = chunk * config.chunk_lines;
        let hi = (lo + config.chunk_lines).min(lines.len());
        let mut per_shard: Vec<Vec<(usize, ParsedPoint)>> = vec![Vec::new(); txs.len()];
        for (idx, raw) in lines[lo..hi].iter().enumerate() {
            let idx = lo + idx;
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_line(line, line_no, fallback_ts(default_ts, idx)) {
                Ok(points) => {
                    for point in points {
                        per_shard[db.shard_of(&point.key)].push((line_no, point));
                    }
                }
                Err(TsdbError::Parse { line, reason }) => {
                    failures.push(ParseFailure { line, reason });
                }
                // parse_line only constructs Parse errors; anything else
                // would be a bug worth surfacing loudly.
                Err(other) => panic!("parse_line returned a non-parse error: {other:?}"),
            }
        }
        for (tx, points) in txs.iter().zip(per_shard) {
            // Blocks when the shard's queue is full: backpressure. Fails
            // only if the writer died, which only happens on panic.
            tx.send(Batch { chunk, points })
                .expect("ingest shard writer hung up");
        }
        chunk += config.parsers;
    }
    failures
}

/// Applies batches to one shard strictly in chunk order, buffering
/// out-of-order arrivals (bounded: parsers only send chunks within the
/// [`Progress`] window of the slowest writer). Returns points written
/// and rejected writes.
fn shard_writer(
    shard: &Shard,
    rx: Receiver<Batch>,
    shard_idx: usize,
    progress: &Progress,
) -> (usize, Vec<WriteFailure>) {
    let mut written = 0usize;
    let mut failures = Vec::new();
    let mut pending: BTreeMap<usize, Vec<(usize, ParsedPoint)>> = BTreeMap::new();
    let mut next = 0usize;
    for batch in rx.iter() {
        pending.insert(batch.chunk, batch.points);
        let before = next;
        while let Some(points) = pending.remove(&next) {
            apply_batch(shard, points, &mut written, &mut failures);
            next += 1;
        }
        if next != before {
            progress.advance(shard_idx, next);
        }
    }
    // Senders hung up: every chunk has arrived, the leftovers are the
    // contiguous tail — a BTreeMap iterates them in chunk order.
    for (_, points) in std::mem::take(&mut pending) {
        apply_batch(shard, points, &mut written, &mut failures);
    }
    (written, failures)
}

fn apply_batch(
    shard: &Shard,
    points: Vec<(usize, ParsedPoint)>,
    written: &mut usize,
    failures: &mut Vec<WriteFailure>,
) {
    for (line, point) in points {
        match shard.write(&point.key, point.point) {
            Ok(()) => *written += 1,
            Err(error) => failures.push(WriteFailure { line, error }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{Tsdb, TsdbConfig};
    use crate::line_protocol;
    use crate::query::RangeQuery;
    use crate::sharded::ShardedConfig;
    use crate::tags::{Selector, SeriesKey};

    /// A document with several interleaved series, explicit timestamps.
    fn doc(hosts: usize, points: i64) -> String {
        let mut out = String::new();
        for t in 0..points {
            for h in 0..hosts {
                out.push_str(&format!(
                    "cpu,host=h{h} usage={},idle={} {t}\n",
                    (t as f64 * 0.1).sin() + h as f64,
                    100 - h as i64,
                ));
            }
        }
        out
    }

    fn configs() -> Vec<IngestConfig> {
        vec![
            IngestConfig::default(),
            IngestConfig {
                parsers: 1,
                queue_depth: 1,
                chunk_lines: 1,
            },
            IngestConfig {
                parsers: 7,
                queue_depth: 2,
                chunk_lines: 3,
            },
        ]
    }

    #[test]
    fn invalid_configs_rejected() {
        let db = ShardedDb::new();
        for config in [
            IngestConfig {
                parsers: 0,
                ..IngestConfig::default()
            },
            IngestConfig {
                queue_depth: 0,
                ..IngestConfig::default()
            },
            IngestConfig {
                chunk_lines: 0,
                ..IngestConfig::default()
            },
        ] {
            let err = pipeline_ingest(&db, "cpu v=1 1", 0, &config).unwrap_err();
            assert!(matches!(err, TsdbError::InvalidParameter { .. }));
        }
    }

    #[test]
    fn empty_document_reports_zeroes() {
        let db = ShardedDb::new();
        let report = pipeline_ingest(&db, "", 0, &IngestConfig::default()).unwrap();
        assert_eq!(report, IngestReport::default());
        assert_eq!(db.series_count(), 0);
    }

    #[test]
    fn pipeline_matches_serial_ingest() {
        let text = doc(5, 200);
        for config in configs() {
            let sharded = ShardedDb::with_config(ShardedConfig::new(4, 32));
            let report = pipeline_ingest(&sharded, &text, 0, &config).unwrap();
            let oracle = Tsdb::with_config(TsdbConfig { block_capacity: 32 });
            let n = line_protocol::ingest(&oracle, &text, 0).unwrap();
            assert!(report.is_clean(), "{report:?}");
            assert_eq!(report.points, n);
            assert_eq!(report.lines, text.lines().count());
            let sel = Selector::any();
            let q = RangeQuery::raw(i64::MIN, i64::MAX);
            assert_eq!(
                sharded.query_selector(&sel, q).unwrap(),
                oracle.query_selector(&sel, q).unwrap(),
                "config {config:?}"
            );
            sharded.flush().unwrap();
            oracle.flush().unwrap();
            assert_eq!(sharded.stats(), oracle.stats());
        }
    }

    #[test]
    fn fallback_timestamps_use_global_line_index() {
        // Chunked parsing must produce the same fallback timestamps as
        // the serial path: default_ts + 0-based line index.
        let text = "a v=1\nb v=2\n\na v=3\n# note\nb v=4\n";
        let config = IngestConfig {
            parsers: 3,
            queue_depth: 1,
            chunk_lines: 2,
        };
        let sharded = ShardedDb::with_config(ShardedConfig::new(3, 16));
        pipeline_ingest(&sharded, text, 1000, &config).unwrap();
        let oracle = Tsdb::new();
        line_protocol::ingest(&oracle, text, 1000).unwrap();
        let q = RangeQuery::raw(i64::MIN, i64::MAX);
        for key in ["a.v", "b.v"] {
            let key = SeriesKey::metric(key);
            assert_eq!(
                sharded.query(&key, q).unwrap(),
                oracle.query(&key, q).unwrap()
            );
        }
    }

    #[test]
    fn malformed_lines_skipped_and_reported_in_order() {
        let text = "cpu v=1 1\nbogus\ncpu v=2 2\ncpu v=nope 3\ncpu v=3 4\n";
        let db = ShardedDb::with_config(ShardedConfig::new(2, 16));
        let report =
            pipeline_ingest(&db, text, 0, &IngestConfig::default()).unwrap();
        assert_eq!(report.points, 3);
        assert_eq!(
            report.parse_failures,
            vec![
                ParseFailure {
                    line: 2,
                    reason: "missing field set"
                },
                ParseFailure {
                    line: 4,
                    reason: "field value is not numeric"
                },
            ]
        );
        assert!(report.write_failures.is_empty());
        let key = SeriesKey::metric("cpu.v");
        assert_eq!(
            db.query(&key, RangeQuery::raw(0, 10)).unwrap().len(),
            3
        );
    }

    #[test]
    fn rejected_writes_reported_with_line_numbers() {
        // Line 3 goes backwards in time for cpu.v; line 4 is NaN. Both
        // are deterministic rejections regardless of thread interleaving.
        let text = "cpu v=1 10\ncpu v=2 20\ncpu v=3 5\ncpu v=NaN 30\ncpu v=4 40\n";
        for config in configs() {
            let db = ShardedDb::with_config(ShardedConfig::new(3, 16));
            let report = pipeline_ingest(&db, text, 0, &config).unwrap();
            assert_eq!(report.points, 3, "config {config:?}");
            assert!(report.parse_failures.is_empty());
            assert_eq!(report.write_failures.len(), 2);
            assert_eq!(report.write_failures[0].line, 3);
            assert!(matches!(
                report.write_failures[0].error,
                TsdbError::OutOfOrder { last: 20, got: 5 }
            ));
            assert_eq!(report.write_failures[1].line, 4);
            assert!(matches!(
                report.write_failures[1].error,
                TsdbError::NonFiniteValue { .. }
            ));
        }
    }

    #[test]
    fn report_is_deterministic_across_configs_and_reruns() {
        let mut text = doc(4, 50);
        text.push_str("junk line\ncpu,host=h0 usage=1 0\n"); // parse + write failure
        let mut reports = Vec::new();
        for config in configs() {
            let db = ShardedDb::with_config(ShardedConfig::new(5, 8));
            reports.push(pipeline_ingest(&db, &text, 0, &config).unwrap());
        }
        for pair in reports.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn single_shard_pipeline_still_works() {
        let text = doc(3, 40);
        let db = ShardedDb::with_config(ShardedConfig::new(1, 16));
        let report = pipeline_ingest(&db, &text, 0, &IngestConfig::default()).unwrap();
        assert!(report.is_clean());
        assert_eq!(db.series_count(), 6);
    }
}
