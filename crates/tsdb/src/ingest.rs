//! Streaming concurrent line-protocol ingest for the sharded engine.
//!
//! The ASAP paper (§2) places the operator downstream of production TSDBs
//! fed by live telemetry; this module is the front-end that feeds a
//! [`ShardedDb`] at that rate. The serial [`crate::line_protocol::ingest`]
//! parses and writes one line at a time on the caller's thread; here the
//! document is a *byte stream* — any [`std::io::Read`], a socket, or
//! incremental [`StreamIngestor::feed`] calls — consumed in bounded
//! memory with both halves running concurrently and in parallel:
//!
//! ```text
//!  bytes ─▶ chunker ─▶ bounded work queue ─▶ parser worker 0 ─┐
//!           (line-                        ├─▶ parser worker 1 ─┤ Batch{chunk,pts}
//!            complete                     └─▶ parser worker P-1┘        │
//!            owned chunks)                                     per-shard bounded
//!                                                                  channels
//!                                       ┌─ reorder stage ─ shard writer 0 ◀┤
//!                                       ├─ reorder stage ─ shard writer 1 ◀┤
//!                                       └─ reorder stage ─ shard writer S-1◀┘
//! ```
//!
//! * the **chunker** reassembles complete lines out of arbitrary byte
//!   pieces (reader chunks may split mid-float, mid-escape, or mid-UTF-8
//!   code point — see [`crate::line_protocol`]'s `LineAssembler`) and
//!   groups them into owned chunks of [`IngestConfig::chunk_lines`]
//!   lines, each tagged with its global starting line index;
//! * chunks flow through a bounded **work queue** to the parser workers
//!   (shared queue — any idle worker takes the next chunk, replacing the
//!   old static chunk assignment that required knowing the whole document
//!   up front); each parsed point is routed by the engine's tag-aware
//!   shard hash and batched per `(chunk, shard)`; every chunk sends
//!   exactly one batch to every shard (empty batches included), so
//!   writers can apply chunks **strictly in stream order** with a small
//!   chunk-reorder buffer;
//! * all buffering is bounded: the work queue and per-shard channels hold
//!   [`IngestConfig::queue_depth`] entries, and parsers additionally
//!   throttle against the slowest writer's applied-chunk watermark (a
//!   window of `parsers + queue_depth` chunks), so the pipeline holds at
//!   most `2·(parsers + queue_depth)` chunks at any moment no matter how
//!   long the stream runs — a slow writer backpressures all the way to
//!   the byte source;
//! * with [`IngestConfig::lateness`] set, a per-shard **reorder stage**
//!   (a [`ReorderBuffer`] over that writer's [`crate::shard::Shard`])
//!   sits between the
//!   writer and storage: bounded out-of-order telemetry is buffered and
//!   applied in timestamp order instead of failing per line, late and
//!   duplicate points are counted ([`IngestReport::dropped_late`],
//!   [`IngestReport::dropped_duplicate`]) rather than reported as
//!   failures, and [`StreamIngestor::finish`] flushes every buffer at end
//!   of stream. With `lateness: None` writes go straight to the shard and
//!   ordering violations surface as per-line [`WriteFailure`]s, exactly
//!   like the pre-streaming pipeline.
//!
//! Because chunk application is in stream order, per-series offer order
//! equals stream order no matter how threads interleave — which makes the
//! whole pipeline deterministic: same bytes, same final store, same
//! [`IngestReport`], at any parser/shard/queue/read-buffer configuration.
//!
//! Unlike the serial path, the pipeline does not abort on the first bad
//! line: malformed lines and rejected writes are skipped and reported in
//! the [`IngestReport`] (a live telemetry socket cannot un-send a line).
//!
//! Entry points, thinnest to most general:
//!
//! * [`pipeline_ingest`] / [`ShardedDb::ingest`] — a whole in-memory
//!   document;
//! * [`ingest_reader`] / [`ShardedDb::ingest_reader`] — drain any
//!   [`std::io::Read`] to end of stream;
//! * [`StreamIngestor`] / [`ShardedDb::stream_ingestor`] — a long-running
//!   handle: feed byte pieces as they arrive, poll a live
//!   [`StreamProgress`], `finish()` to flush and collect the final
//!   report. This is the shape a socket listener plugs into.

use std::collections::{BTreeMap, VecDeque};
use std::io::Read;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{Receiver, Sender};

use crate::error::TsdbError;
use crate::line_protocol::{fallback_ts, parse_line, LineAssembler, ParsedPoint};
use crate::obs::IngestMetrics;
use crate::point::DataPoint;
use crate::query::SeriesWriter;
use crate::reorder::{ReorderBuffer, ReorderStats};
use crate::sharded::ShardedDb;
use crate::tags::SeriesKey;
use crate::wal::Wal;

/// Observer of every point the pipeline applies to the store,
/// **post-reorder**: the hook fires inside the shard sink, after the
/// optional reorder stage has released the point and the store write (and
/// WAL append, when configured) succeeded. Per series, hook invocation
/// order therefore equals store apply order — the property standing
/// consumers (live smoothing subscriptions, change feeds) need to mirror
/// the store without re-reading it.
///
/// The hook runs on shard-writer threads, inline with ingest: it must be
/// cheap and must never block, or it becomes ingest backpressure. Failed
/// writes (rejected by the engine or the WAL) do not fire the hook.
#[derive(Clone)]
pub struct ApplyHook(ApplyHookFn);

type ApplyHookFn = Arc<dyn Fn(&SeriesKey, DataPoint) + Send + Sync>;

impl ApplyHook {
    /// Wraps a callback. See the type docs for the ordering contract and
    /// the no-blocking requirement.
    pub fn new(hook: impl Fn(&SeriesKey, DataPoint) + Send + Sync + 'static) -> Self {
        ApplyHook(Arc::new(hook))
    }

    /// Invokes the hook for one applied point.
    pub fn call(&self, key: &SeriesKey, point: DataPoint) {
        (self.0)(key, point)
    }
}

impl std::fmt::Debug for ApplyHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ApplyHook(..)")
    }
}

/// Tuning knobs of the ingest pipeline.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Parser worker threads (default 4).
    pub parsers: usize,
    /// Bound of the work queue and of each per-shard channel, in
    /// chunks/batches (default 8). Smaller values bound memory harder and
    /// throttle the byte source sooner; larger values absorb burstier
    /// shard skew.
    pub queue_depth: usize,
    /// Lines per chunk (default 256). A chunk is the unit of parser
    /// scheduling and of writer-side ordering.
    pub chunk_lines: usize,
    /// Out-of-order tolerance of the per-shard reorder stage, in
    /// timestamp units (default `None`).
    ///
    /// `None` disables the stage: writes go straight to storage and
    /// ordering violations surface as per-line [`WriteFailure`]s.
    /// `Some(l)` buffers each series' recent points and applies them in
    /// timestamp order, tolerating up to `l` units of lateness; points
    /// later than that are counted in [`IngestReport::dropped_late`]
    /// instead of failing. `Some(0)` is an ordering filter: in-order
    /// input passes through, stragglers are dropped, nothing fails.
    pub lateness: Option<i64>,
    /// Write-ahead log sink (default `None`).
    ///
    /// When set, every point the pipeline *applies* (post-reorder) is
    /// appended to the log before the write is acknowledged, under the
    /// WAL's per-shard lock — see [`Wal::log_applied`] for the ordering
    /// contract. The WAL must have been opened with the same shard count
    /// as the destination [`ShardedDb`].
    pub wal: Option<Wal>,
    /// Post-reorder applied-point observer (default `None`); see
    /// [`ApplyHook`].
    pub apply_hook: Option<ApplyHook>,
    /// Stage-latency histograms (default `None` — zero overhead).
    ///
    /// When set, the pipeline records per-piece assemble time, per-chunk
    /// parse time, and per-batch writer time into the bundle's
    /// histograms. Writer time is attributed to
    /// [`IngestMetrics::reorder`] when a reorder stage is configured
    /// (the stage's offers include the store writes it releases) and to
    /// [`IngestMetrics::apply`] for direct writes and end-of-stream
    /// reorder flushes. All timings are per batch, never per point, so
    /// the instrumented hot path stays within a few percent of the
    /// bare one.
    pub metrics: Option<IngestMetrics>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            parsers: 4,
            queue_depth: 8,
            chunk_lines: 256,
            lateness: None,
            wal: None,
            apply_hook: None,
            metrics: None,
        }
    }
}

impl IngestConfig {
    /// Validates the knobs (counts must be positive, lateness
    /// non-negative).
    pub fn validate(&self) -> Result<(), TsdbError> {
        let bad = |name: &'static str| TsdbError::InvalidParameter {
            name,
            message: "ingest pipeline knobs must be positive",
        };
        if self.parsers == 0 {
            return Err(bad("parsers"));
        }
        if self.queue_depth == 0 {
            return Err(bad("queue_depth"));
        }
        if self.chunk_lines == 0 {
            return Err(bad("chunk_lines"));
        }
        if self.lateness.is_some_and(|l| l < 0) {
            return Err(TsdbError::InvalidParameter {
                name: "lateness",
                message: "allowed lateness must be non-negative",
            });
        }
        Ok(())
    }
}

/// One malformed line, skipped by the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFailure {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// Why it failed to parse.
    pub reason: &'static str,
}

/// One parsed point the engine rejected (out-of-order, non-finite, …).
#[derive(Debug, Clone, PartialEq)]
pub struct WriteFailure {
    /// 1-based line number the point came from.
    pub line: usize,
    /// The engine's rejection.
    pub error: TsdbError,
}

/// Outcome of one pipeline ingest, deterministic for a given input.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// Total lines in the stream (including blanks and comments).
    pub lines: usize,
    /// Points written into the store.
    pub points: usize,
    /// Points that arrived out of order but within the configured
    /// lateness and were sorted back into place by the reorder stage
    /// (always 0 with `lateness: None`).
    pub reordered: usize,
    /// Points the reorder stage dropped for arriving later than the
    /// configured lateness (always 0 with `lateness: None`, where such
    /// points surface as [`WriteFailure`]s instead).
    pub dropped_late: usize,
    /// Points the reorder stage dropped as duplicates of a pending
    /// timestamp (always 0 with `lateness: None`).
    pub dropped_duplicate: usize,
    /// Malformed lines, sorted by line number.
    pub parse_failures: Vec<ParseFailure>,
    /// Rejected writes, sorted by line number.
    pub write_failures: Vec<WriteFailure>,
}

impl IngestReport {
    /// Whether every line parsed and every point was accepted by the
    /// engine. Reorder-stage drops (`dropped_late`, `dropped_duplicate`)
    /// are counted separately and do not make a report unclean — they are
    /// the configured late-data policy doing its job.
    pub fn is_clean(&self) -> bool {
        self.parse_failures.is_empty() && self.write_failures.is_empty()
    }
}

impl std::fmt::Display for IngestReport {
    /// Stable one-line ops format, `space`-separated `key=value` tokens:
    ///
    /// ```text
    /// lines=12 points=10 reordered=3 dropped_late=0 dropped_duplicate=0 parse_failures=0 write_failures=0 clean=true
    /// ```
    ///
    /// Failure *counts* (not the per-line details) are rendered so the
    /// line stays bounded no matter how dirty the stream was. The token
    /// set is append-only: parsers may rely on these names.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lines={} points={} reordered={} dropped_late={} dropped_duplicate={} \
             parse_failures={} write_failures={} clean={}",
            self.lines,
            self.points,
            self.reordered,
            self.dropped_late,
            self.dropped_duplicate,
            self.parse_failures.len(),
            self.write_failures.len(),
            self.is_clean(),
        )
    }
}

/// Live counters of a [`StreamIngestor`], safe to poll while the
/// pipeline runs. Counters trail the byte source slightly (points are
/// counted when a writer applies them, not when they are fed) but are
/// exact once [`StreamIngestor::finish`] returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamProgress {
    /// Lines completed by the chunker so far.
    pub lines: usize,
    /// Points written into the store so far.
    pub points: usize,
    /// Out-of-order points repaired by the reorder stage so far.
    pub reordered: usize,
    /// Points dropped as later than the configured lateness so far.
    pub dropped_late: usize,
    /// Points dropped as duplicate timestamps so far.
    pub dropped_duplicate: usize,
    /// Malformed lines seen so far.
    pub parse_failures: usize,
    /// Rejected writes seen so far.
    pub write_failures: usize,
    /// Chunks created but not yet fully applied by every writer — the
    /// pipeline's in-flight buffering. On the blocking
    /// [`StreamIngestor::feed`] path this never exceeds
    /// `2 · (parsers + queue_depth)`; on the non-blocking
    /// [`StreamIngestor::try_feed`] path it additionally counts the
    /// caller-bounded backlog of sealed-but-unsent chunks.
    pub in_flight_chunks: usize,
    /// Points currently held by the reorder stages across all shards.
    pub pending_reorder: usize,
}

impl std::fmt::Display for StreamProgress {
    /// Stable one-line ops format mirroring [`IngestReport`]'s `Display`
    /// (same `key=value` token names for the shared counters), extended
    /// with the two live-only gauges:
    ///
    /// ```text
    /// lines=40 points=36 reordered=2 dropped_late=0 dropped_duplicate=0 parse_failures=0 write_failures=0 in_flight_chunks=3 pending_reorder=12
    /// ```
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lines={} points={} reordered={} dropped_late={} dropped_duplicate={} \
             parse_failures={} write_failures={} in_flight_chunks={} pending_reorder={}",
            self.lines,
            self.points,
            self.reordered,
            self.dropped_late,
            self.dropped_duplicate,
            self.parse_failures,
            self.write_failures,
            self.in_flight_chunks,
            self.pending_reorder,
        )
    }
}

/// One complete-line chunk of the stream, tagged with its position.
#[derive(Debug)]
struct Chunk {
    /// 0-based index in stream order — the writer-side ordering clock.
    index: usize,
    /// Global 0-based line index of `lines[0]` (line numbers and
    /// fallback timestamps are derived from it).
    start_line: usize,
    lines: Vec<String>,
}

/// One chunk's points for one shard. Every chunk sends exactly one batch
/// to every shard — empty ones advance the writer's ordering clock.
struct Batch {
    chunk: usize,
    points: Vec<(usize, ParsedPoint)>,
}

/// Shared pipeline progress: per shard, the next chunk its writer will
/// apply. Parsers wait until their chunk is within `window` of the
/// slowest writer, which bounds every writer's chunk-reorder buffer (a
/// batch is only ever sent while its chunk is less than `min applied +
/// window`, so a writer at chunk `next` buffers fewer than `window`
/// chunks ahead of it).
///
/// Deadlock-free by construction: chunks enter the work queue in index
/// order and parsers dequeue in FIFO order, so the parser holding the
/// minimum unapplied chunk `m` (or about to take it) is never gated
/// (`m < m + window`), and writers always drain their channels, so its
/// sends always complete — `m` strictly advances.
#[derive(Debug)]
struct Progress {
    applied: Vec<AtomicUsize>,
    gate: Mutex<()>,
    wake: std::sync::Condvar,
}

impl Progress {
    fn new(shards: usize) -> Self {
        Self {
            applied: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            gate: Mutex::new(()),
            wake: std::sync::Condvar::new(),
        }
    }

    fn min_applied(&self) -> usize {
        self.applied
            .iter()
            .map(|a| a.load(Ordering::Acquire))
            .min()
            .unwrap_or(usize::MAX)
    }

    /// Blocks until `chunk < min applied + window`.
    fn wait_until_within(&self, chunk: usize, window: usize) {
        if chunk < self.min_applied().saturating_add(window) {
            return;
        }
        let mut guard = self.gate.lock().expect("ingest gate poisoned");
        while chunk >= self.min_applied().saturating_add(window) {
            guard = self.wake.wait(guard).expect("ingest gate poisoned");
        }
    }

    /// Records that `shard`'s writer will next apply `next`.
    fn advance(&self, shard: usize, next: usize) {
        // Store under the gate so a parser cannot check-then-sleep
        // between the store and the notify (missed wakeup).
        let _guard = self.gate.lock().expect("ingest gate poisoned");
        self.applied[shard].store(next, Ordering::Release);
        self.wake.notify_all();
    }
}

/// Counters shared by the chunker, parsers, and writers — the source of
/// [`StreamProgress`] snapshots.
#[derive(Debug)]
struct Shared {
    progress: Progress,
    lines: AtomicUsize,
    /// Chunks emitted by the chunker so far.
    chunks: AtomicUsize,
    points: AtomicUsize,
    reordered: AtomicUsize,
    dropped_late: AtomicUsize,
    dropped_duplicate: AtomicUsize,
    parse_failed: AtomicUsize,
    write_failed: AtomicUsize,
    /// Per shard: points currently pending in that writer's reorder
    /// stage.
    pending_reorder: Vec<AtomicUsize>,
}

impl Shared {
    fn new(shards: usize) -> Self {
        Self {
            progress: Progress::new(shards),
            lines: AtomicUsize::new(0),
            chunks: AtomicUsize::new(0),
            points: AtomicUsize::new(0),
            reordered: AtomicUsize::new(0),
            dropped_late: AtomicUsize::new(0),
            dropped_duplicate: AtomicUsize::new(0),
            parse_failed: AtomicUsize::new(0),
            write_failed: AtomicUsize::new(0),
            pending_reorder: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
        }
    }
}

/// Write-only handle to one shard of the engine — the sink each writer's
/// reorder stage releases into. With a WAL attached, the store write and
/// the log append happen under the WAL's shard lock so the log's
/// per-series record order always equals store apply order.
#[derive(Clone)]
struct ShardSink {
    db: ShardedDb,
    idx: usize,
    wal: Option<Wal>,
    hook: Option<ApplyHook>,
}

impl SeriesWriter for ShardSink {
    fn write_point(&self, key: &SeriesKey, point: DataPoint) -> Result<(), TsdbError> {
        let result = match &self.wal {
            None => self.db.shards()[self.idx].write(key, point),
            Some(wal) => wal.log_applied(self.idx, key, point, || {
                self.db.shards()[self.idx].write(key, point)
            }),
        };
        // The hook observes applied points only, after the write (and WAL
        // append) committed — a rejected point never reaches subscribers.
        if result.is_ok() {
            if let Some(hook) = &self.hook {
                hook.call(key, point);
            }
        }
        result
    }
}

/// Ingests a whole in-memory line-protocol document into `db` through
/// the streaming pipeline; see the module docs for topology and
/// semantics.
///
/// Records missing a timestamp take `default_ts` plus the 0-based line
/// index, exactly like the serial [`crate::line_protocol::ingest`].
/// Returns `Err` only for an invalid `config`; data problems (malformed
/// lines, rejected writes) are skipped and reported.
pub fn pipeline_ingest(
    db: &ShardedDb,
    text: &str,
    default_ts: i64,
    config: &IngestConfig,
) -> Result<IngestReport, TsdbError> {
    let mut ingestor = StreamIngestor::new(db, default_ts, config.clone())?;
    ingestor.feed(text.as_bytes());
    Ok(ingestor.finish())
}

/// Drains `reader` to end of stream through the streaming pipeline in
/// bounded memory, using a fixed-size read buffer (the pipeline is
/// oblivious to where reads split — any piece boundary, including
/// mid-line and mid-UTF-8, tokenizes identically).
///
/// Returns `Err` for an invalid `config` or a reader error
/// ([`TsdbError::Io`]); in the latter case the pipeline is shut down
/// via [`StreamIngestor::abort`] first, so every *complete* line fed
/// before the failure is applied (reorder buffers flushed) while a
/// trailing partial line — truncated mid-record by the failure — is
/// discarded rather than ingested as if it were whole. The partial
/// report is discarded with it; a caller that needs progress
/// accounting across source failures should drive a
/// [`StreamIngestor`] directly. Data problems are skipped and
/// reported, as in [`pipeline_ingest`].
pub fn ingest_reader<R: Read>(
    db: &ShardedDb,
    mut reader: R,
    default_ts: i64,
    config: &IngestConfig,
) -> Result<IngestReport, TsdbError> {
    let mut ingestor = StreamIngestor::new(db, default_ts, config.clone())?;
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => ingestor.feed(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                // Apply every complete line fed so far (the truncated
                // tail is discarded), then surface the source failure.
                ingestor.abort();
                return Err(TsdbError::Io {
                    message: e.to_string(),
                });
            }
        }
    }
    Ok(ingestor.finish())
}

/// A long-running handle on the streaming pipeline: feed byte pieces as
/// they arrive, poll a live [`StreamProgress`], and
/// [`finish`](StreamIngestor::finish) to flush the reorder stages and
/// collect the final [`IngestReport`]. Created by
/// [`ShardedDb::stream_ingestor`].
///
/// [`feed`](StreamIngestor::feed) blocks when the pipeline's bounded
/// queues are full — backpressure reaches the byte source, so a handle
/// fed from a socket holds bounded memory no matter how fast data
/// arrives. Dropping the handle without `finish` applies every complete
/// line already fed (the drop blocks until the workers drain, flush
/// their reorder stages, and exit) but abandons the report and discards
/// a trailing partial line; [`abort`](StreamIngestor::abort) does the
/// same while handing the report back.
#[derive(Debug)]
pub struct StreamIngestor {
    assembler: LineAssembler,
    chunk_lines: usize,
    /// Lines accumulated toward the next chunk.
    pending_lines: Vec<String>,
    /// Global 0-based line index of `pending_lines[0]`.
    chunk_start: usize,
    line_count: usize,
    next_chunk: usize,
    /// Sealed chunks not yet handed to the work queue. The blocking
    /// [`StreamIngestor::feed`] path drains this immediately (so it
    /// holds at most one chunk transiently); the non-blocking
    /// [`StreamIngestor::try_feed`] path lets it grow while the queue
    /// is full and relies on the caller to stop reading its source
    /// until [`StreamIngestor::try_pump`] reports it empty.
    backlog: VecDeque<Chunk>,
    work_tx: Option<Sender<Chunk>>,
    parsers: Vec<JoinHandle<Vec<ParseFailure>>>,
    writers: Vec<JoinHandle<(usize, Vec<WriteFailure>)>>,
    shared: Arc<Shared>,
    /// Scratch for lines completed by one `feed` call.
    scratch: Vec<String>,
    /// Assemble-stage histogram handle (`None` → no timing at all).
    metrics: Option<IngestMetrics>,
}

impl StreamIngestor {
    /// Builds the pipeline (spawns parser and writer threads) against
    /// `db`. Returns `Err` only for an invalid `config`.
    pub fn new(
        db: &ShardedDb,
        default_ts: i64,
        config: IngestConfig,
    ) -> Result<Self, TsdbError> {
        config.validate()?;
        let shards = db.shard_count();
        if let Some(wal) = &config.wal {
            if wal.shard_count() != shards {
                return Err(TsdbError::InvalidParameter {
                    name: "wal",
                    message: "WAL shard count must match the destination store's",
                });
            }
        }
        let shared = Arc::new(Shared::new(shards));
        let window = config.parsers + config.queue_depth;

        let mut batch_txs: Vec<Sender<Batch>> = Vec::with_capacity(shards);
        let mut writers = Vec::with_capacity(shards);
        for idx in 0..shards {
            let (tx, rx) = crossbeam::channel::bounded(config.queue_depth);
            batch_txs.push(tx);
            let db = db.clone();
            let shared = Arc::clone(&shared);
            let lateness = config.lateness;
            let wal = config.wal.clone();
            let hook = config.apply_hook.clone();
            let metrics = config.metrics.clone();
            writers.push(std::thread::spawn(move || {
                shard_writer(db, idx, rx, shared, lateness, wal, hook, metrics)
            }));
        }

        let (work_tx, work_rx) = crossbeam::channel::bounded::<Chunk>(config.queue_depth);
        let work_rx = Arc::new(Mutex::new(work_rx));
        let mut parsers = Vec::with_capacity(config.parsers);
        for _ in 0..config.parsers {
            let db = db.clone();
            let work_rx = Arc::clone(&work_rx);
            let batch_txs = batch_txs.clone();
            let shared = Arc::clone(&shared);
            let metrics = config.metrics.clone();
            parsers.push(std::thread::spawn(move || {
                parse_worker(db, work_rx, batch_txs, shared, default_ts, window, metrics)
            }));
        }
        // The spawned parsers hold their own sender clones; dropping ours
        // lets writers observe hangup as soon as the last parser exits.
        drop(batch_txs);

        Ok(Self {
            assembler: LineAssembler::new(),
            chunk_lines: config.chunk_lines,
            pending_lines: Vec::new(),
            chunk_start: 0,
            line_count: 0,
            next_chunk: 0,
            backlog: VecDeque::new(),
            work_tx: Some(work_tx),
            parsers,
            writers,
            shared,
            scratch: Vec::new(),
            metrics: config.metrics,
        })
    }

    /// Feeds the next piece of the byte stream. Pieces may split
    /// anywhere — lines are reassembled across calls. Blocks when the
    /// pipeline's bounded queues are full (backpressure).
    pub fn feed(&mut self, bytes: &[u8]) {
        let mut completed = std::mem::take(&mut self.scratch);
        self.assemble(bytes, &mut completed);
        for line in completed.drain(..) {
            self.push_line(line);
            // Send chunks as the lines arrive (not after the whole
            // piece) so memory stays bounded by the pipeline window
            // even when one piece is an entire document.
            if !self.backlog.is_empty() {
                self.pump_blocking()
                    .expect("ingest parser workers hung up");
            }
        }
        self.scratch = completed;
    }

    /// Non-blocking [`StreamIngestor::feed`]: assembles complete lines
    /// out of `bytes`, seals full chunks onto an internal backlog, and
    /// offers backlogged chunks to the pipeline without ever blocking
    /// the caller.
    ///
    /// All of `bytes` is always consumed. The return value is
    /// [`StreamIngestor::try_pump`]'s: `true` when the backlog is empty
    /// (everything fed has been handed to the pipeline), `false` when
    /// the bounded work queue is still full. A caller that stops
    /// reading its source while this returns `false` — the event-loop
    /// server does — keeps memory bounded by one read's worth of
    /// sealed chunks, preserving end-to-end backpressure without a
    /// blocked thread.
    pub fn try_feed(&mut self, bytes: &[u8]) -> bool {
        let mut completed = std::mem::take(&mut self.scratch);
        self.assemble(bytes, &mut completed);
        for line in completed.drain(..) {
            self.push_line(line);
        }
        self.scratch = completed;
        self.try_pump()
    }

    /// Offers backlogged chunks to the pipeline without blocking.
    /// Returns `true` once the backlog is empty, `false` if the bounded
    /// work queue is still full (retry after a poll interval — parser
    /// progress, not new input, is what frees a slot).
    ///
    /// # Panics
    ///
    /// Panics if every parser worker has died, which only happens when
    /// a worker panicked — the same contract as
    /// [`StreamIngestor::feed`].
    pub fn try_pump(&mut self) -> bool {
        let Some(tx) = self.work_tx.as_ref() else {
            return true;
        };
        while let Some(chunk) = self.backlog.pop_front() {
            match tx.try_send(chunk) {
                Ok(()) => {}
                Err(crossbeam::channel::TrySendError::Full(chunk)) => {
                    self.backlog.push_front(chunk);
                    return false;
                }
                Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                    panic!("ingest parser workers hung up")
                }
            }
        }
        true
    }

    /// A live snapshot of the pipeline's counters.
    pub fn progress(&self) -> StreamProgress {
        let chunks = self.shared.chunks.load(Ordering::Acquire);
        let applied = self.shared.progress.min_applied().min(chunks);
        StreamProgress {
            lines: self.shared.lines.load(Ordering::Acquire),
            points: self.shared.points.load(Ordering::Acquire),
            reordered: self.shared.reordered.load(Ordering::Acquire),
            dropped_late: self.shared.dropped_late.load(Ordering::Acquire),
            dropped_duplicate: self.shared.dropped_duplicate.load(Ordering::Acquire),
            parse_failures: self.shared.parse_failed.load(Ordering::Acquire),
            write_failures: self.shared.write_failed.load(Ordering::Acquire),
            in_flight_chunks: chunks - applied,
            pending_reorder: self
                .shared
                .pending_reorder
                .iter()
                .map(|p| p.load(Ordering::Acquire))
                .sum(),
        }
    }

    /// Ends the stream after a source failure: every *complete* line
    /// already fed is applied and every reorder stage flushed, but a
    /// trailing partial line — known to be truncated, not a real
    /// record — is discarded instead of ingested. Returns the report of
    /// what did land.
    pub fn abort(mut self) -> IngestReport {
        self.assembler = LineAssembler::new();
        self.finish()
    }

    /// Ends the stream: the trailing unterminated line (if any) becomes
    /// the last line, every reorder stage is flushed, all workers are
    /// joined, and the final deterministic [`IngestReport`] is returned.
    pub fn finish(mut self) -> IngestReport {
        let mut tail = std::mem::take(&mut self.scratch);
        self.assembler.finish(&mut tail);
        for line in tail.drain(..) {
            self.push_line(line);
        }
        let mut report = self.shutdown(true);
        report.reordered = self.shared.reordered.load(Ordering::Acquire);
        report.dropped_late = self.shared.dropped_late.load(Ordering::Acquire);
        report.dropped_duplicate = self.shared.dropped_duplicate.load(Ordering::Acquire);
        report.parse_failures.sort_by_key(|f| f.line);
        report.write_failures.sort_by_key(|f| f.line);
        report
    }

    /// Sends the pending chunk, hangs up the work queue (parsers drain
    /// it and exit, writers see their senders drop, apply the tail, and
    /// flush their reorder stages), and joins every worker. Shared by
    /// [`StreamIngestor::finish`] and `Drop`; idempotent. `Drop` passes
    /// `propagate_panics: false` so a panicking worker does not abort
    /// the process with a double panic.
    fn shutdown(&mut self, propagate_panics: bool) -> IngestReport {
        if self.work_tx.is_some() {
            self.seal_chunk();
            if propagate_panics {
                self.pump_blocking()
                    .expect("ingest parser workers hung up");
            } else {
                // Inside `Drop` (possibly mid-unwind): a dead parser
                // must not turn into a double panic and abort.
                let _ = self.pump_blocking();
            }
        }
        drop(self.work_tx.take());
        let mut report = IngestReport {
            lines: self.line_count,
            ..IngestReport::default()
        };
        for handle in self.parsers.drain(..) {
            match handle.join() {
                Ok(failures) => report.parse_failures.extend(failures),
                Err(panic) if propagate_panics => {
                    panic!("ingest parser worker panicked: {panic:?}")
                }
                Err(_) => {}
            }
        }
        for handle in self.writers.drain(..) {
            match handle.join() {
                Ok((written, failures)) => {
                    report.points += written;
                    report.write_failures.extend(failures);
                }
                Err(panic) if propagate_panics => {
                    panic!("ingest shard writer panicked: {panic:?}")
                }
                Err(_) => {}
            }
        }
        report
    }

    /// Runs the line assembler over one byte piece, timing it into the
    /// assemble-stage histogram when metrics are attached (the timer is
    /// skipped entirely otherwise — the uninstrumented path pays
    /// nothing). Backpressure waits in `feed` happen outside this, so
    /// the histogram reflects reassembly cost, not queue waits.
    fn assemble(&mut self, bytes: &[u8], completed: &mut Vec<String>) {
        match &self.metrics {
            None => self.assembler.push(bytes, completed),
            Some(metrics) => {
                let started = Instant::now();
                self.assembler.push(bytes, completed);
                metrics.assemble.observe_duration(started.elapsed());
            }
        }
    }

    fn push_line(&mut self, line: String) {
        if self.pending_lines.is_empty() {
            self.chunk_start = self.line_count;
        }
        self.line_count += 1;
        self.shared.lines.fetch_add(1, Ordering::Release);
        self.pending_lines.push(line);
        if self.pending_lines.len() == self.chunk_lines {
            self.seal_chunk();
        }
    }

    /// Moves the pending lines onto the backlog as one sealed chunk
    /// (no-op with no pending lines). Sealing assigns the chunk its
    /// stream-order index; sending is a separate step so the blocking
    /// and non-blocking paths share this.
    fn seal_chunk(&mut self) {
        if self.pending_lines.is_empty() {
            return;
        }
        let chunk = Chunk {
            index: self.next_chunk,
            start_line: self.chunk_start,
            lines: std::mem::take(&mut self.pending_lines),
        };
        self.next_chunk += 1;
        self.shared.chunks.store(self.next_chunk, Ordering::Release);
        self.backlog.push_back(chunk);
    }

    /// Blocking-sends every backlogged chunk to the parsers — the
    /// backpressure point of [`StreamIngestor::feed`]. A send fails
    /// only if every parser died, which only happens on panic.
    fn pump_blocking(&mut self) -> Result<(), crossbeam::channel::SendError<Chunk>> {
        let tx = self
            .work_tx
            .as_ref()
            .expect("stream already finished");
        while let Some(chunk) = self.backlog.pop_front() {
            tx.send(chunk)?;
        }
        Ok(())
    }
}

impl Drop for StreamIngestor {
    /// Applies every complete line already fed (blocking until the
    /// workers drain and flush their reorder stages), discarding the
    /// report and any trailing partial line. A no-op after
    /// [`StreamIngestor::finish`] / [`StreamIngestor::abort`].
    fn drop(&mut self) {
        self.shutdown(false);
    }
}

/// Takes chunks off the shared work queue (FIFO), parses them, routes
/// points to per-shard batches, and sends one batch per (chunk, shard).
/// Returns this worker's parse failures.
fn parse_worker(
    db: ShardedDb,
    work: Arc<Mutex<Receiver<Chunk>>>,
    batch_txs: Vec<Sender<Batch>>,
    shared: Arc<Shared>,
    default_ts: i64,
    window: usize,
    metrics: Option<IngestMetrics>,
) -> Vec<ParseFailure> {
    let mut failures = Vec::new();
    loop {
        let next = {
            let guard = work.lock().expect("ingest work queue poisoned");
            guard.recv()
        };
        let Ok(chunk) = next else {
            break; // chunker hung up: stream over
        };
        // Don't run unboundedly ahead of the slowest writer: this keeps
        // every writer's chunk-reorder buffer within `window` chunks even
        // when a peer parser stalls on an earlier chunk.
        shared.progress.wait_until_within(chunk.index, window);
        // Timed from here (after the gate, before the sends) so the
        // histogram is parse cost, not backpressure waits.
        let parse_started = metrics.as_ref().map(|_| Instant::now());
        let mut per_shard: Vec<Vec<(usize, ParsedPoint)>> = vec![Vec::new(); batch_txs.len()];
        for (offset, raw) in chunk.lines.iter().enumerate() {
            let idx = chunk.start_line + offset;
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_line(line, line_no, fallback_ts(default_ts, idx)) {
                Ok(points) => {
                    for point in points {
                        per_shard[db.shard_of(&point.key)].push((line_no, point));
                    }
                }
                Err(TsdbError::Parse { line, reason }) => {
                    shared.parse_failed.fetch_add(1, Ordering::Release);
                    failures.push(ParseFailure { line, reason });
                }
                // parse_line only constructs Parse errors; anything else
                // would be a bug worth surfacing loudly.
                Err(other) => panic!("parse_line returned a non-parse error: {other:?}"),
            }
        }
        if let (Some(metrics), Some(started)) = (&metrics, parse_started) {
            metrics.parse.observe_duration(started.elapsed());
        }
        for (tx, points) in batch_txs.iter().zip(per_shard) {
            // Blocks when the shard's queue is full: backpressure. Fails
            // only if the writer died, which only happens on panic.
            tx.send(Batch {
                chunk: chunk.index,
                points,
            })
            .expect("ingest shard writer hung up");
        }
    }
    failures
}

/// Applies batches to one shard strictly in chunk order, buffering
/// out-of-order chunk arrivals (bounded: parsers only send chunks within
/// the [`Progress`] window of the slowest writer), feeding points
/// through the optional reorder stage. Returns points written and
/// rejected writes.
#[allow(clippy::too_many_arguments)]
fn shard_writer(
    db: ShardedDb,
    shard_idx: usize,
    rx: Receiver<Batch>,
    shared: Arc<Shared>,
    lateness: Option<i64>,
    wal: Option<Wal>,
    hook: Option<ApplyHook>,
    metrics: Option<IngestMetrics>,
) -> (usize, Vec<WriteFailure>) {
    let sink = ShardSink {
        db,
        idx: shard_idx,
        wal,
        hook,
    };
    let mut reorder = lateness.map(|l| {
        ReorderBuffer::new(sink.clone(), l)
            .expect("lateness validated by IngestConfig::validate")
    });
    let mut published = ReorderStats::default();
    let mut written = 0usize;
    let mut failures = Vec::new();
    let mut pending: BTreeMap<usize, Vec<(usize, ParsedPoint)>> = BTreeMap::new();
    let mut next = 0usize;
    for batch in rx.iter() {
        pending.insert(batch.chunk, batch.points);
        let before = next;
        while let Some(points) = pending.remove(&next) {
            apply_batch(
                &sink,
                points,
                reorder.as_mut(),
                &mut written,
                &mut failures,
                &shared,
                metrics.as_ref(),
            );
            next += 1;
        }
        if next != before {
            publish_reorder(&shared, shard_idx, reorder.as_ref(), &mut published);
            shared.progress.advance(shard_idx, next);
        }
    }
    // Senders hung up: every chunk has arrived, the leftovers are the
    // contiguous tail — a BTreeMap iterates them in chunk order.
    let tail = std::mem::take(&mut pending);
    let applied_tail = !tail.is_empty();
    for (_, points) in tail {
        apply_batch(
            &sink,
            points,
            reorder.as_mut(),
            &mut written,
            &mut failures,
            &shared,
            metrics.as_ref(),
        );
        next += 1;
    }
    // End of stream: release everything still held back by watermarks.
    // The flush is pure release-into-storage, so its time lands in the
    // apply histogram.
    if let Some(rb) = reorder.as_mut() {
        let flush_started = metrics.as_ref().map(|_| Instant::now());
        let released = rb
            .flush()
            .expect("shard flush failed on a validated sink");
        if let (Some(m), Some(started)) = (&metrics, flush_started) {
            m.apply.observe_duration(started.elapsed());
        }
        written += released;
        shared.points.fetch_add(released, Ordering::Release);
    }
    publish_reorder(&shared, shard_idx, reorder.as_ref(), &mut published);
    if applied_tail {
        shared.progress.advance(shard_idx, next);
    }
    (written, failures)
}

/// Applies one batch's points through the reorder stage (or straight to
/// the shard sink, which also carries the optional WAL), updating live
/// counters. With metrics attached, the batch is timed once: into the
/// reorder histogram when a reorder stage is in the path (its offers
/// include the store writes they release), into the apply histogram for
/// direct writes.
fn apply_batch(
    sink: &ShardSink,
    points: Vec<(usize, ParsedPoint)>,
    mut reorder: Option<&mut ReorderBuffer<ShardSink>>,
    written: &mut usize,
    failures: &mut Vec<WriteFailure>,
    shared: &Shared,
    metrics: Option<&IngestMetrics>,
) {
    let batch_started = metrics.map(|_| Instant::now());
    let via_reorder = reorder.is_some();
    let mut batch_written = 0usize;
    for (line, point) in points {
        let result = match reorder.as_deref_mut() {
            None => sink.write_point(&point.key, point.point).map(|()| 1),
            Some(rb) => rb.offer(&point.key, point.point),
        };
        match result {
            Ok(released) => batch_written += released,
            Err(error) => {
                shared.write_failed.fetch_add(1, Ordering::Release);
                failures.push(WriteFailure { line, error });
            }
        }
    }
    if let (Some(metrics), Some(started)) = (metrics, batch_started) {
        let stage = if via_reorder {
            &metrics.reorder
        } else {
            &metrics.apply
        };
        stage.observe_duration(started.elapsed());
    }
    *written += batch_written;
    shared.points.fetch_add(batch_written, Ordering::Release);
}

/// Publishes the delta of this writer's reorder statistics into the
/// shared live counters (no-op without a reorder stage).
fn publish_reorder(
    shared: &Shared,
    shard_idx: usize,
    reorder: Option<&ReorderBuffer<ShardSink>>,
    published: &mut ReorderStats,
) {
    let Some(rb) = reorder else { return };
    let stats = rb.stats();
    shared
        .reordered
        .fetch_add(stats.reordered - published.reordered, Ordering::Release);
    shared
        .dropped_late
        .fetch_add(stats.dropped_late - published.dropped_late, Ordering::Release);
    shared.dropped_duplicate.fetch_add(
        stats.dropped_duplicate - published.dropped_duplicate,
        Ordering::Release,
    );
    shared.pending_reorder[shard_idx].store(rb.pending(), Ordering::Release);
    *published = stats;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{Tsdb, TsdbConfig};
    use crate::line_protocol;
    use crate::query::RangeQuery;
    use crate::sharded::ShardedConfig;
    use crate::tags::{Selector, SeriesKey};

    /// A document with several interleaved series, explicit timestamps.
    fn doc(hosts: usize, points: i64) -> String {
        let mut out = String::new();
        for t in 0..points {
            for h in 0..hosts {
                out.push_str(&format!(
                    "cpu,host=h{h} usage={},idle={} {t}\n",
                    (t as f64 * 0.1).sin() + h as f64,
                    100 - h as i64,
                ));
            }
        }
        out
    }

    fn configs() -> Vec<IngestConfig> {
        vec![
            IngestConfig::default(),
            IngestConfig {
                parsers: 1,
                queue_depth: 1,
                chunk_lines: 1,
                lateness: None,
                ..IngestConfig::default()
            },
            IngestConfig {
                parsers: 7,
                queue_depth: 2,
                chunk_lines: 3,
                lateness: None,
                ..IngestConfig::default()
            },
        ]
    }

    fn full() -> RangeQuery {
        RangeQuery::raw(i64::MIN + 1, i64::MAX)
    }

    #[test]
    fn invalid_configs_rejected() {
        let db = ShardedDb::new();
        for config in [
            IngestConfig {
                parsers: 0,
                ..IngestConfig::default()
            },
            IngestConfig {
                queue_depth: 0,
                ..IngestConfig::default()
            },
            IngestConfig {
                chunk_lines: 0,
                ..IngestConfig::default()
            },
            IngestConfig {
                lateness: Some(-1),
                ..IngestConfig::default()
            },
        ] {
            let err = pipeline_ingest(&db, "cpu v=1 1", 0, &config).unwrap_err();
            assert!(matches!(err, TsdbError::InvalidParameter { .. }));
        }
    }

    #[test]
    fn empty_document_reports_zeroes() {
        let db = ShardedDb::new();
        let report = pipeline_ingest(&db, "", 0, &IngestConfig::default()).unwrap();
        assert_eq!(report, IngestReport::default());
        assert_eq!(db.series_count(), 0);
    }

    #[test]
    fn pipeline_matches_serial_ingest() {
        let text = doc(5, 200);
        for config in configs() {
            let sharded = ShardedDb::with_config(ShardedConfig::new(4, 32));
            let report = pipeline_ingest(&sharded, &text, 0, &config).unwrap();
            let oracle = Tsdb::with_config(TsdbConfig { block_capacity: 32 });
            let n = line_protocol::ingest(&oracle, &text, 0).unwrap();
            assert!(report.is_clean(), "{report:?}");
            assert_eq!(report.points, n);
            assert_eq!(report.lines, text.lines().count());
            let sel = Selector::any();
            let q = RangeQuery::raw(i64::MIN, i64::MAX);
            assert_eq!(
                sharded.query_selector(&sel, q).unwrap(),
                oracle.query_selector(&sel, q).unwrap(),
                "config {config:?}"
            );
            sharded.flush().unwrap();
            oracle.flush().unwrap();
            assert_eq!(sharded.stats(), oracle.stats());
        }
    }

    #[test]
    fn stage_metrics_observe_every_pipeline_stage() {
        let registry = crate::obs::Registry::new();
        let metrics = IngestMetrics::new(&registry);
        let text = doc(4, 50);
        let lines = text.lines().count() as u64;

        // Without a reorder stage, writer batches land in `apply`.
        let db = ShardedDb::with_config(ShardedConfig::new(2, 32));
        let config = IngestConfig {
            chunk_lines: 16,
            metrics: Some(metrics.clone()),
            ..IngestConfig::default()
        };
        let report = pipeline_ingest(&db, &text, 0, &config).unwrap();
        assert!(report.is_clean(), "{report:?}");
        let chunks = lines.div_ceil(16);
        assert!(metrics.assemble.snapshot().count >= 1);
        assert_eq!(metrics.parse.snapshot().count, chunks);
        // One batch per (applied chunk, shard): 2 shards.
        assert_eq!(metrics.apply.snapshot().count, chunks * 2);
        assert_eq!(metrics.reorder.snapshot().count, 0);

        // With a reorder stage, batches land in `reorder` and the
        // end-of-stream flush (one per shard) lands in `apply`.
        let apply_before = metrics.apply.snapshot().count;
        let db = ShardedDb::with_config(ShardedConfig::new(2, 32));
        let config = IngestConfig {
            chunk_lines: 16,
            lateness: Some(10),
            metrics: Some(metrics.clone()),
            ..IngestConfig::default()
        };
        pipeline_ingest(&db, &text, 0, &config).unwrap();
        assert_eq!(metrics.reorder.snapshot().count, chunks * 2);
        assert_eq!(metrics.apply.snapshot().count, apply_before + 2);
    }

    #[test]
    fn fallback_timestamps_use_global_line_index() {
        // Chunked parsing must produce the same fallback timestamps as
        // the serial path: default_ts + 0-based line index.
        let text = "a v=1\nb v=2\n\na v=3\n# note\nb v=4\n";
        let config = IngestConfig {
            parsers: 3,
            queue_depth: 1,
            chunk_lines: 2,
            lateness: None,
            ..IngestConfig::default()
        };
        let sharded = ShardedDb::with_config(ShardedConfig::new(3, 16));
        pipeline_ingest(&sharded, text, 1000, &config).unwrap();
        let oracle = Tsdb::new();
        line_protocol::ingest(&oracle, text, 1000).unwrap();
        let q = RangeQuery::raw(i64::MIN, i64::MAX);
        for key in ["a.v", "b.v"] {
            let key = SeriesKey::metric(key);
            assert_eq!(
                sharded.query(&key, q).unwrap(),
                oracle.query(&key, q).unwrap()
            );
        }
    }

    #[test]
    fn malformed_lines_skipped_and_reported_in_order() {
        let text = "cpu v=1 1\nbogus\ncpu v=2 2\ncpu v=nope 3\ncpu v=3 4\n";
        let db = ShardedDb::with_config(ShardedConfig::new(2, 16));
        let report =
            pipeline_ingest(&db, text, 0, &IngestConfig::default()).unwrap();
        assert_eq!(report.points, 3);
        assert_eq!(
            report.parse_failures,
            vec![
                ParseFailure {
                    line: 2,
                    reason: "missing field set"
                },
                ParseFailure {
                    line: 4,
                    reason: "field value is not numeric"
                },
            ]
        );
        assert!(report.write_failures.is_empty());
        let key = SeriesKey::metric("cpu.v");
        assert_eq!(
            db.query(&key, RangeQuery::raw(0, 10)).unwrap().len(),
            3
        );
    }

    #[test]
    fn rejected_writes_reported_with_line_numbers() {
        // Line 3 goes backwards in time for cpu.v; line 4 is NaN. Both
        // are deterministic rejections regardless of thread interleaving.
        let text = "cpu v=1 10\ncpu v=2 20\ncpu v=3 5\ncpu v=NaN 30\ncpu v=4 40\n";
        for config in configs() {
            let db = ShardedDb::with_config(ShardedConfig::new(3, 16));
            let report = pipeline_ingest(&db, text, 0, &config).unwrap();
            assert_eq!(report.points, 3, "config {config:?}");
            assert!(report.parse_failures.is_empty());
            assert_eq!(report.write_failures.len(), 2);
            assert_eq!(report.write_failures[0].line, 3);
            assert!(matches!(
                report.write_failures[0].error,
                TsdbError::OutOfOrder { last: 20, got: 5 }
            ));
            assert_eq!(report.write_failures[1].line, 4);
            assert!(matches!(
                report.write_failures[1].error,
                TsdbError::NonFiniteValue { .. }
            ));
        }
    }

    #[test]
    fn report_is_deterministic_across_configs_and_reruns() {
        let mut text = doc(4, 50);
        text.push_str("junk line\ncpu,host=h0 usage=1 0\n"); // parse + write failure
        let mut reports = Vec::new();
        for config in configs() {
            let db = ShardedDb::with_config(ShardedConfig::new(5, 8));
            reports.push(pipeline_ingest(&db, &text, 0, &config).unwrap());
        }
        for pair in reports.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn single_shard_pipeline_still_works() {
        let text = doc(3, 40);
        let db = ShardedDb::with_config(ShardedConfig::new(1, 16));
        let report = pipeline_ingest(&db, &text, 0, &IngestConfig::default()).unwrap();
        assert!(report.is_clean());
        assert_eq!(db.series_count(), 6);
    }

    #[test]
    fn reader_ingest_matches_in_memory_pipeline() {
        let text = doc(4, 120);
        let config = IngestConfig {
            parsers: 3,
            queue_depth: 2,
            chunk_lines: 7,
            lateness: None,
            ..IngestConfig::default()
        };
        let streamed = ShardedDb::with_config(ShardedConfig::new(3, 32));
        let report_r = ingest_reader(
            &streamed,
            std::io::Cursor::new(text.as_bytes()),
            0,
            &config,
        )
        .unwrap();
        let in_memory = ShardedDb::with_config(ShardedConfig::new(3, 32));
        let report_m = pipeline_ingest(&in_memory, &text, 0, &config).unwrap();
        assert_eq!(report_r, report_m);
        assert_eq!(
            streamed.query_selector(&Selector::any(), full()).unwrap(),
            in_memory.query_selector(&Selector::any(), full()).unwrap()
        );
    }

    #[test]
    fn incremental_feeds_split_anywhere_match_whole_document() {
        // Feed one byte at a time: every line boundary, float, and escape
        // is split mid-token at some point.
        let mut text = doc(3, 30);
        text.push_str("tail v=9"); // no trailing newline
        let config = IngestConfig {
            parsers: 2,
            queue_depth: 1,
            chunk_lines: 3,
            lateness: None,
            ..IngestConfig::default()
        };
        let db = ShardedDb::with_config(ShardedConfig::new(2, 16));
        let mut ing = StreamIngestor::new(&db, 0, config.clone()).unwrap();
        for b in text.as_bytes() {
            ing.feed(std::slice::from_ref(b));
        }
        let report = ing.finish();
        let whole = ShardedDb::with_config(ShardedConfig::new(2, 16));
        let whole_report = pipeline_ingest(&whole, &text, 0, &config).unwrap();
        assert_eq!(report, whole_report);
        assert_eq!(report.lines, text.lines().count());
        assert_eq!(
            db.query_selector(&Selector::any(), full()).unwrap(),
            whole.query_selector(&Selector::any(), full()).unwrap()
        );
    }

    #[test]
    fn lateness_repairs_out_of_order_stream_without_failures() {
        // Each series' timestamps arrive jittered by at most 2 slots;
        // lateness 5 covers it — so the strict engine sees only in-order
        // writes and the report is clean.
        let text = "m v=3 3\nm v=1 1\nm v=2 2\nm v=7 7\nm v=5 5\nm v=4 4\n\
                    m v=9 9\nm v=6 6\nm v=8 8\nm v=12 12\nm v=10 10\nm v=11 11\n";
        for chunk_lines in [1, 4, 100] {
            let config = IngestConfig {
                parsers: 2,
                queue_depth: 2,
                chunk_lines,
                lateness: Some(5),
                ..IngestConfig::default()
            };
            let db = ShardedDb::with_config(ShardedConfig::new(2, 4));
            let report = pipeline_ingest(&db, text, 0, &config).unwrap();
            assert!(report.is_clean(), "{report:?}");
            assert_eq!(report.points, 12);
            assert_eq!(report.dropped_late, 0);
            assert_eq!(report.dropped_duplicate, 0);
            // 1, 2, 5, 4, 6, 8, 10, 11 arrive after a later timestamp:
            // 8 repaired reorderings, deterministically.
            assert_eq!(report.reordered, 8);
            let got = db.query(&SeriesKey::metric("m.v"), full()).unwrap();
            let want: Vec<_> = (1..=12).map(|t| DataPoint::new(t, t as f64)).collect();
            assert_eq!(got, want, "chunk_lines {chunk_lines}");
        }
    }

    #[test]
    fn lateness_drops_are_counted_not_failed() {
        // 100 then 10: 10 is 90 late, beyond lateness 5 — dropped and
        // counted, not a write failure. The NaN still fails per line.
        let text = "m v=1 100\nm v=2 10\nm v=NaN 200\nm v=3 150\n";
        let config = IngestConfig {
            lateness: Some(5),
            ..IngestConfig::default()
        };
        let db = ShardedDb::with_config(ShardedConfig::new(2, 16));
        let report = pipeline_ingest(&db, text, 0, &config).unwrap();
        assert_eq!(report.points, 2);
        assert_eq!(report.dropped_late, 1);
        assert_eq!(report.write_failures.len(), 1);
        assert_eq!(report.write_failures[0].line, 3);
        assert!(matches!(
            report.write_failures[0].error,
            TsdbError::NonFiniteValue { .. }
        ));
        let got = db.query(&SeriesKey::metric("m.v"), full()).unwrap();
        assert_eq!(got, vec![DataPoint::new(100, 1.0), DataPoint::new(150, 3.0)]);
    }

    #[test]
    fn finish_flushes_points_still_inside_the_lateness_window() {
        // All points are within lateness of the stream end; without the
        // finish-flush they would be lost.
        let text = "m v=1 1\nm v=2 2\nm v=3 3\n";
        let config = IngestConfig {
            lateness: Some(1_000),
            ..IngestConfig::default()
        };
        let db = ShardedDb::with_config(ShardedConfig::new(2, 16));
        let report = pipeline_ingest(&db, text, 0, &config).unwrap();
        assert_eq!(report.points, 3);
        assert_eq!(
            db.query(&SeriesKey::metric("m.v"), full()).unwrap().len(),
            3
        );
    }

    #[test]
    fn live_progress_counts_lines_and_settles_on_finish() {
        let text = doc(2, 40);
        let db = ShardedDb::with_config(ShardedConfig::new(2, 16));
        let mut ing = StreamIngestor::new(
            &db,
            0,
            IngestConfig {
                parsers: 2,
                queue_depth: 2,
                chunk_lines: 4,
                lateness: Some(3),
                ..IngestConfig::default()
            },
        )
        .unwrap();
        let half = text.len() / 2;
        ing.feed(&text.as_bytes()[..half]);
        let mid = ing.progress();
        assert!(mid.lines > 0, "chunker counted completed lines");
        assert!(mid.lines <= text.lines().count());
        ing.feed(&text.as_bytes()[half..]);
        let report = ing.finish();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.lines, text.lines().count());
        assert_eq!(report.points, 2 * 40 * 2);
    }

    #[test]
    fn reader_errors_surface_as_io_after_clean_shutdown() {
        struct FailingReader {
            fed: bool,
        }
        impl Read for FailingReader {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.fed {
                    Err(std::io::Error::other("connection reset"))
                } else {
                    self.fed = true;
                    // The last record is truncated mid-value by the
                    // failure: "m v=99" was meant to be "m v=999 3\n".
                    let text = b"m v=1 1\nm v=2 2\nm v=99";
                    buf[..text.len()].copy_from_slice(text);
                    Ok(text.len())
                }
            }
        }
        let db = ShardedDb::with_config(ShardedConfig::new(2, 16));
        let err = ingest_reader(
            &db,
            FailingReader { fed: false },
            0,
            &IngestConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TsdbError::Io { .. }), "{err:?}");
        // Every complete line fed before the failure was applied; the
        // truncated tail was discarded, not ingested as a bogus point.
        let got = db.query(&SeriesKey::metric("m.v"), full()).unwrap();
        assert_eq!(got, vec![DataPoint::new(1, 1.0), DataPoint::new(2, 2.0)]);
    }

    #[test]
    fn abort_applies_complete_lines_and_discards_the_partial() {
        let db = ShardedDb::with_config(ShardedConfig::new(2, 16));
        let config = IngestConfig {
            lateness: Some(10),
            ..IngestConfig::default()
        };
        let mut ing = StreamIngestor::new(&db, 0, config).unwrap();
        ing.feed(b"m v=2 2\nm v=1 1\nm v=3");
        let report = ing.abort();
        assert_eq!(report.points, 2, "complete lines flushed, partial dropped");
        assert_eq!(report.lines, 2);
        assert_eq!(report.reordered, 1);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(
            db.query(&SeriesKey::metric("m.v"), full()).unwrap(),
            vec![DataPoint::new(1, 1.0), DataPoint::new(2, 2.0)]
        );
    }

    #[test]
    fn report_and_progress_display_are_stable_one_liners() {
        let text = "m v=2 2\nm v=1 1\nbogus\nm v=3 3\n";
        let config = IngestConfig {
            lateness: Some(10),
            ..IngestConfig::default()
        };
        let db = ShardedDb::with_config(ShardedConfig::new(2, 16));
        let report = pipeline_ingest(&db, text, 0, &config).unwrap();
        assert_eq!(
            report.to_string(),
            "lines=4 points=3 reordered=1 dropped_late=0 dropped_duplicate=0 \
             parse_failures=1 write_failures=0 clean=false"
        );
        let progress = StreamProgress {
            lines: 40,
            points: 36,
            reordered: 2,
            in_flight_chunks: 3,
            pending_reorder: 12,
            ..StreamProgress::default()
        };
        assert_eq!(
            progress.to_string(),
            "lines=40 points=36 reordered=2 dropped_late=0 dropped_duplicate=0 \
             parse_failures=0 write_failures=0 in_flight_chunks=3 pending_reorder=12"
        );
        // One line, no embedded newlines: safe for log pipelines.
        assert!(!report.to_string().contains('\n'));
        assert!(!progress.to_string().contains('\n'));
    }

    #[test]
    fn try_feed_then_finish_matches_the_blocking_path() {
        // A tiny queue guarantees try_pump actually hits the Full path:
        // the backlog grows while the single parser lags, and finish()
        // must still flush everything in order.
        let text = doc(3, 80);
        let config = IngestConfig {
            parsers: 1,
            queue_depth: 1,
            chunk_lines: 2,
            lateness: None,
            ..IngestConfig::default()
        };
        let nonblocking = ShardedDb::with_config(ShardedConfig::new(3, 16));
        let mut ing = StreamIngestor::new(&nonblocking, 0, config.clone()).unwrap();
        let mut deferred = false;
        for piece in text.as_bytes().chunks(113) {
            if !ing.try_feed(piece) {
                deferred = true;
            }
        }
        let report = ing.finish();
        assert!(deferred, "tiny queue never filled — Full path untested");
        let blocking = ShardedDb::with_config(ShardedConfig::new(3, 16));
        let oracle_report = pipeline_ingest(&blocking, &text, 0, &config).unwrap();
        assert_eq!(report, oracle_report);
        assert_eq!(
            nonblocking.query_selector(&Selector::any(), full()).unwrap(),
            blocking.query_selector(&Selector::any(), full()).unwrap()
        );
    }

    #[test]
    fn try_pump_drains_the_backlog_without_new_input() {
        let text = doc(2, 50);
        let config = IngestConfig {
            parsers: 1,
            queue_depth: 1,
            chunk_lines: 1,
            lateness: Some(5),
            ..IngestConfig::default()
        };
        let db = ShardedDb::with_config(ShardedConfig::new(2, 16));
        let mut ing = StreamIngestor::new(&db, 0, config).unwrap();
        ing.try_feed(text.as_bytes());
        // No further input: parser progress alone must free queue slots
        // until the backlog drains.
        while !ing.try_pump() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let report = ing.finish();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.lines, text.lines().count());
        assert_eq!(report.points, 2 * 50 * 2);
    }

    #[test]
    fn dropping_the_handle_applies_every_complete_fed_line() {
        let db = ShardedDb::with_config(ShardedConfig::new(2, 16));
        let config = IngestConfig {
            lateness: Some(10),
            ..IngestConfig::default()
        };
        {
            let mut ing = StreamIngestor::new(&db, 0, config).unwrap();
            // Fewer lines than chunk_lines (256): they sit in the
            // pending chunk until shutdown flushes it.
            ing.feed(b"m v=2 2\nm v=1 1\nm v=3");
        } // dropped without finish()
        assert_eq!(
            db.query(&SeriesKey::metric("m.v"), full()).unwrap(),
            vec![DataPoint::new(1, 1.0), DataPoint::new(2, 2.0)],
            "complete lines applied on drop, partial line discarded"
        );
    }

    #[test]
    fn apply_hook_fires_post_reorder_in_store_order() {
        // Shuffled input + a reorder stage: the hook must observe each
        // series' points in *applied* (timestamp) order, including the
        // buffered tail that only the end-of-stream flush releases —
        // never in arrival order.
        let mut lines: Vec<String> = (0..200).map(|t| format!("m v={t} {t}")).collect();
        // Reverse disjoint 16-line blocks: displacement is bounded well
        // inside the lateness window, so nothing is dropped.
        for block in lines.chunks_mut(16) {
            block.reverse();
        }
        let text = lines.join("\n");
        let seen: Arc<Mutex<Vec<(SeriesKey, DataPoint)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let config = IngestConfig {
            parsers: 2,
            chunk_lines: 16,
            lateness: Some(64),
            apply_hook: Some(ApplyHook::new(move |key, point| {
                sink.lock().unwrap().push((key.clone(), point));
            })),
            ..IngestConfig::default()
        };
        let db = ShardedDb::with_config(ShardedConfig::new(4, 32));
        let report = pipeline_ingest(&db, &text, 0, &config).unwrap();
        assert!(report.is_clean(), "{report:?}");
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 200, "one hook call per applied point");
        let key = SeriesKey::metric("m.v");
        let observed: Vec<DataPoint> =
            seen.iter().map(|(k, p)| {
                assert_eq!(k, &key);
                *p
            }).collect();
        assert_eq!(
            observed,
            db.query(&key, full()).unwrap(),
            "hook order must equal store apply order"
        );
    }

    #[test]
    fn apply_hook_skips_rejected_points() {
        // Without a reorder stage, out-of-order points are rejected by
        // the engine; the hook must see only what the store accepted.
        let text = "m v=1 10\nm v=2 5\nm v=3 20\n";
        let count = Arc::new(AtomicUsize::new(0));
        let sink = Arc::clone(&count);
        let config = IngestConfig {
            apply_hook: Some(ApplyHook::new(move |_, _| {
                sink.fetch_add(1, Ordering::SeqCst);
            })),
            ..IngestConfig::default()
        };
        let db = ShardedDb::with_config(ShardedConfig::new(2, 16));
        let report = pipeline_ingest(&db, text, 0, &config).unwrap();
        assert_eq!(report.points, 2);
        assert_eq!(report.write_failures.len(), 1);
        assert_eq!(count.load(Ordering::SeqCst), 2, "rejected point never fired the hook");
    }
}
