//! Watermark-based reordering for out-of-order telemetry.
//!
//! The storage engine requires strictly increasing timestamps per series
//! (a consequence of delta-of-delta compression). Real collection
//! pipelines deliver *mostly* ordered data with bounded lateness — agents
//! retry, UDP reorders, scrapes jitter. A [`ReorderBuffer`] absorbs that:
//! it holds each series' recent points in a small buffer and only releases
//! a point once the series' watermark (`max timestamp seen − allowed
//! lateness`) passes it, so anything at most `lateness` late is sorted
//! into place instead of rejected. Points later than the watermark are
//! counted and dropped, mirroring the late-data policy of stream
//! processors.
//!
//! The buffer is generic over the [`SeriesWriter`] sink, so the same
//! reordering stage runs in front of a single-shard [`Tsdb`], a whole
//! [`crate::sharded::ShardedDb`], or — as the streaming ingest pipeline
//! does ([`mod@crate::ingest`]) — one [`crate::shard::Shard`] per writer
//! thread.
//!
//! # Watermark boundary semantics
//!
//! Both the acceptance rule and the release rule treat the watermark
//! itself as *past*:
//!
//! * release: every pending point with `ts <= watermark` is written out;
//! * acceptance: an arriving point with `ts <= watermark` is **dropped
//!   late** — including a point with timestamp *exactly at* the
//!   watermark.
//!
//! The two must agree: once the watermark reached `w`, a pending point at
//! `w` was already released to the sink, so a newly arriving point at `w`
//! may collide with written data. Dropping exactly-at-watermark arrivals
//! keeps the fate of every timestamp deterministic regardless of whether
//! its twin was pending at the time. The boundary is pinned by
//! `boundary_point_exactly_at_watermark_is_dropped` below.
//!
//! Check order on arrival is also fixed: non-finite values error first,
//! then the lateness test, then the duplicate test — so a late duplicate
//! counts as `dropped_late`, not `dropped_duplicate`.

use std::collections::{BTreeMap, HashMap};

use crate::db::Tsdb;
use crate::error::TsdbError;
use crate::point::DataPoint;
use crate::query::SeriesWriter;
use crate::tags::SeriesKey;

/// Per-series state: pending points keyed by timestamp, plus the maximum
/// timestamp observed (the watermark anchor).
#[derive(Debug)]
struct SeriesBuffer {
    pending: BTreeMap<i64, f64>,
    max_seen: i64,
}

/// Statistics of a [`ReorderBuffer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Points accepted into a buffer.
    pub accepted: usize,
    /// Accepted points that arrived out of order (their timestamp was
    /// below the series' maximum seen at arrival) and were sorted back
    /// into place instead of failing.
    pub reordered: usize,
    /// Points released to the sink.
    pub released: usize,
    /// Points dropped for arriving later than the allowed lateness
    /// (timestamp at or below the series watermark).
    pub dropped_late: usize,
    /// Points dropped as duplicates of a pending timestamp.
    pub dropped_duplicate: usize,
    /// High-water mark of points buffered across all series at once —
    /// the buffer's peak memory footprint, in points.
    pub max_pending: usize,
}

/// Reorders bounded-lateness telemetry in front of a [`SeriesWriter`]
/// sink (a [`Tsdb`] by default).
#[derive(Debug)]
pub struct ReorderBuffer<W: SeriesWriter = Tsdb> {
    sink: W,
    lateness: i64,
    buffers: HashMap<SeriesKey, SeriesBuffer>,
    pending_total: usize,
    stats: ReorderStats,
}

impl<W: SeriesWriter> ReorderBuffer<W> {
    /// Creates a buffer that tolerates up to `lateness` timestamp units of
    /// disorder per series, releasing points into `sink`.
    pub fn new(sink: W, lateness: i64) -> Result<Self, TsdbError> {
        if lateness < 0 {
            return Err(TsdbError::InvalidParameter {
                name: "lateness",
                message: "allowed lateness must be non-negative",
            });
        }
        Ok(Self {
            sink,
            lateness,
            buffers: HashMap::new(),
            pending_total: 0,
            stats: ReorderStats::default(),
        })
    }

    /// Current statistics.
    pub fn stats(&self) -> ReorderStats {
        self.stats
    }

    /// Number of points currently buffered across all series.
    pub fn pending(&self) -> usize {
        self.pending_total
    }

    /// The sink points are released into.
    pub fn sink(&self) -> &W {
        &self.sink
    }

    /// Offers a point, advancing the series watermark and releasing every
    /// pending point at or below it.
    ///
    /// A point with timestamp at or below the watermark — **including
    /// exactly at it** — is dropped as late (see the module docs for why
    /// the boundary lands there). Errors (a non-finite value, or a sink
    /// failure other than out-of-order) leave the buffered points intact:
    /// a later [`ReorderBuffer::flush`] still releases them.
    ///
    /// Returns the number of points released to the sink.
    pub fn offer(&mut self, key: &SeriesKey, point: DataPoint) -> Result<usize, TsdbError> {
        if !point.value.is_finite() {
            return Err(TsdbError::NonFiniteValue {
                timestamp: point.timestamp,
            });
        }
        let buf = self.buffers.entry(key.clone()).or_default();
        // A point is too late once the watermark has passed it — unless
        // this series has seen nothing yet (max_seen still at its i64::MIN
        // sentinel).
        let fresh_series = buf.max_seen == i64::MIN;
        if !fresh_series && point.timestamp <= buf.max_seen.saturating_sub(self.lateness) {
            self.stats.dropped_late += 1;
            return Ok(0);
        }
        if buf.pending.contains_key(&point.timestamp) {
            self.stats.dropped_duplicate += 1;
            return Ok(0);
        }
        if point.timestamp < buf.max_seen {
            self.stats.reordered += 1;
        }
        buf.pending.insert(point.timestamp, point.value);
        buf.max_seen = buf.max_seen.max(point.timestamp);
        self.stats.accepted += 1;
        self.pending_total += 1;
        self.stats.max_pending = self.stats.max_pending.max(self.pending_total);

        // Release everything at or below the watermark, in order.
        let watermark = buf.max_seen.saturating_sub(self.lateness);
        let mut released = 0;
        while let Some((&ts, &v)) = buf.pending.first_key_value() {
            if ts > watermark {
                break;
            }
            buf.pending.remove(&ts);
            self.pending_total -= 1;
            match self.sink.write_point(key, DataPoint::new(ts, v)) {
                Ok(()) => released += 1,
                // Already persisted beyond this timestamp (e.g. pre-existing
                // data in the series): count as late rather than failing.
                Err(TsdbError::OutOfOrder { .. }) => self.stats.dropped_late += 1,
                Err(e) => {
                    self.stats.released += released;
                    return Err(e);
                }
            }
        }
        self.stats.released += released;
        Ok(released)
    }

    /// Flushes every buffered point regardless of watermark (end of
    /// stream). Returns the number of points released.
    pub fn flush(&mut self) -> Result<usize, TsdbError> {
        let mut released = 0;
        for (key, buf) in &mut self.buffers {
            while let Some((&ts, &v)) = buf.pending.first_key_value() {
                buf.pending.remove(&ts);
                self.pending_total -= 1;
                match self.sink.write_point(key, DataPoint::new(ts, v)) {
                    Ok(()) => released += 1,
                    Err(TsdbError::OutOfOrder { .. }) => self.stats.dropped_late += 1,
                    Err(e) => {
                        self.stats.released += released;
                        return Err(e);
                    }
                }
            }
        }
        self.stats.released += released;
        Ok(released)
    }
}

impl Default for SeriesBuffer {
    fn default() -> Self {
        Self {
            pending: BTreeMap::new(),
            max_seen: i64::MIN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::RangeQuery;
    use crate::sharded::{ShardedConfig, ShardedDb};

    fn setup(lateness: i64) -> (Tsdb, ReorderBuffer, SeriesKey) {
        let db = Tsdb::new();
        let rb = ReorderBuffer::new(db.clone(), lateness).unwrap();
        (db, rb, SeriesKey::metric("m"))
    }

    fn stored(db: &Tsdb, key: &SeriesKey) -> Vec<i64> {
        db.query(key, RangeQuery::raw(i64::MIN + 1, i64::MAX))
            .map(|pts| pts.iter().map(|p| p.timestamp).collect())
            .unwrap_or_default()
    }

    #[test]
    fn negative_lateness_rejected() {
        let db = Tsdb::new();
        assert!(ReorderBuffer::new(db, -1).is_err());
    }

    #[test]
    fn bounded_disorder_is_fully_repaired() {
        let (db, mut rb, key) = setup(10);
        // Timestamps shuffled within a ±5 jitter of their slot.
        let ts = [3i64, 1, 2, 7, 5, 4, 9, 6, 8, 12, 10, 11, 20, 15];
        for &t in &ts {
            rb.offer(&key, DataPoint::new(t, t as f64)).unwrap();
        }
        rb.flush().unwrap();
        let mut want: Vec<i64> = ts.to_vec();
        want.sort_unstable();
        assert_eq!(stored(&db, &key), want, "all points, in order");
        assert_eq!(rb.stats().dropped_late, 0);
    }

    #[test]
    fn points_beyond_lateness_are_dropped_not_errors() {
        let (db, mut rb, key) = setup(5);
        rb.offer(&key, DataPoint::new(100, 1.0)).unwrap();
        // Watermark is 95; 90 is too late.
        rb.offer(&key, DataPoint::new(90, 2.0)).unwrap();
        assert_eq!(rb.stats().dropped_late, 1);
        // 96 is within lateness and accepted.
        rb.offer(&key, DataPoint::new(96, 3.0)).unwrap();
        rb.flush().unwrap();
        assert_eq!(stored(&db, &key), vec![96, 100]);
    }

    /// The lateness boundary is deterministic and documented: a point
    /// with timestamp *exactly at* the watermark is dropped, matching the
    /// release rule (which releases pending points at the watermark).
    #[test]
    fn boundary_point_exactly_at_watermark_is_dropped() {
        let (db, mut rb, key) = setup(5);
        rb.offer(&key, DataPoint::new(100, 1.0)).unwrap();
        // Watermark is exactly 95.
        rb.offer(&key, DataPoint::new(95, 2.0)).unwrap();
        assert_eq!(rb.stats().dropped_late, 1, "ts == watermark is late");
        // One unit inside the boundary is accepted…
        rb.offer(&key, DataPoint::new(96, 3.0)).unwrap();
        assert_eq!(rb.stats().dropped_late, 1);
        rb.flush().unwrap();
        assert_eq!(stored(&db, &key), vec![96, 100]);

        // …and the release side of the same boundary: a pending point
        // exactly at the advancing watermark is released, not held.
        let (db, mut rb, key) = setup(5);
        rb.offer(&key, DataPoint::new(10, 0.0)).unwrap();
        let released = rb.offer(&key, DataPoint::new(15, 0.0)).unwrap();
        assert_eq!(released, 1, "watermark 10 releases the point at 10");
        assert_eq!(stored(&db, &key), vec![10]);
    }

    /// With zero lateness the boundary rule makes an exact duplicate of
    /// the maximum a *late* drop (the lateness check runs before the
    /// duplicate check, and ts == max_seen == watermark).
    #[test]
    fn boundary_duplicate_of_max_at_zero_lateness_is_late_not_duplicate() {
        let (_, mut rb, key) = setup(0);
        rb.offer(&key, DataPoint::new(5, 1.0)).unwrap();
        rb.offer(&key, DataPoint::new(5, 2.0)).unwrap();
        assert_eq!(rb.stats().dropped_late, 1);
        assert_eq!(rb.stats().dropped_duplicate, 0);
    }

    /// `offer()` errors must not corrupt the buffer: a rejected
    /// non-finite value and a propagated sink error both leave pending
    /// points releasable by a later `flush()`.
    #[test]
    fn flush_after_offer_errors_still_releases_pending() {
        let (db, mut rb, key) = setup(100);
        rb.offer(&key, DataPoint::new(10, 1.0)).unwrap();
        rb.offer(&key, DataPoint::new(12, 2.0)).unwrap();
        assert!(matches!(
            rb.offer(&key, DataPoint::new(11, f64::NAN)),
            Err(TsdbError::NonFiniteValue { timestamp: 11 })
        ));
        assert_eq!(rb.pending(), 2, "error left the buffer intact");
        assert_eq!(rb.flush().unwrap(), 2);
        assert_eq!(stored(&db, &key), vec![10, 12]);
        // Flush drained everything; stats balance.
        let s = rb.stats();
        assert_eq!(s.released, s.accepted);
        assert_eq!(rb.pending(), 0);
    }

    /// A flush colliding with pre-existing sink data counts the losers as
    /// late instead of erroring, and still drains the buffer.
    #[test]
    fn flush_counts_sink_collisions_as_late() {
        let (db, mut rb, key) = setup(1_000);
        db.write(&key, DataPoint::new(50, 9.0)).unwrap();
        rb.offer(&key, DataPoint::new(10, 1.0)).unwrap();
        rb.offer(&key, DataPoint::new(60, 2.0)).unwrap();
        assert_eq!(rb.flush().unwrap(), 1, "only 60 lands past the existing 50");
        assert_eq!(rb.stats().dropped_late, 1);
        assert_eq!(rb.pending(), 0);
        assert_eq!(stored(&db, &key), vec![50, 60]);
    }

    #[test]
    fn duplicates_within_buffer_dropped() {
        let (db, mut rb, key) = setup(100);
        rb.offer(&key, DataPoint::new(5, 1.0)).unwrap();
        rb.offer(&key, DataPoint::new(5, 2.0)).unwrap();
        assert_eq!(rb.stats().dropped_duplicate, 1);
        rb.flush().unwrap();
        assert_eq!(stored(&db, &key), vec![5]);
        assert_eq!(db.query(&key, RangeQuery::raw(0, 10)).unwrap()[0].value, 1.0);
    }

    #[test]
    fn release_happens_as_watermark_advances() {
        let (db, mut rb, key) = setup(3);
        rb.offer(&key, DataPoint::new(1, 0.0)).unwrap();
        rb.offer(&key, DataPoint::new(2, 0.0)).unwrap();
        assert!(stored(&db, &key).is_empty(), "still within lateness");
        assert_eq!(rb.pending(), 2);
        // max_seen = 10 ⇒ watermark 7 releases 1 and 2.
        let released = rb.offer(&key, DataPoint::new(10, 0.0)).unwrap();
        assert_eq!(released, 2);
        assert_eq!(stored(&db, &key), vec![1, 2]);
        assert_eq!(rb.pending(), 1);
    }

    #[test]
    fn zero_lateness_is_pass_through_ordering_filter() {
        let (db, mut rb, key) = setup(0);
        rb.offer(&key, DataPoint::new(1, 0.0)).unwrap();
        rb.offer(&key, DataPoint::new(3, 0.0)).unwrap();
        rb.offer(&key, DataPoint::new(2, 0.0)).unwrap(); // late, dropped
        rb.flush().unwrap();
        assert_eq!(stored(&db, &key), vec![1, 3]);
        assert_eq!(rb.stats().dropped_late, 1);
    }

    #[test]
    fn per_series_watermarks_are_independent() {
        let db = Tsdb::new();
        let mut rb = ReorderBuffer::new(db.clone(), 5).unwrap();
        let a = SeriesKey::metric("a");
        let b = SeriesKey::metric("b");
        rb.offer(&a, DataPoint::new(1_000, 0.0)).unwrap();
        // Series b starts far behind series a: accepted, not "late".
        rb.offer(&b, DataPoint::new(10, 0.0)).unwrap();
        rb.flush().unwrap();
        assert_eq!(stored(&db, &a), vec![1_000]);
        assert_eq!(stored(&db, &b), vec![10]);
    }

    #[test]
    fn non_finite_rejected_before_buffering() {
        let (_, mut rb, key) = setup(5);
        assert!(matches!(
            rb.offer(&key, DataPoint::new(1, f64::NAN)),
            Err(TsdbError::NonFiniteValue { timestamp: 1 })
        ));
        assert_eq!(rb.pending(), 0);
    }

    #[test]
    fn stats_account_for_every_offer() {
        let (_, mut rb, key) = setup(4);
        let ts = [5i64, 3, 9, 2, 9, 14, 1];
        for &t in &ts {
            let _ = rb.offer(&key, DataPoint::new(t, 0.0));
        }
        rb.flush().unwrap();
        let s = rb.stats();
        assert_eq!(
            s.accepted + s.dropped_late + s.dropped_duplicate,
            ts.len(),
            "every offer accounted for"
        );
        assert_eq!(s.released, s.accepted, "flush drains everything accepted");
    }

    #[test]
    fn reordered_counts_only_backward_arrivals() {
        let (_, mut rb, key) = setup(100);
        // 5 forward, 3 backward, 8 forward, 6 backward, 7 backward.
        for &t in &[5i64, 3, 8, 6, 7] {
            rb.offer(&key, DataPoint::new(t, 0.0)).unwrap();
        }
        assert_eq!(rb.stats().reordered, 3);
        assert_eq!(rb.stats().accepted, 5);
    }

    #[test]
    fn max_pending_tracks_high_water() {
        let (_, mut rb, key) = setup(3);
        rb.offer(&key, DataPoint::new(1, 0.0)).unwrap();
        rb.offer(&key, DataPoint::new(2, 0.0)).unwrap();
        rb.offer(&key, DataPoint::new(3, 0.0)).unwrap();
        assert_eq!(rb.stats().max_pending, 3);
        // The releasing offer itself is buffered before the release runs,
        // so the true peak footprint is 4 — then watermark 7 drains 1..3.
        rb.offer(&key, DataPoint::new(10, 0.0)).unwrap();
        assert_eq!(rb.pending(), 1);
        assert_eq!(rb.stats().max_pending, 4);
    }

    /// The generic sink: the same buffer runs in front of a sharded
    /// engine, and the result matches the single-shard sink point for
    /// point.
    #[test]
    fn generic_sink_runs_in_front_of_sharded_engine() {
        let sharded = ShardedDb::with_config(ShardedConfig::new(4, 16));
        let mut rb = ReorderBuffer::new(sharded.clone(), 10).unwrap();
        let (oracle_db, mut oracle_rb, _) = setup(10);
        for h in 0..4 {
            let key = SeriesKey::metric("cpu").with_tag("host", format!("h{h}"));
            for &t in &[3i64, 1, 2, 7, 5, 4, 9, 6, 8, 30] {
                rb.offer(&key, DataPoint::new(t + h, t as f64)).unwrap();
                oracle_rb.offer(&key, DataPoint::new(t + h, t as f64)).unwrap();
            }
        }
        rb.flush().unwrap();
        oracle_rb.flush().unwrap();
        assert_eq!(rb.stats(), oracle_rb.stats());
        let q = RangeQuery::raw(i64::MIN + 1, i64::MAX);
        let sel = crate::tags::Selector::any();
        assert_eq!(
            rb.sink().query_selector(&sel, q).unwrap(),
            oracle_db.query_selector(&sel, q).unwrap()
        );
    }
}
